//! End-to-end tests for the declarative scenario subsystem: every
//! committed `scenarios/*.toml` must load and compile, runs must be
//! deterministic by (scenario, seed) on both drivers, and the
//! `run-scenario` CLI must honor its exit-code contract (6 with a
//! `file:line` diagnostic for schema/validation errors, 3 for I/O).

use std::path::{Path, PathBuf};
use std::process::Command;

use elephant::core::{capture_records, run_ground_truth, train_cluster_model, TrainingOptions};
use elephant::des::{EpochMode, SimTime};
use elephant::net::{ClosParams, NetConfig, RttScope};
use elephant::scenario::{
    compile, list_scenarios, load, run_fingerprint, CompileOverrides, Compiled, Scenario,
};
use elephant::trace::{generate, WorkloadConfig};

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn load_committed(name: &str) -> Scenario {
    let path = scenario_dir().join(name);
    load(&path.display().to_string()).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_committed_scenario_loads_and_compiles() {
    let files = list_scenarios(&scenario_dir()).expect("scenarios/ is readable");
    assert!(
        files.len() >= 6,
        "expected the committed scenario library, found {} files",
        files.len()
    );
    for f in &files {
        let s = load(&f.display().to_string()).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        let c = compile(&s, &CompileOverrides::default());
        assert!(
            !c.flows.is_empty(),
            "{}: compiled to zero flows",
            f.display()
        );
        assert!(c.horizon.as_nanos() > 0, "{}: zero horizon", f.display());
    }
}

#[test]
fn sequential_runs_are_deterministic() {
    for name in ["incast.toml", "allreduce.toml"] {
        let s = load_committed(name);
        let c = compile(
            &s,
            &CompileOverrides {
                seed: Some(7),
                ..Default::default()
            },
        );
        let fp = |c: &Compiled| {
            let (net, _) = c.run_sequential(None);
            run_fingerprint([&net])
        };
        assert_eq!(fp(&c), fp(&c), "{name}: sequential fingerprint varies");
    }
}

#[test]
fn pdes_runs_are_deterministic() {
    for name in ["incast.toml", "allreduce.toml"] {
        let s = load_committed(name);
        let c = compile(
            &s,
            &CompileOverrides {
                seed: Some(7),
                ..Default::default()
            },
        );
        let fp = |c: &Compiled| {
            let run = c
                .run_pdes(None, EpochMode::Adaptive, None)
                .unwrap_or_else(|e| panic!("{name}: PDES run failed: {e}"));
            run_fingerprint(run.nets.iter())
        };
        assert_eq!(fp(&c), fp(&c), "{name}: PDES fingerprint varies");
    }
}

#[test]
fn compilation_is_a_pure_function_of_scenario_and_seed() {
    let s = load_committed("websearch_storage.toml");
    let over = CompileOverrides {
        seed: Some(123),
        ..Default::default()
    };
    let a = compile(&s, &over);
    let b = compile(&s, &over);
    assert_eq!(a.flows, b.flows);
    // A different seed must actually change the Poisson groups.
    let c = compile(
        &s,
        &CompileOverrides {
            seed: Some(124),
            ..Default::default()
        },
    );
    assert_ne!(a.flows, c.flows, "seed does not reach the workload");
}

// ---- CLI contract ------------------------------------------------------

fn elephant_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elephant"))
}

#[test]
fn cli_validates_every_committed_scenario() {
    for f in list_scenarios(&scenario_dir()).expect("scenarios/ is readable") {
        let out = elephant_cli()
            .args(["run-scenario", &f.display().to_string(), "--validate"])
            .output()
            .expect("spawns");
        assert!(
            out.status.success(),
            "{}: validate failed: {}",
            f.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("ok"),
            "{}: no ok line: {stdout}",
            f.display()
        );
    }
}

#[test]
fn cli_scenario_errors_exit_6_and_name_the_line() {
    let bad = std::env::temp_dir().join("elephant_bad_scenario.toml");
    std::fs::write(
        &bad,
        "schema = 1\n[scenario]\nname = \"bad\"\n[topology]\nclusters = 2\n\
         [run]\nhorizon_ms = 1.0\n[[traffic]]\nkind = \"poisson\"\nload = 1.5\n",
    )
    .expect("temp file writes");
    let out = elephant_cli()
        .args(["run-scenario", &bad.display().to_string()])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(6), "scenario errors exit 6");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("elephant_bad_scenario.toml:10"),
        "stderr names file:line of the bad load: {stderr}"
    );
    assert!(
        stderr.contains("load"),
        "stderr names the bad key: {stderr}"
    );
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn cli_missing_scenario_exits_3() {
    let out = elephant_cli()
        .args(["run-scenario", "definitely_missing_scenario.toml"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(3), "missing files are I/O errors");
}

#[test]
fn cli_lists_the_committed_library() {
    let out = elephant_cli()
        .args([
            "run-scenario",
            "--list-scenarios",
            &scenario_dir().display().to_string(),
        ])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["incast.toml", "allreduce.toml", "smoke.toml"] {
        assert!(stdout.contains(name), "listing misses {name}: {stdout}");
    }
    assert!(
        !stdout.contains("INVALID"),
        "committed file invalid: {stdout}"
    );
}

#[test]
fn cli_fingerprint_is_stable_across_invocations() {
    let path = scenario_dir().join("incast.toml").display().to_string();
    let fingerprint = |extra: &[&str]| -> String {
        let mut args = vec!["run-scenario", path.as_str(), "--seed", "7"];
        args.extend_from_slice(extra);
        let out = elephant_cli().args(&args).output().expect("spawns");
        assert!(
            out.status.success(),
            "run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        stdout
            .lines()
            .find_map(|l| l.trim().strip_prefix("fingerprint: ").map(str::to_string))
            .unwrap_or_else(|| panic!("no fingerprint line in: {stdout}"))
    };
    assert_eq!(
        fingerprint(&[]),
        fingerprint(&[]),
        "sequential fingerprints differ across invocations"
    );
    assert_eq!(
        fingerprint(&["--pdes"]),
        fingerprint(&["--pdes"]),
        "PDES fingerprints differ across invocations"
    );
}

// ---- hybrid scenario runs ----------------------------------------------

/// Trains one small-but-real model artifact (memoized per process) so the
/// hybrid CLI tests bind a real checkpoint instead of re-training per run.
fn tiny_model_path() -> PathBuf {
    use std::sync::OnceLock;
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let params = ClosParams::paper_cluster(2);
        let horizon = SimTime::from_millis(12);
        let flows = generate(&params, &WorkloadConfig::paper_default(horizon, 9));
        let cfg = NetConfig {
            rtt_scope: RttScope::None,
            ..Default::default()
        };
        let (net, _) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
        let records = capture_records(net).expect("capture was enabled");
        let (model, _) = train_cluster_model(
            &records,
            &params,
            &TrainingOptions {
                hidden: 8,
                layers: 1,
                epochs: 2,
                ..Default::default()
            },
        );
        let dir = std::env::temp_dir().join("elephant_scenario_hybrid_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny-model.json");
        std::fs::write(&path, model.to_file_json()).unwrap();
        path
    })
    .clone()
}

fn cli_fingerprint_of(args: &[&str]) -> String {
    let out = elephant_cli().args(args).output().expect("spawns");
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.trim().strip_prefix("fingerprint: ").map(str::to_string))
        .unwrap_or_else(|| panic!("no fingerprint line in: {stdout}"))
}

/// Hybrid runs are a pure function of (scenario file, seed) on both the
/// sequential and the PDES drivers, through the whole CLI path — model
/// load, oracle/guard/cache assembly, supervision, fingerprint.
#[test]
fn cli_hybrid_scenario_fingerprint_is_stable() {
    let model = tiny_model_path().display().to_string();
    let path = scenario_dir()
        .join("hybrid_smoke.toml")
        .display()
        .to_string();
    let base = [
        "run-scenario",
        path.as_str(),
        "--model",
        model.as_str(),
        "--seed",
        "7",
    ];
    let seq = cli_fingerprint_of(&base);
    assert_eq!(
        seq,
        cli_fingerprint_of(&base),
        "sequential hybrid fingerprints differ across invocations"
    );
    let mut pdes_args = base.to_vec();
    pdes_args.push("--pdes");
    let pdes = cli_fingerprint_of(&pdes_args);
    assert_eq!(
        pdes,
        cli_fingerprint_of(&pdes_args),
        "PDES hybrid fingerprints differ across invocations"
    );
}

/// Binding the artifact through the `[model]` section and through the
/// `--model` flag are the same run, bit for bit.
#[test]
fn cli_hybrid_model_section_and_flag_are_bit_equal() {
    let model = tiny_model_path().display().to_string();
    // The committed scenario with its [model] path swapped for the test
    // artifact — everything else (seed, traffic, oracle, guard, recovery)
    // identical to what the --model invocation compiles.
    let committed = scenario_dir().join("hybrid_smoke.toml");
    let doc = std::fs::read_to_string(&committed).expect("committed scenario reads");
    assert!(doc.contains("path = \"models/hybrid-smoke.json\""));
    let doc = doc.replace(
        "path = \"models/hybrid-smoke.json\"",
        &format!("path = {model:?}"),
    );
    let tmp = std::env::temp_dir().join("elephant_hybrid_section_vs_flag.toml");
    std::fs::write(&tmp, doc).expect("temp scenario writes");
    let tmp = tmp.display().to_string();
    let committed = committed.display().to_string();

    let via_section = cli_fingerprint_of(&["run-scenario", tmp.as_str()]);
    let via_flag = cli_fingerprint_of(&[
        "run-scenario",
        committed.as_str(),
        "--model",
        model.as_str(),
    ]);
    assert_eq!(
        via_section, via_flag,
        "[model] section and --model flag runs diverge"
    );
    let _ = std::fs::remove_file(&tmp);
}

/// A minimal valid scenario body the `[model]` rejection tests extend.
const MODEL_TEST_BASE: &str = "schema = 1\n\
    [scenario]\n\
    name = \"model-errors\"\n\
    [topology]\n\
    clusters = 2\n\
    [run]\n\
    horizon_ms = 1.0\n\
    [[traffic]]\n\
    kind = \"poisson\"\n\
    load = 0.3\n";

/// Every malformed `[model]` section is a schema error: exit 6 with a
/// `file:line` diagnostic naming the offending key.
#[test]
fn cli_rejects_bad_model_sections() {
    for (i, (section, needle)) in [
        ("[model]\npaths = \"m.json\"\n", "unknown key `paths`"),
        ("[model]\npath = 7\n", "model.path"),
        ("[model]\nfull_cluster = 9\n", "out of range"),
    ]
    .iter()
    .enumerate()
    {
        let tmp = std::env::temp_dir().join(format!("elephant_bad_model_{i}.toml"));
        std::fs::write(&tmp, format!("{MODEL_TEST_BASE}{section}")).expect("temp writes");
        let out = elephant_cli()
            .args(["run-scenario", &tmp.display().to_string()])
            .output()
            .expect("spawns");
        assert_eq!(
            out.status.code(),
            Some(6),
            "bad [model] section must exit 6: {section}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "stderr misses `{needle}`: {stderr}"
        );
        assert!(
            stderr.contains(&format!("elephant_bad_model_{i}.toml:")),
            "stderr misses the file:line diagnostic: {stderr}"
        );
        let _ = std::fs::remove_file(&tmp);
    }
}

/// A `[model]` binding that names a missing artifact (without
/// `train_fallback`) or a corrupt one is a *scenario* error: exit 6
/// naming the binding's `file:line`, not the flag-path's bare exit 4.
#[test]
fn cli_model_artifact_errors_exit_6_with_scenario_context() {
    // Missing artifact, no fallback. The path key sits on line 12.
    let tmp = std::env::temp_dir().join("elephant_missing_model.toml");
    std::fs::write(
        &tmp,
        format!("{MODEL_TEST_BASE}[model]\npath = \"/nonexistent/elephant-no-such-model.json\"\n"),
    )
    .expect("temp writes");
    let out = elephant_cli()
        .args(["run-scenario", &tmp.display().to_string()])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(6), "missing artifact must exit 6");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("elephant_missing_model.toml:12"),
        "stderr names the binding's file:line: {stderr}"
    );
    assert!(
        stderr.contains("model artifact"),
        "stderr names the artifact: {stderr}"
    );
    let _ = std::fs::remove_file(&tmp);

    // Corrupt artifact: train_fallback covers only *absent* files, never
    // a checksum/parse failure.
    let bad_model = std::env::temp_dir().join("elephant_corrupt_model.json");
    std::fs::write(&bad_model, "{ not a model }").expect("temp writes");
    let tmp = std::env::temp_dir().join("elephant_corrupt_model.toml");
    std::fs::write(
        &tmp,
        format!(
            "{MODEL_TEST_BASE}[model]\npath = {:?}\ntrain_fallback = true\n",
            bad_model.display().to_string()
        ),
    )
    .expect("temp writes");
    let out = elephant_cli()
        .args(["run-scenario", &tmp.display().to_string()])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(6), "corrupt artifact must exit 6");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("elephant_corrupt_model.toml:12"),
        "stderr names the binding's file:line: {stderr}"
    );
    let _ = std::fs::remove_file(&tmp);
    let _ = std::fs::remove_file(&bad_model);
}
