//! End-to-end tests for the declarative scenario subsystem: every
//! committed `scenarios/*.toml` must load and compile, runs must be
//! deterministic by (scenario, seed) on both drivers, and the
//! `run-scenario` CLI must honor its exit-code contract (6 with a
//! `file:line` diagnostic for schema/validation errors, 3 for I/O).

use std::path::{Path, PathBuf};
use std::process::Command;

use elephant::des::EpochMode;
use elephant::scenario::{
    compile, list_scenarios, load, run_fingerprint, CompileOverrides, Compiled, Scenario,
};

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn load_committed(name: &str) -> Scenario {
    let path = scenario_dir().join(name);
    load(&path.display().to_string()).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_committed_scenario_loads_and_compiles() {
    let files = list_scenarios(&scenario_dir()).expect("scenarios/ is readable");
    assert!(
        files.len() >= 6,
        "expected the committed scenario library, found {} files",
        files.len()
    );
    for f in &files {
        let s = load(&f.display().to_string()).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        let c = compile(&s, &CompileOverrides::default());
        assert!(
            !c.flows.is_empty(),
            "{}: compiled to zero flows",
            f.display()
        );
        assert!(c.horizon.as_nanos() > 0, "{}: zero horizon", f.display());
    }
}

#[test]
fn sequential_runs_are_deterministic() {
    for name in ["incast.toml", "allreduce.toml"] {
        let s = load_committed(name);
        let c = compile(
            &s,
            &CompileOverrides {
                seed: Some(7),
                ..Default::default()
            },
        );
        let fp = |c: &Compiled| {
            let (net, _) = c.run_sequential(None);
            run_fingerprint([&net])
        };
        assert_eq!(fp(&c), fp(&c), "{name}: sequential fingerprint varies");
    }
}

#[test]
fn pdes_runs_are_deterministic() {
    for name in ["incast.toml", "allreduce.toml"] {
        let s = load_committed(name);
        let c = compile(
            &s,
            &CompileOverrides {
                seed: Some(7),
                ..Default::default()
            },
        );
        let fp = |c: &Compiled| {
            let run = c
                .run_pdes(None, EpochMode::Adaptive, None)
                .unwrap_or_else(|e| panic!("{name}: PDES run failed: {e}"));
            run_fingerprint(run.nets.iter())
        };
        assert_eq!(fp(&c), fp(&c), "{name}: PDES fingerprint varies");
    }
}

#[test]
fn compilation_is_a_pure_function_of_scenario_and_seed() {
    let s = load_committed("websearch_storage.toml");
    let over = CompileOverrides {
        seed: Some(123),
        ..Default::default()
    };
    let a = compile(&s, &over);
    let b = compile(&s, &over);
    assert_eq!(a.flows, b.flows);
    // A different seed must actually change the Poisson groups.
    let c = compile(
        &s,
        &CompileOverrides {
            seed: Some(124),
            ..Default::default()
        },
    );
    assert_ne!(a.flows, c.flows, "seed does not reach the workload");
}

// ---- CLI contract ------------------------------------------------------

fn elephant_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elephant"))
}

#[test]
fn cli_validates_every_committed_scenario() {
    for f in list_scenarios(&scenario_dir()).expect("scenarios/ is readable") {
        let out = elephant_cli()
            .args(["run-scenario", &f.display().to_string(), "--validate"])
            .output()
            .expect("spawns");
        assert!(
            out.status.success(),
            "{}: validate failed: {}",
            f.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("ok"),
            "{}: no ok line: {stdout}",
            f.display()
        );
    }
}

#[test]
fn cli_scenario_errors_exit_6_and_name_the_line() {
    let bad = std::env::temp_dir().join("elephant_bad_scenario.toml");
    std::fs::write(
        &bad,
        "schema = 1\n[scenario]\nname = \"bad\"\n[topology]\nclusters = 2\n\
         [run]\nhorizon_ms = 1.0\n[[traffic]]\nkind = \"poisson\"\nload = 1.5\n",
    )
    .expect("temp file writes");
    let out = elephant_cli()
        .args(["run-scenario", &bad.display().to_string()])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(6), "scenario errors exit 6");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("elephant_bad_scenario.toml:10"),
        "stderr names file:line of the bad load: {stderr}"
    );
    assert!(
        stderr.contains("load"),
        "stderr names the bad key: {stderr}"
    );
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn cli_missing_scenario_exits_3() {
    let out = elephant_cli()
        .args(["run-scenario", "definitely_missing_scenario.toml"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(3), "missing files are I/O errors");
}

#[test]
fn cli_lists_the_committed_library() {
    let out = elephant_cli()
        .args([
            "run-scenario",
            "--list-scenarios",
            &scenario_dir().display().to_string(),
        ])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["incast.toml", "allreduce.toml", "smoke.toml"] {
        assert!(stdout.contains(name), "listing misses {name}: {stdout}");
    }
    assert!(
        !stdout.contains("INVALID"),
        "committed file invalid: {stdout}"
    );
}

#[test]
fn cli_fingerprint_is_stable_across_invocations() {
    let path = scenario_dir().join("incast.toml").display().to_string();
    let fingerprint = |extra: &[&str]| -> String {
        let mut args = vec!["run-scenario", path.as_str(), "--seed", "7"];
        args.extend_from_slice(extra);
        let out = elephant_cli().args(&args).output().expect("spawns");
        assert!(
            out.status.success(),
            "run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        stdout
            .lines()
            .find_map(|l| l.trim().strip_prefix("fingerprint: ").map(str::to_string))
            .unwrap_or_else(|| panic!("no fingerprint line in: {stdout}"))
    };
    assert_eq!(
        fingerprint(&[]),
        fingerprint(&[]),
        "sequential fingerprints differ across invocations"
    );
    assert_eq!(
        fingerprint(&["--pdes"]),
        fingerprint(&["--pdes"]),
        "PDES fingerprints differ across invocations"
    );
}
