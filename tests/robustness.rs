//! Robustness: corrupted model artifacts fail loudly with typed errors,
//! a misbehaving oracle behind the guardrail degrades gracefully instead
//! of panicking, an untripped guard costs nothing — the guarded run is
//! bit-identical to the unguarded one — and crash-safe runs hold their
//! determinism contract: a checkpoint-restored run is bit-identical to an
//! uninterrupted one, and the supervised retry ladder walks a scripted
//! stall down to the healthy fingerprint.

use elephant::core::{
    run_ground_truth, run_hybrid, train_cluster_model, ClusterModel, DropPolicy, ElephantError,
    LatencyCodec, LearnedOracle, MacroConfig, ModelFile, ModelMeta, TrainingOptions, MODEL_MAGIC,
    MODEL_VERSION,
};
use elephant::des::{SimDuration, SimTime};
use elephant::net::{
    BoundaryRecord, ClosParams, ClusterOracle, FaultyOracle, FixedLatencyOracle, GuardConfig,
    GuardedOracle, NetConfig, OracleFaultMode, RttScope,
};
use elephant::nn::{MicroNet, MicroNetConfig, RnnKind};
use elephant::trace::{filter_touching_cluster, generate, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const HORIZON: SimTime = SimTime::from_millis(12);

/// A structurally valid but untrained model, cheap enough to corrupt in
/// every which way.
fn tiny_model() -> ClusterModel {
    let cfg = MicroNetConfig {
        input: elephant::core::FEATURE_DIM,
        hidden: 4,
        layers: 1,
        alpha: 0.5,
        rnn: RnnKind::Lstm,
    };
    ClusterModel {
        up: MicroNet::new(cfg, &mut SmallRng::seed_from_u64(11)),
        down: MicroNet::new(cfg, &mut SmallRng::seed_from_u64(22)),
        macro_cfg: MacroConfig::default(),
        codec: LatencyCodec::default(),
        meta: ModelMeta::default(),
    }
}

#[test]
fn corrupted_model_artifacts_fail_with_typed_errors() {
    let m = tiny_model();

    // Healthy round trip.
    let ok = ClusterModel::load_json(&m.to_file_json()).expect("clean artifact loads");
    assert_eq!(ok.weight_checksum(), m.weight_checksum());

    // Wrong magic: not our file at all.
    let file = ModelFile {
        magic: "PACHYDERM".into(),
        version: MODEL_VERSION,
        checksum: m.weight_checksum(),
        model: m.clone(),
    };
    let err = ClusterModel::load_json(&serde_json::to_string(&file).unwrap()).unwrap_err();
    assert!(matches!(err, ElephantError::ModelMagic { .. }), "{err}");
    assert_eq!(err.exit_code(), 4);

    // Future format version.
    let file = ModelFile {
        magic: MODEL_MAGIC.into(),
        version: MODEL_VERSION + 1,
        checksum: m.weight_checksum(),
        model: m.clone(),
    };
    let err = ClusterModel::load_json(&serde_json::to_string(&file).unwrap()).unwrap_err();
    assert!(
        matches!(err, ElephantError::ModelVersion { found, expected }
            if found == MODEL_VERSION + 1 && expected == MODEL_VERSION),
        "{err}"
    );

    // Flipped weight bits: checksum catches what still parses.
    let mut bits = m.clone();
    bits.up.param_slices()[0][0] += 1.0;
    let file = ModelFile {
        magic: MODEL_MAGIC.into(),
        version: MODEL_VERSION,
        checksum: m.weight_checksum(), // header from the *uncorrupted* weights
        model: bits,
    };
    let err = ClusterModel::load_json(&serde_json::to_string(&file).unwrap()).unwrap_err();
    assert!(matches!(err, ElephantError::ModelChecksum { .. }), "{err}");

    // NaN weights: rejected by the finiteness validator even when the
    // checksum (computed over the NaN bits) matches.
    let mut poisoned = m.clone();
    poisoned.up.param_slices()[0][0] = f32::NAN;
    let file = ModelFile {
        magic: MODEL_MAGIC.into(),
        version: MODEL_VERSION,
        checksum: poisoned.weight_checksum(),
        model: poisoned,
    };
    let err = file.into_model().unwrap_err();
    assert!(
        matches!(err, ElephantError::ModelNonFinite { count } if count == 1),
        "{err}"
    );

    // Truncated file: a parse error, not a panic.
    let json = m.to_file_json();
    let err = ClusterModel::load_json(&json[..json.len() / 3]).unwrap_err();
    assert!(matches!(err, ElephantError::ModelParse { .. }), "{err}");
}

fn hybrid_cfg() -> NetConfig {
    NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    }
}

/// A NaN-spewing oracle behind the guard: the run completes, reports the
/// trips, and ends in permanent fallback — where the same oracle unguarded
/// would panic inside `SimDuration::from_secs_f64`.
#[test]
fn guarded_nan_oracle_completes_the_run() {
    let params = ClosParams::paper_cluster(2);
    let flows = filter_touching_cluster(
        &generate(&params, &WorkloadConfig::paper_default(HORIZON, 5)),
        0,
    );
    let guarded = GuardedOracle::new(
        Box::new(FaultyOracle::new(
            OracleFaultMode::Nan,
            3,
            SimDuration::from_micros(5),
        )),
        Box::new(FixedLatencyOracle(SimDuration::from_micros(40))),
        GuardConfig {
            trip_limit: 16,
            ..Default::default()
        },
    );
    let handle = guarded.stats_handle();
    let (net, meta) = run_hybrid(params, 0, Box::new(guarded), hybrid_cfg(), &flows, HORIZON);

    assert!(meta.events > 0);
    assert!(net.stats.oracle_deliveries > 0, "oracle was exercised");
    let snap = handle.snapshot();
    assert!(snap.trips() >= 16, "trips {}", snap.trips());
    assert!(snap.fallback_active, "trip limit reached");
    assert!(snap.fallback_verdicts > 0);
    assert_eq!(snap.negative + snap.ceiling + snap.drop_drift, 0);
}

/// The raw seam forwards the *real* call: when the guard falls back, the
/// fallback oracle must see the caller's ctx/pkt/now, not placeholders — a
/// ctx-sensitive fallback like [`IdealOracle`] would otherwise silently
/// compute latencies for the wrong packet.
#[test]
fn guard_raw_seam_forwards_ctx_to_fallback() {
    use elephant::net::{
        Direction, Ecn, FlowId, HostAddr, IdealOracle, OracleCtx, Packet, RawVerdict, TcpFlags,
        TcpSegment, Topology,
    };

    let params = ClosParams::paper_cluster(2);
    let topo = Topology::clos_with_stubs(params, &[1]);
    // Every primary verdict is NaN, so every call trips to the fallback.
    let mut guard = GuardedOracle::new(
        Box::new(FaultyOracle::new(
            OracleFaultMode::Nan,
            1,
            SimDuration::from_micros(5),
        )),
        Box::new(IdealOracle),
        GuardConfig::default(),
    );

    let mut pkt_at = |size: u32, dir: Direction, t: SimTime| {
        let (src, dst) = (HostAddr::new(1, 0, 0), HostAddr::new(0, 0, 0));
        let path = topo.fabric_path(src, dst, FlowId(9));
        let pkt = Packet {
            id: 1,
            flow: FlowId(9),
            src,
            dst,
            seg: TcpSegment {
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
                payload_len: size,
                ece: false,
                cwr: false,
            },
            ecn: Ecn::NotCapable,
            sent_at: t,
        };
        let ctx = OracleCtx {
            topo: &topo,
            cluster: 1,
            direction: dir,
            path,
        };
        let got = guard.classify_raw(&ctx, &pkt, t);
        let want = IdealOracle::base_latency(&ctx, &pkt).as_secs_f64();
        (got, want)
    };

    // Two packets whose ideal latencies differ in both operands the
    // fallback reads: payload size (pkt) and direction (ctx).
    for (size, dir) in [(64u32, Direction::Up), (1460, Direction::Down)] {
        let (got, want) = pkt_at(size, dir, SimTime::from_micros(10));
        match got {
            RawVerdict::Deliver { latency_secs } => assert_eq!(
                latency_secs, want,
                "fallback must compute from the forwarded ctx/pkt ({size}B {dir:?})"
            ),
            RawVerdict::Drop => panic!("ideal fallback never drops"),
        }
    }
}

#[derive(PartialEq, Debug)]
struct HybridFingerprint {
    completed: u64,
    delivered: u64,
    drops: u64,
    oracle_deliveries: u64,
    events: u64,
    rtt_samples: Vec<u64>,
}

fn run_once(
    params: ClosParams,
    oracle: Box<dyn ClusterOracle + Send>,
    flows: &[elephant::net::FlowSpec],
) -> HybridFingerprint {
    let (net, meta) = run_hybrid(params, 0, oracle, hybrid_cfg(), flows, HORIZON);
    HybridFingerprint {
        completed: net.stats.flows_completed,
        delivered: net.stats.delivered_bytes,
        drops: net.stats.drops.total(),
        oracle_deliveries: net.stats.oracle_deliveries,
        events: meta.events,
        rtt_samples: net
            .stats
            .raw_rtt()
            .iter()
            .take(500)
            .map(|&s| (s * 1e12) as u64)
            .collect(),
    }
}

/// The guard's determinism contract: while it never trips, wrapping the
/// learned oracle changes *nothing* — same flows completed, same events,
/// same RTT samples to the picosecond.
#[test]
fn untripped_guard_preserves_the_fingerprint() {
    // Train a real (tiny) model so the oracle under test is the deployed
    // learned one, not a toy.
    let params = ClosParams::paper_cluster(2);
    let flows = generate(&params, &WorkloadConfig::paper_default(HORIZON, 9));
    let (net, _) = run_ground_truth(params, hybrid_cfg(), Some(1), &flows, HORIZON);
    let records: Vec<BoundaryRecord> = elephant::core::capture_records(net).expect("capture");
    let (model, _) = train_cluster_model(
        &records,
        &params,
        &TrainingOptions {
            hidden: 8,
            layers: 1,
            epochs: 2,
            ..Default::default()
        },
    );

    let elided = filter_touching_cluster(&flows, 0);
    let learned = |m: ClusterModel| LearnedOracle::new(m, params, DropPolicy::Sample, 0xFACE);

    let bare = run_once(params, Box::new(learned(model.clone())), &elided);

    // Ceiling high enough that nothing trips; drift band centered on the
    // model's own training stats, as the CLI derives it.
    let guarded = GuardedOracle::new(
        Box::new(learned(model.clone())),
        Box::new(FixedLatencyOracle(SimDuration::from_micros(40))),
        GuardConfig {
            expected_drop_rate: Some(model.meta.train_drop_rate),
            drop_rate_tolerance: 1.0, // never trips
            ..Default::default()
        },
    );
    let handle = guarded.stats_handle();
    let wrapped = run_once(params, Box::new(guarded), &elided);

    assert_eq!(handle.snapshot().trips(), 0, "guard must not have tripped");
    assert!(handle.snapshot().verdicts > 0, "guard actually in the path");
    assert_eq!(bare, wrapped, "untripped guard must be invisible");
}

/// A resumed sequential run is bit-identical to an uninterrupted one:
/// checkpoint mid-run, finish, rewind to the checkpoint, finish again —
/// all three timelines end on the same fingerprint.
#[test]
fn sequential_checkpoint_resume_is_bit_identical() {
    use elephant::des::Simulator;
    use elephant::net::{schedule_flows, Network, Topology};
    use elephant::scenario::run_fingerprint;
    use std::sync::Arc;

    let params = ClosParams::paper_cluster(2);
    let flows = generate(&params, &WorkloadConfig::paper_default(HORIZON, 21));
    let cfg = NetConfig {
        rtt_scope: RttScope::All,
        ..Default::default()
    };
    let mk = || {
        let mut sim = Simulator::new(Network::new(Arc::new(Topology::clos(params)), cfg));
        schedule_flows(&mut sim, &flows);
        sim
    };

    let mut uninterrupted = mk();
    uninterrupted.run_until(HORIZON);
    let want = run_fingerprint([&uninterrupted.into_world()]);

    let mut sim = mk();
    sim.run_until(SimTime::from_millis(5));
    let snap = sim.checkpoint();
    sim.run_until(HORIZON);
    assert_eq!(
        run_fingerprint([sim.world()]),
        want,
        "taking a checkpoint must not perturb the run"
    );

    // "Crash" after the checkpoint: rewind and replay the second half.
    sim.restore(&snap);
    sim.run_until(HORIZON);
    assert_eq!(
        run_fingerprint([sim.world()]),
        want,
        "a restored run must finish bit-identical to the uninterrupted one"
    );
}

/// Satellite of the same contract for the PDES driver, end to end through
/// the scenario layer: the committed recovery drill's scripted stall trips
/// the watchdog, the supervisor restores, re-stalls drain the retry
/// budget, and the ladder degrades (adaptive → fixed → sequential) — yet
/// the run completes with the healthy run's exact fingerprint, because
/// checkpoints capture everything the dynamics depend on.
#[test]
fn scripted_stall_recovers_to_the_healthy_fingerprint() {
    use elephant::des::EpochMode;
    use elephant::scenario::{compile, load, run_fingerprint, CompileOverrides};

    let scenario = load("scenarios/recovery_drill.toml").expect("drill scenario loads");
    let compiled = compile(&scenario, &CompileOverrides::default());
    let policy = compiled
        .recovery
        .expect("[recovery] is enabled in the drill");

    // Healthy baseline: the stall re-arms after every restore, so the
    // ladder provably lands on the sequential rung — the healthy run to
    // match is the sequential driver's (PDES partitioning/marshalling has
    // its own dynamics, so cross-driver fingerprints are not comparable).
    let (healthy, _) = compiled.run_sequential(None);
    let want = run_fingerprint([&healthy]);

    let run = compiled
        .run_pdes_supervised(None, EpochMode::Adaptive, &policy)
        .expect("supervised run must survive the scripted stall");
    assert!(
        run.log.restores >= 2,
        "watchdog restores expected, log: {}",
        run.log.summary()
    );
    assert_eq!(
        run.log.degradations,
        2,
        "stall re-arms until the ladder reaches sequential, log: {}",
        run.log.summary()
    );
    assert_eq!(
        run_fingerprint(run.nets.iter()),
        want,
        "recovered run must match the healthy fingerprint"
    );

    // Ladder determinism, end to end: an identical failure sequence
    // produces the identical transition log.
    let again = compiled
        .run_pdes_supervised(None, EpochMode::Adaptive, &policy)
        .expect("supervised run is repeatable");
    assert_eq!(
        run.log, again.log,
        "recovery transitions must be deterministic"
    );
}

/// With no faults, supervision is invisible: the supervised PDES run takes
/// its checkpoints and still lands on the unsupervised fingerprint.
#[test]
fn supervised_pdes_without_faults_matches_unsupervised_fingerprint() {
    use elephant::des::EpochMode;
    use elephant::scenario::{compile, load, run_fingerprint, CompileOverrides};

    let scenario = load("scenarios/recovery_drill.toml").expect("drill scenario loads");
    let mut compiled = compile(&scenario, &CompileOverrides::default());
    compiled.faults = None;
    let policy = compiled
        .recovery
        .expect("[recovery] is enabled in the drill");

    let clean = compiled
        .run_pdes(None, EpochMode::Adaptive, None)
        .expect("unsupervised run completes");
    let run = compiled
        .run_pdes_supervised(None, EpochMode::Adaptive, &policy)
        .expect("supervised run completes");

    assert_eq!(run.log.restores, 0, "no faults, no restores");
    assert_eq!(run.log.degradations, 0, "no faults, no degradations");
    assert!(run.log.checkpoints_taken >= 2, "checkpoints were taken");
    assert_eq!(
        run_fingerprint(run.nets.iter()),
        run_fingerprint(clean.nets.iter()),
        "checkpointing must not perturb the dynamics"
    );
}
