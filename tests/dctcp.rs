//! DCTCP end-to-end behaviour through the whole engine: ECN-marking
//! switches plus the DCTCP estimator must keep queues shorter and drop
//! less than New Reno on identical offered load — the property that made
//! the DCTCP trace the paper's workload of choice.

use elephant::des::SimTime;
use elephant::net::{ClosParams, NetConfig, RttScope, TcpConfig};
use elephant::trace::{generate, WorkloadConfig};

fn run(ecn: bool, seed: u64) -> (u64, u64, f64, u64) {
    let mut params = ClosParams::paper_cluster(2);
    if ecn {
        params.host_link = params.host_link.with_ecn(30_000);
        params.fabric_link = params.fabric_link.with_ecn(30_000);
        params.core_link = params.core_link.with_ecn(30_000);
    }
    let horizon = SimTime::from_millis(25);
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, seed));
    let cfg = NetConfig {
        tcp: if ecn {
            TcpConfig::dctcp()
        } else {
            TcpConfig::default()
        },
        rtt_scope: RttScope::All,
        ..Default::default()
    };
    let (net, _) = elephant::core::run_ground_truth(params, cfg, None, &flows, horizon);
    let (marks, _) = net.port_totals();
    (
        net.stats.drops.total(),
        marks,
        net.stats.rtt_hist.quantile(0.99),
        net.stats.flows_completed,
    )
}

#[test]
fn dctcp_marks_instead_of_dropping() {
    let (reno_drops, reno_marks, reno_p99, reno_done) = run(false, 5);
    let (dctcp_drops, dctcp_marks, dctcp_p99, dctcp_done) = run(true, 5);

    assert_eq!(reno_marks, 0, "no ECN on plain drop-tail");
    assert!(dctcp_marks > 1_000, "ECN active: {dctcp_marks} marks");
    assert!(
        (dctcp_drops as f64) < reno_drops as f64 * 0.6,
        "DCTCP drops {dctcp_drops} well below Reno {reno_drops}"
    );
    assert!(
        dctcp_p99 < reno_p99,
        "shorter queues: p99 {dctcp_p99} < {reno_p99}"
    );
    assert!(
        dctcp_done >= reno_done * 9 / 10,
        "throughput not sacrificed"
    );
}
