//! Differential lockdown for the verdict cache: memoization is a pure
//! speedup, not a behavior change. Cache-on and cache-off runs are
//! compared at the distribution level (drop rate, latency mean/p99, KS
//! distance) because a cache hit skips the RNG draw a `Sample`-policy
//! miss would have made — the streams are statistically equivalent, not
//! bit-equal. The bit-level contract is separate: under a deterministic
//! drop policy, replaying a bucket-exact stream returns verdicts
//! bit-identical to the first pass.

use elephant::core::{
    run_ground_truth, run_hybrid, train_cluster_model, ClusterModel, DropPolicy, LatencyCodec,
    LearnedOracle, MacroConfig, ModelMeta, TrainingOptions,
};
use elephant::des::{SimDuration, SimTime};
use elephant::net::{
    BoundaryRecord, ClosParams, ClusterOracle, Direction, Ecn, FlowId, HostAddr, NetConfig,
    OracleCtx, Packet, RawVerdict, RttScope, TcpFlags, TcpSegment, Topology,
};
use elephant::nn::{MicroNet, MicroNetConfig, RnnKind};
use elephant::trace::{filter_touching_cluster, generate, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const HORIZON: SimTime = SimTime::from_millis(12);
const CACHE_CAP: usize = 65_536;

fn hybrid_cfg() -> NetConfig {
    NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    }
}

/// Trains a small but real model so both oracles under test run the
/// deployed inference path.
fn trained_model(seed: u64) -> (ClusterModel, ClosParams, Vec<elephant::net::FlowSpec>) {
    let params = ClosParams::paper_cluster(2);
    let flows = generate(&params, &WorkloadConfig::paper_default(HORIZON, seed));
    let (net, _) = run_ground_truth(params, hybrid_cfg(), Some(1), &flows, HORIZON);
    let records: Vec<BoundaryRecord> = elephant::core::capture_records(net).expect("capture");
    let (model, _) = train_cluster_model(
        &records,
        &params,
        &TrainingOptions {
            hidden: 8,
            layers: 1,
            epochs: 2,
            ..Default::default()
        },
    );
    (model, params, flows)
}

/// Two-sample Kolmogorov–Smirnov distance.
fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let gap = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
        d = d.max(gap);
    }
    d
}

/// 1-Wasserstein (earth-mover) distance between two sorted samples,
/// computed as the integral of |F_a - F_b| over the latency axis.
fn wasserstein1(a_sorted: &[f64], b_sorted: &[f64]) -> f64 {
    let mut xs: Vec<f64> = a_sorted.iter().chain(b_sorted).copied().collect();
    xs.sort_by(f64::total_cmp);
    let cdf = |v: &[f64], x: f64| v.partition_point(|&s| s <= x) as f64 / v.len() as f64;
    xs.windows(2)
        .map(|w| (cdf(a_sorted, w[0]) - cdf(b_sorted, w[0])).abs() * (w[1] - w[0]))
        .sum()
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Full hybrid runs, cache-off vs cache-on: the oracle drop rate must
/// agree within 1% absolute and the end-to-end RTT distributions must be
/// close in KS distance.
#[test]
fn cached_hybrid_matches_uncached_statistics() {
    let (model, params, flows) = trained_model(17);
    let elided = filter_touching_cluster(&flows, 0);

    let run = |oracle: Box<dyn ClusterOracle + Send>| {
        let (net, _) = run_hybrid(params, 0, oracle, hybrid_cfg(), &elided, HORIZON);
        let verdicts = net.stats.oracle_deliveries + net.stats.drops.oracle;
        let drop_rate = net.stats.drops.oracle as f64 / verdicts.max(1) as f64;
        (drop_rate, net.stats.raw_rtt().to_vec(), verdicts)
    };

    let (dr_off, rtt_off, v_off) = run(Box::new(LearnedOracle::new(
        model.clone(),
        params,
        DropPolicy::Sample,
        0xFACE,
    )));
    let cached = LearnedOracle::with_cache(model, params, DropPolicy::Sample, 0xFACE, CACHE_CAP);
    let stats = cached.cache_stats_handle().expect("cache enabled");
    let (dr_on, rtt_on, v_on) = run(Box::new(cached));

    assert!(v_off > 1_000 && v_on > 1_000, "oracles were exercised");
    let snap = stats.snapshot();
    assert!(
        snap.hit_rate() > 0.25,
        "cache must actually serve verdicts (hit rate {:.3})",
        snap.hit_rate()
    );
    assert!(
        (dr_on - dr_off).abs() < 0.01,
        "oracle drop rate diverged: off {dr_off:.4} vs on {dr_on:.4}"
    );
    // The bound is loose by design: a cache hit skips the RNG draw and
    // serves the bucket-representative latency, and the closed TCP loop
    // amplifies those per-verdict differences into different drop/retransmit
    // schedules. The tight distributional bounds live in the open-loop test
    // below; here KS only has to rule out gross divergence.
    let ks = ks_distance(&rtt_off, &rtt_on);
    assert!(
        ks < 0.35,
        "RTT distributions diverged: KS {ks:.3} (off n={}, on n={})",
        rtt_off.len(),
        rtt_on.len()
    );
}

/// Regime-pinned Minimal macro config: latency never dips below the
/// threshold and the drop gate never opens, so no transition ever flushes
/// the cache mid-test.
fn pinned_minimal() -> MacroConfig {
    MacroConfig {
        latency_low: 1e9,
        drop_high: 1.1,
        ..MacroConfig::default()
    }
}

fn untrained_model(seed: u64) -> ClusterModel {
    let cfg = MicroNetConfig {
        input: elephant::core::FEATURE_DIM,
        hidden: 16,
        layers: 1,
        alpha: 0.5,
        rnn: RnnKind::Lstm,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    ClusterModel {
        up: MicroNet::new(cfg, &mut rng),
        down: MicroNet::new(cfg, &mut rng),
        macro_cfg: pinned_minimal(),
        codec: LatencyCodec::default(),
        meta: ModelMeta::default(),
    }
}

/// A repetitive boundary stream: `pairs` flows, constant size, constant
/// inter-arrival gap — every packet of a pair quantizes to the same key
/// once the gap EWMA settles.
fn stream(
    topo: &Topology,
    pairs: usize,
    n: usize,
    start: SimTime,
    payload: u32,
) -> Vec<(Packet, elephant::net::FabricPath, SimTime)> {
    let mut now = start;
    (0..n)
        .map(|i| {
            let pair = i % pairs;
            let src = HostAddr::new(1, (pair % 4) as u16, (pair / 4) as u16);
            let dst = HostAddr::new(0, (pair % 2) as u16, 0);
            let flow = FlowId(pair as u64);
            let path = topo.fabric_path(src, dst, flow);
            let pkt = Packet {
                id: i as u64,
                flow,
                src,
                dst,
                seg: TcpSegment {
                    seq: i as u64,
                    ack: 0,
                    flags: TcpFlags::default(),
                    payload_len: payload,
                    ece: false,
                    cwr: false,
                },
                ecn: Ecn::NotCapable,
                sent_at: now,
            };
            let out = (pkt, path, now);
            now += SimDuration::from_nanos(2_000);
            out
        })
        .collect()
}

fn drive(
    oracle: &mut LearnedOracle,
    topo: &Topology,
    pkts: &[(Packet, elephant::net::FabricPath, SimTime)],
) -> Vec<RawVerdict> {
    pkts.iter()
        .map(|(pkt, path, now)| {
            let ctx = OracleCtx {
                topo,
                cluster: 1,
                direction: Direction::Up,
                path: *path,
            };
            oracle.classify_raw(&ctx, pkt, *now)
        })
        .collect()
}

/// Driving `classify_raw` directly (the seam the guard and the network
/// pull from): cached and uncached verdict latencies must agree on mean,
/// p99, and KS distance.
#[test]
fn cached_latency_distribution_matches_uncached() {
    let topo = Topology::clos_with_stubs(ClosParams::paper_cluster(2), &[1]);
    let params = ClosParams::paper_cluster(2);
    let n = 20_000;

    // Deterministic drop policy: this test isolates the *latency* head
    // (drop-rate equivalence under `Sample` is the hybrid test's job). A
    // cached hit replays the frozen first draw of its key, so with few
    // distinct keys a sampled-drop comparison measures RNG artifacts, not
    // the cache.
    let policy = DropPolicy::Threshold(0.9);
    let latencies = |cache: bool| {
        let model = untrained_model(99);
        let mut oracle = if cache {
            LearnedOracle::with_cache(model, params, policy, 7, CACHE_CAP)
        } else {
            LearnedOracle::new(model, params, policy, 7)
        };
        // Warm up on an *adjacent-bucket* payload (1400 quantizes to size
        // bucket 14, 1460 to bucket 15): the RNN state converges to its
        // steady orbit without the warmup keys colliding with the measured
        // stream's keys, and the switch barely perturbs the input — so
        // every cached value below is captured on the same orbit the
        // uncached outputs come from.
        let w = 4_096;
        drive(
            &mut oracle,
            &topo,
            &stream(&topo, 8, w, SimTime::from_nanos(1), 1400),
        );
        let start = SimTime::from_nanos(1) + SimDuration::from_nanos(w as u64 * 2_000);
        let pkts = stream(&topo, 8, n, start, 1460);
        let mut lats: Vec<f64> = drive(&mut oracle, &topo, &pkts)
            .into_iter()
            .filter_map(|v| match v {
                RawVerdict::Deliver { latency_secs } => Some(latency_secs),
                RawVerdict::Drop => None,
            })
            .collect();
        lats.sort_by(f64::total_cmp);
        lats
    };

    let off = latencies(false);
    let on = latencies(true);
    // An untrained drop head sits near 0.5, so roughly half the stream
    // delivers — plenty of samples either way.
    assert!(off.len() > n / 5 && on.len() > n / 5, "enough deliveries");

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (m_off, m_on) = (mean(&off), mean(&on));
    assert!(
        (m_on - m_off).abs() / m_off.max(1e-12) < 0.10,
        "mean latency diverged: off {m_off:.3e} vs on {m_on:.3e}"
    );
    let (p_off, p_on) = (quantile(&off, 0.99), quantile(&on, 0.99));
    assert!(
        (p_on - p_off).abs() / p_off.max(1e-12) < 0.15,
        "p99 latency diverged: off {p_off:.3e} vs on {p_on:.3e}"
    );
    // The model's output here is nearly atomic (a period-2 orbit), and KS
    // punishes any mass shift between nearby atoms — so it only guards
    // against gross divergence. The sharp distributional bound is the
    // mean-normalized 1-Wasserstein distance, which weights mass shifts by
    // how far the latency actually moved.
    let ks = ks_distance(&off, &on);
    assert!(ks < 0.35, "latency KS distance {ks:.3}");
    let w1 = wasserstein1(&off, &on);
    assert!(
        w1 / m_off < 0.05,
        "normalized W1 distance {:.4} (W1 {w1:.3e}, mean {m_off:.3e})",
        w1 / m_off
    );
}

/// The memoization contract, bit-exact: under a deterministic drop policy
/// and a pinned macro regime, replaying a bucket-exact stream serves every
/// verdict from the cache, bit-identical to the first pass.
#[test]
fn bucket_exact_replay_is_bit_identical() {
    let topo = Topology::clos_with_stubs(ClosParams::paper_cluster(2), &[1]);
    let params = ClosParams::paper_cluster(2);
    let mut oracle = LearnedOracle::with_cache(
        untrained_model(5),
        params,
        DropPolicy::Threshold(0.5),
        3,
        CACHE_CAP,
    );
    let stats = oracle.cache_stats_handle().expect("cache enabled");

    // Warmup settles the per-flow gap EWMAs into stable buckets.
    let warmup = stream(&topo, 4, 512, SimTime::from_nanos(1), 1460);
    drive(&mut oracle, &topo, &warmup);

    // The two passes continue the same constant-gap stream, so every
    // packet carries identical gap features — bucket-exact by
    // construction, without rewinding the clock between passes.
    let k = 2_000;
    let start1 = SimTime::from_nanos(1) + SimDuration::from_nanos(512 * 2_000);
    let start2 = start1 + SimDuration::from_nanos(k as u64 * 2_000);
    let pass1 = drive(&mut oracle, &topo, &stream(&topo, 4, k, start1, 1460));
    let hits_before = stats.snapshot().hits;
    let pass2 = drive(&mut oracle, &topo, &stream(&topo, 4, k, start2, 1460));

    assert_eq!(pass1, pass2, "replay must be bit-identical");
    let snap = stats.snapshot();
    assert_eq!(
        snap.hits - hits_before,
        k as u64,
        "every replayed verdict must come from the cache"
    );
    assert_eq!(snap.invalidations, 0, "pinned regime never flushes");
}
