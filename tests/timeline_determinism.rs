//! The observability layer's determinism contract: turning on the Chrome-
//! trace timeline, the event trace, and the time-series samplers must not
//! change a single simulated outcome. Samplers drive the simulator in
//! chunks instead of scheduling FEL events, and trace/timeline recording
//! only reads state — so an observed run is bit-identical to a blind one.

use elephant::core::{run_ground_truth_observed, run_hybrid_observed};
use elephant::des::{SimDuration, SimTime};
use elephant::net::{ClosParams, IdealOracle, NetConfig, NetSampler, Network, RttScope, TraceLog};
use elephant::trace::{filter_touching_cluster, generate, WorkloadConfig};

const HORIZON: SimTime = SimTime::from_millis(15);

/// Everything the simulation computes, to full precision: flow counts,
/// bytes, drops, per-flow completion times, and raw RTT samples.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    completed: u64,
    delivered: u64,
    drops: u64,
    oracle_deliveries: u64,
    events: u64,
    fct: Vec<(u64, u64, u64)>,
    rtt_samples: Vec<u64>,
}

fn fingerprint(net: &Network, events: u64) -> Fingerprint {
    Fingerprint {
        completed: net.stats.flows_completed,
        delivered: net.stats.delivered_bytes,
        drops: net.stats.drops.total(),
        oracle_deliveries: net.stats.oracle_deliveries,
        events,
        fct: net
            .stats
            .fct
            .iter()
            .map(|r| (r.flow.0, r.started.as_nanos(), r.completed.as_nanos()))
            .collect(),
        rtt_samples: net
            .stats
            .raw_rtt()
            .iter()
            .take(500)
            .map(|&s| (s * 1e12) as u64)
            .collect(),
    }
}

fn cfg() -> NetConfig {
    NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    }
}

#[test]
fn ground_truth_fingerprint_survives_full_observability() {
    let params = ClosParams::paper_cluster(2);
    let flows = generate(&params, &WorkloadConfig::paper_default(HORIZON, 21));

    let (net, meta) = run_ground_truth_observed(params, cfg(), None, &flows, HORIZON, None, None);
    let blind = fingerprint(&net, meta.events);

    // Timeline on, strided trace installed, 50µs sampler chunking the run.
    elephant::obs::timeline().reset();
    elephant::obs::set_timeline_enabled(true);
    let mut sampler = NetSampler::new(SimDuration::from_micros(50), &flows);
    let (net, meta) = run_ground_truth_observed(
        params,
        cfg(),
        None,
        &flows,
        HORIZON,
        Some(TraceLog::strided(20_000, 500_000)),
        Some(&mut sampler),
    );
    elephant::net::export_flow_timeline(&net, 32);
    elephant::obs::set_timeline_enabled(false);
    let recorded = elephant::obs::timeline().len();
    elephant::obs::timeline().reset();
    let observed = fingerprint(&net, meta.events);

    assert!(recorded > 0, "timeline actually captured records");
    assert!(!sampler.rows().is_empty(), "sampler actually ran");
    assert_eq!(blind, observed, "observability must be invisible");
}

#[test]
fn hybrid_fingerprint_survives_full_observability() {
    let params = ClosParams::paper_cluster(2);
    let flows = filter_touching_cluster(
        &generate(&params, &WorkloadConfig::paper_default(HORIZON, 22)),
        0,
    );

    let (net, meta) = run_hybrid_observed(
        params,
        0,
        Box::new(IdealOracle),
        cfg(),
        &flows,
        HORIZON,
        None,
        None,
    );
    let blind = fingerprint(&net, meta.events);

    let mut sampler = NetSampler::new(SimDuration::from_micros(75), &flows);
    let (net, meta) = run_hybrid_observed(
        params,
        0,
        Box::new(IdealOracle),
        cfg(),
        &flows,
        HORIZON,
        Some(TraceLog::strided(20_000, 500_000)),
        Some(&mut sampler),
    );
    let observed = fingerprint(&net, meta.events);

    assert!(net.stats.oracle_deliveries > 0, "oracle exercised");
    assert!(!sampler.rows().is_empty(), "sampler actually ran");
    assert_eq!(blind, observed, "observability must be invisible");
}
