//! The §2.1 scale-only pathology, as a regression test: when the fair
//! share per flow falls below one minimum window per RTT, TCP cannot back
//! off any further and loss becomes persistent. Small fan-in must stay
//! clean; large fan-in must show the regime change.

use std::sync::Arc;

use elephant::des::{SimDuration, SimTime, Simulator};
use elephant::net::{
    schedule_flows, ClosParams, HostAddr, NetConfig, Network, RttScope, TcpConfig, Topology,
};
use elephant::trace::incast;

/// Runs an N-way incast of `total_bytes` split evenly, returns
/// (drop_rate, timeouts, completed).
fn run_incast(n: usize, total_bytes: u64, horizon: SimTime) -> (f64, u64, u64) {
    let racks = (n as u16).div_ceil(4).max(2);
    let params = ClosParams {
        racks_per_cluster: racks,
        hosts_per_rack: 4,
        aggs_per_cluster: 4,
        ..ClosParams::paper_cluster(2)
    };
    let topo = Arc::new(Topology::clos(params));
    let victim = HostAddr::new(0, 0, 0);
    let mut senders = Vec::new();
    'outer: for r in 0..racks {
        for h in 0..4 {
            senders.push(HostAddr::new(1, r, h));
            if senders.len() == n {
                break 'outer;
            }
        }
    }
    let flows = incast(
        &senders,
        victim,
        total_bytes / n as u64,
        SimTime::from_micros(10),
        1,
    );
    let cfg = NetConfig {
        tcp: TcpConfig {
            rto_min: SimDuration::from_millis(10),
            ..Default::default()
        },
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let mut sim = Simulator::new(Network::new(topo, cfg));
    schedule_flows(&mut sim, &flows);
    sim.run_until(horizon);
    sim.world_mut().absorb_live_connections();
    let s = &sim.world().stats;
    (
        s.drops.total() as f64 / s.segments_sent.max(1) as f64,
        s.timeouts,
        s.flows_completed,
    )
}

#[test]
fn loss_regime_changes_with_fan_in() {
    let horizon = SimTime::from_millis(150);
    let total = 40_000_000u64;

    let (drop_small, timeouts_small, done_small) = run_incast(4, total, horizon);
    let (drop_large, timeouts_large, _) = run_incast(128, total, horizon);

    // Small fan-in: fair share (2.5 Gb/s) is far above the min-window
    // rate; slow-start overshoot may drop a little, then it's clean.
    assert!(drop_small < 0.02, "4-way incast drop rate {drop_small}");
    assert_eq!(done_small, 4, "small incast completes");

    // Large fan-in: fair share (78 Mb/s) nears the min-window floor; the
    // loss rate rises by multiples and timeouts appear in force.
    assert!(
        drop_large > drop_small * 3.0,
        "pathological regime: {drop_large} vs {drop_small}"
    );
    assert!(
        timeouts_large > timeouts_small * 10,
        "timeout storm: {timeouts_large} vs {timeouts_small}"
    );
}

#[test]
fn cwnd_never_below_one_mss() {
    // Structural root of the pathology: even under brutal loss the window
    // floor holds (unit-tested in tcp.rs too; this exercises it through
    // the whole engine by verifying the sim makes progress rather than
    // deadlocking at zero window).
    let (_, _, done) = run_incast(64, 4_000_000, SimTime::from_secs(2));
    assert_eq!(
        done, 64,
        "all flows eventually complete — the floor keeps TCP live"
    );
}
