//! End-to-end integration: the paper's full §3 workflow across every
//! crate — simulate small, train, deploy large — with assertions on each
//! stage's artifacts.

use elephant::core::{
    compare_cdfs, run_ground_truth, run_hybrid, train_cluster_model, DropPolicy, LearnedOracle,
    TrainingOptions,
};
use elephant::des::SimTime;
use elephant::net::{ClosParams, Direction, IdealOracle, NetConfig, RttScope};
use elephant::trace::{filter_touching_cluster, generate, WorkloadConfig};

const TRAIN_HORIZON: SimTime = SimTime::from_millis(25);
const EVAL_HORIZON: SimTime = SimTime::from_millis(25);

fn quick_opts() -> TrainingOptions {
    TrainingOptions {
        epochs: 4,
        ..Default::default()
    }
}

#[test]
fn workflow_produces_usable_model_and_faithful_hybrid() {
    // ---- Stage 1: ground truth with capture ----
    let small = ClosParams::paper_cluster(2);
    let flows = generate(&small, &WorkloadConfig::paper_default(TRAIN_HORIZON, 11));
    assert!(flows.len() > 50, "workload generated {} flows", flows.len());
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, meta) = run_ground_truth(small, cfg, Some(1), &flows, TRAIN_HORIZON);
    assert!(
        meta.events > 100_000,
        "substantive simulation ({} events)",
        meta.events
    );
    assert!(net.stats.flows_completed > 0);
    let records = net
        .into_capture()
        .expect("capture configured")
        .into_records();
    assert!(
        records.len() > 1_000,
        "boundary capture harvested {}",
        records.len()
    );
    // Both directions present, latencies physical.
    assert!(records.iter().any(|r| r.direction == Direction::Up));
    assert!(records.iter().any(|r| r.direction == Direction::Down));
    for r in &records {
        if !r.dropped {
            assert!(
                r.latency.as_secs_f64() > 1e-6,
                "latency {} too small",
                r.latency
            );
            assert!(
                r.latency.as_secs_f64() < 1.0,
                "latency {} too large",
                r.latency
            );
        }
    }

    // ---- Stage 2: training ----
    let (model, report) = train_cluster_model(&records, &small, &quick_opts());
    assert!(report.up.train_samples > 500);
    assert!(report.down.train_samples > 500);
    // The boundary streams are dominated by non-drops; even a short
    // training run must beat always-wrong and track the base rate.
    assert!(
        report.up.eval.drop_accuracy > 0.8,
        "up acc {}",
        report.up.eval.drop_accuracy
    );
    assert!(
        report.down.eval.drop_accuracy > 0.8,
        "down acc {}",
        report.down.eval.drop_accuracy
    );
    assert!(
        report.up.eval.latency_rmse < 0.5,
        "rmse {}",
        report.up.eval.latency_rmse
    );

    // Model serialization round-trips.
    let json = model.to_json();
    let restored = elephant::core::ClusterModel::from_json(&json).expect("valid json");
    assert_eq!(restored.to_json(), json);

    // ---- Stage 3: hybrid deployment at 4 clusters ----
    let big = ClosParams::paper_cluster(4);
    let eval_flows = generate(&big, &WorkloadConfig::paper_default(EVAL_HORIZON, 12));
    let measured = NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    };
    let (truth, truth_meta) = run_ground_truth(big, measured, None, &eval_flows, EVAL_HORIZON);

    let elided = filter_touching_cluster(&eval_flows, 0);
    assert!(
        elided.len() < eval_flows.len(),
        "elision removed remote-only flows"
    );
    let oracle = LearnedOracle::new(model, big, DropPolicy::Sample, 99);
    let (hybrid, hybrid_meta) =
        run_hybrid(big, 0, Box::new(oracle), measured, &elided, EVAL_HORIZON);

    // The hybrid does meaningfully less work.
    assert!(
        hybrid_meta.events * 2 < truth_meta.events,
        "hybrid {} vs full {} events",
        hybrid_meta.events,
        truth_meta.events
    );
    assert!(hybrid.stats.oracle_deliveries > 100, "oracle exercised");
    assert!(hybrid.stats.flows_completed > 0);

    // Distribution-level accuracy: same order of magnitude at the median
    // and a sane KS distance (the paper's own Figure 4 is visibly offset,
    // so the bound is deliberately loose).
    let cmp = compare_cdfs(&truth.stats.rtt_cdf(), &hybrid.stats.rtt_cdf());
    assert!(cmp.truth_samples > 500 && cmp.approx_samples > 500);
    assert!(cmp.ks < 0.5, "KS {}", cmp.ks);
    let p50 = cmp.rows.iter().find(|r| r.q == 0.50).expect("p50 reported");
    assert!(
        p50.approx > p50.truth / 5.0 && p50.approx < p50.truth * 5.0,
        "median RTT in the right ballpark: truth {} approx {}",
        p50.truth,
        p50.approx
    );
}

#[test]
fn learned_oracle_beats_zero_queueing_baseline() {
    // The learned model must capture congestion that the ideal
    // (zero-queueing) oracle structurally cannot: its RTT distribution
    // should sit closer to ground truth. Run hot (50% load) so queueing
    // actually dominates the RTTs, and give training a real budget.
    let params = ClosParams::paper_cluster(2);
    let horizon = SimTime::from_millis(40);
    let hot = |seed| {
        let mut wl = WorkloadConfig::paper_default(horizon, seed);
        wl.load = 0.5;
        wl
    };
    let train_flows = generate(&params, &hot(21));
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) = run_ground_truth(params, cfg, Some(1), &train_flows, horizon);
    let records = net.into_capture().expect("capture").into_records();
    let (model, _) = train_cluster_model(&records, &params, &TrainingOptions::default());

    let eval_flows = generate(&params, &hot(22));
    let measured = NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    };
    let (truth, _) = run_ground_truth(params, measured, None, &eval_flows, horizon);
    let elided = filter_touching_cluster(&eval_flows, 0);

    let learned = LearnedOracle::new(model, params, DropPolicy::Sample, 5);
    let (hyb_learned, _) = run_hybrid(params, 0, Box::new(learned), measured, &elided, horizon);
    let (hyb_ideal, _) = run_hybrid(params, 0, Box::new(IdealOracle), measured, &elided, horizon);

    // The structural difference (the paper's conclusion: the model "incurs
    // drops and latency on new packets"): the zero-queueing oracle can
    // never drop or queue, the learned one reproduces both.
    assert_eq!(hyb_ideal.stats.drops.oracle, 0, "ideal oracle cannot drop");
    assert!(
        hyb_learned.stats.drops.oracle > 0,
        "learned oracle reproduces fabric loss"
    );
    // Ground truth's remote fabric adds queueing the ideal oracle elides:
    // the learned oracle's latencies must sit above the physical floor.
    let ideal_p90 = hyb_ideal.stats.rtt_cdf().quantile(0.90);
    let learned_p90 = hyb_learned.stats.rtt_cdf().quantile(0.90);
    let truth_p90 = truth.stats.rtt_cdf().quantile(0.90);
    assert!(
        learned_p90 > ideal_p90,
        "learned p90 {learned_p90} above the zero-queueing floor {ideal_p90}"
    );
    // And the overall distribution stays in the truth's neighbourhood
    // (generous: the paper's own Figure 4 is visibly offset, and the exact
    // KS value shifts with the RNG stream backing workload generation).
    let ks_learned = compare_cdfs(&truth.stats.rtt_cdf(), &hyb_learned.stats.rtt_cdf()).ks;
    assert!(ks_learned < 0.4, "learned KS {ks_learned}");
    assert!(
        learned_p90 > truth_p90 * 0.3 && learned_p90 < truth_p90 * 3.0,
        "learned p90 {learned_p90} within 3x of truth {truth_p90}"
    );
}
