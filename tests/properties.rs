//! Property-based tests over the workspace's core invariants.
//!
//! Each property targets an invariant called out in DESIGN.md: routing
//! validity on arbitrary Clos shapes, TCP liveness under arbitrary loss
//! patterns, max-min feasibility and fairness on arbitrary flow/link
//! graphs, KS-distance metric axioms, size-distribution monotonicity, and
//! workload well-formedness.

use std::collections::HashMap;
use std::sync::Arc;

use elephant::core::{FeatureQuantizer, ModelMeta, QuantizerConfig, FEATURE_DIM, NAN_BUCKET};
use elephant::des::{EmpiricalCdf, SimTime, Simulator};
use elephant::flow::max_min_allocation;
use elephant::net::{
    schedule_flows, ClosParams, Direction, FlowId, FlowSpec, HostAddr, NetConfig, Network,
    NodeKind, RttScope, Topology,
};
use elephant::trace::SizeDist;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ClosParams> {
    (1u16..=4, 1u16..=4, 1u16..=4, 1u16..=3, 1u16..=3).prop_map(
        |(clusters, racks, hosts, aggs, cores)| ClosParams {
            clusters,
            racks_per_cluster: racks,
            hosts_per_rack: hosts,
            aggs_per_cluster: aggs,
            cores_per_group: cores,
            ..ClosParams::paper_cluster(1)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any packet routed hop-by-hop from any host reaches its destination
    /// within the Clos diameter, and up/down routing never loops.
    #[test]
    fn routing_reaches_destination(params in arb_params(), flow in 0u64..1000) {
        let topo = Topology::clos(params);
        let hosts = topo.all_hosts();
        prop_assume!(hosts.len() >= 2);
        let src = hosts[flow as usize % hosts.len()];
        let dst = hosts[(flow as usize * 7 + 1) % hosts.len()];
        prop_assume!(src != dst);
        let mut at = topo.host_node(src);
        let dst_node = topo.host_node(dst);
        let mut hops = 0;
        while at != dst_node {
            let port = topo.route(at, dst, FlowId(flow));
            at = topo.node(at).ports[port.idx()].peer_node;
            hops += 1;
            prop_assert!(hops <= 6, "Clos diameter exceeded");
        }
    }

    /// The wiring is symmetric for every generated shape.
    #[test]
    fn wiring_is_symmetric(params in arb_params()) {
        let topo = Topology::clos(params); // construction self-checks
        // Additionally: every non-boundary port's peer points back.
        for (i, node) in topo.nodes().iter().enumerate() {
            for (pi, port) in node.ports.iter().enumerate() {
                let peer = topo.node(port.peer_node);
                if !matches!(peer.kind, NodeKind::Boundary { .. }) {
                    let back = peer.ports[port.peer_port.idx()];
                    prop_assert_eq!(back.peer_node.idx(), i);
                    prop_assert_eq!(back.peer_port.idx(), pi);
                }
            }
        }
    }

    /// Max-min allocations are feasible (no link oversubscribed) and
    /// water-filling fair (every flow is bottlenecked: some link it
    /// crosses is saturated and it has a maximal rate there).
    #[test]
    fn max_min_is_feasible_and_fair(
        n_links in 1usize..6,
        flows in proptest::collection::vec(proptest::collection::vec(0usize..6, 1..4), 1..8),
        caps in proptest::collection::vec(1.0e6f64..1.0e9, 6),
    ) {
        // Clamp link indices into range and dedup within a flow.
        let paths: Vec<Vec<usize>> = flows
            .iter()
            .map(|p| {
                let mut q: Vec<usize> = p.iter().map(|&l| l % n_links).collect();
                q.sort_unstable();
                q.dedup();
                q
            })
            .collect();
        let caps = &caps[..n_links];
        let rates = max_min_allocation(&paths, caps);
        prop_assert_eq!(rates.len(), paths.len());

        // Feasibility with a small numerical margin.
        let mut load = vec![0.0f64; n_links];
        for (p, &r) in paths.iter().zip(&rates) {
            prop_assert!(r > 0.0);
            for &l in p {
                load[l] += r;
            }
        }
        for l in 0..n_links {
            prop_assert!(load[l] <= caps[l] * 1.0001 + 1.0, "link {l} oversubscribed");
        }

        // Max-min property: each flow crosses a saturated link on which
        // no other flow gets a higher rate.
        for (p, &r) in paths.iter().zip(&rates) {
            let bottlenecked = p.iter().any(|&l| {
                let saturated = load[l] >= caps[l] * 0.999 - 1.0;
                let maximal = paths
                    .iter()
                    .zip(&rates)
                    .filter(|(q, _)| q.contains(&l))
                    .all(|(_, &r2)| r2 <= r * 1.0001 + 1.0);
                saturated && maximal
            });
            prop_assert!(bottlenecked, "flow with rate {r} has no bottleneck");
        }
    }

    /// KS distance is a metric-ish: symmetric, zero on self, in [0,1].
    #[test]
    fn ks_axioms(
        a in proptest::collection::vec(0.0f64..1e3, 1..200),
        b in proptest::collection::vec(0.0f64..1e3, 1..200),
    ) {
        let ca = EmpiricalCdf::from_samples(&a);
        let cb = EmpiricalCdf::from_samples(&b);
        let d_ab = ca.ks_distance(&cb);
        let d_ba = cb.ks_distance(&ca);
        prop_assert!((d_ab - d_ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!(ca.ks_distance(&ca) == 0.0);
    }

    /// Size-distribution quantiles are monotone and samples live within
    /// the distribution's support.
    #[test]
    fn size_dist_support(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let d = SizeDist::web_search();
        let (lo, hi) = (u1.min(u2), u1.max(u2));
        prop_assert!(d.quantile(lo) <= d.quantile(hi));
        prop_assert!(d.quantile(0.0) >= 1);
        prop_assert!(d.quantile(1.0) <= 20_000_000);
    }

    /// TCP under arbitrary port-queue capacities still completes every
    /// flow eventually (liveness under loss): a randomized stress of the
    /// whole engine.
    #[test]
    fn flows_complete_under_random_shallow_queues(
        queue_cap in 4_500u64..60_000,
        n_flows in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut params = ClosParams::paper_cluster(2);
        params.host_link.queue_cap_bytes = queue_cap;
        params.fabric_link.queue_cap_bytes = queue_cap;
        params.core_link.queue_cap_bytes = queue_cap;
        let topo = Arc::new(Topology::clos(params));
        let hosts = topo.all_hosts();
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|i| {
                let s = hosts[(seed as usize + i * 3) % hosts.len()];
                let mut d = hosts[(seed as usize + i * 7 + 1) % hosts.len()];
                if d == s {
                    d = hosts[(seed as usize + i * 7 + 2) % hosts.len()];
                }
                FlowSpec {
                    id: FlowId(i as u64 + 1),
                    src: s,
                    dst: d,
                    bytes: 20_000 + (seed % 50_000),
                    start: SimTime::from_micros(i as u64 * 50),
                }
            })
            .filter(|f| f.src != f.dst)
            .collect();
        prop_assume!(!flows.is_empty());
        let cfg = NetConfig { rtt_scope: RttScope::None, ..Default::default() };
        let mut sim = Simulator::new(Network::new(topo, cfg));
        schedule_flows(&mut sim, &flows);
        sim.run_until(SimTime::from_secs(60));
        prop_assert_eq!(
            sim.world().stats.flows_completed as usize,
            flows.len(),
            "all flows complete despite shallow queues (drops: {})",
            sim.world().stats.drops.total()
        );
        let total: u64 = flows.iter().map(|f| f.bytes).sum();
        prop_assert_eq!(sim.world().stats.delivered_bytes, total);
    }

    /// Flow-ids shared between opposite directions never collide in the
    /// connection tables: canonical/reverse round-trips.
    #[test]
    fn flow_id_direction_bits(raw in 0u64..u64::MAX / 4) {
        let f = FlowId(raw);
        prop_assert!(!f.is_reverse());
        prop_assert!(f.reverse().is_reverse());
        prop_assert_eq!(f.reverse().canonical(), f);
    }

    /// The verdict-cache quantizer is total: any f32 bit pattern buckets
    /// without panicking, for any configured resolution. NaN maps to its
    /// reserved sentinel; every finite or infinite value stays strictly
    /// below it.
    #[test]
    fn quantizer_is_total(bits in any::<u32>(), levels in any::<u8>()) {
        let q = FeatureQuantizer::new(QuantizerConfig { levels });
        let v = f32::from_bits(bits);
        let b = q.bucket(v);
        if v.is_nan() {
            prop_assert_eq!(b, NAN_BUCKET);
        } else {
            prop_assert!(b < NAN_BUCKET, "value {v:e} escaped the bucket range: {b}");
        }
    }

    /// Bucketing is monotone per dimension: a larger feature value never
    /// lands in a smaller bucket (NaN excluded — it has its own sentinel).
    #[test]
    fn quantizer_is_monotone(
        a in -1.0e3f32..1.0e3,
        b in -1.0e3f32..1.0e3,
        levels in any::<u8>(),
    ) {
        let q = FeatureQuantizer::new(QuantizerConfig { levels });
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(
            q.bucket(lo) <= q.bucket(hi),
            "bucket({lo}) = {} > bucket({hi}) = {}",
            q.bucket(lo),
            q.bucket(hi)
        );
    }

    /// The quantizer survives the model artifact round trip: a
    /// `ModelMeta` saved and reloaded through JSON produces a quantizer
    /// whose keys are bit-identical to the original's — cached-run
    /// behavior cannot drift across save/load.
    #[test]
    fn quantizer_stable_across_meta_round_trip(
        features in proptest::collection::vec(-10.0f32..10.0, FEATURE_DIM),
        state_idx in 0u8..4,
        up in any::<bool>(),
        levels in any::<u8>(),
    ) {
        let meta = ModelMeta {
            quantizer: QuantizerConfig { levels },
            ..ModelMeta::default()
        };
        let json = serde_json::to_string(&meta).unwrap();
        let reloaded: ModelMeta = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(reloaded.quantizer, meta.quantizer);

        let dir = if up { Direction::Up } else { Direction::Down };
        let q0 = FeatureQuantizer::new(meta.quantizer);
        let q1 = FeatureQuantizer::new(reloaded.quantizer);
        prop_assert_eq!(
            q0.key(&features, dir, state_idx),
            q1.key(&features, dir, state_idx)
        );
    }
}

/// Fluid vs packet agreement on an uncontended transfer: both engines
/// should report FCTs within a factor of two (the fluid one is an ideal
/// lower bound; TCP adds handshake and slow-start).
#[test]
fn fluid_lower_bounds_packet_fct() {
    let params = ClosParams::paper_cluster(2);
    let topo = Topology::clos(params);
    let flows = [FlowSpec {
        id: FlowId(1),
        src: HostAddr::new(0, 0, 0),
        dst: HostAddr::new(1, 0, 0),
        bytes: 2_000_000,
        start: SimTime::ZERO,
    }];
    let fluid = elephant::flow::simulate(&topo, &flows, SimTime::from_secs(5));
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) =
        elephant::core::run_ground_truth(params, cfg, None, &flows, SimTime::from_secs(5));
    let fluid_fct = fluid.fct[0].fct().as_secs_f64();
    let packet_fct: HashMap<u64, f64> = net
        .stats
        .fct
        .iter()
        .map(|r| (r.flow.0, r.fct().as_secs_f64()))
        .collect();
    let p = packet_fct[&1];
    assert!(
        p >= fluid_fct * 0.95,
        "fluid {fluid_fct} lower-bounds packet {p}"
    );
    assert!(
        p <= fluid_fct * 2.0,
        "packet {p} within 2x of fluid {fluid_fct}"
    );
}
