//! End-user integration: drive the `elephant` CLI binary exactly as a
//! human would — train a model to a file, deploy it hybrid, compare, and
//! inspect a raw trace — asserting on the printed contracts.

use std::process::Command;

fn elephant() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elephant"))
}

fn run_ok(args: &[&str]) -> String {
    let out = elephant().args(args).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "elephant {args:?} failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    stdout
}

#[test]
fn cli_workflow_train_hybrid_compare() {
    let dir = std::env::temp_dir().join("elephant_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.json");
    let model = model.to_str().unwrap();

    // Train (tiny budget; this is a plumbing test, not an accuracy test).
    let out = run_ok(&[
        "train",
        "--horizon-ms",
        "8",
        "--epochs",
        "1",
        "--hidden",
        "8",
        "--layers",
        "1",
        "--out",
        model,
    ]);
    assert!(
        out.contains("boundary records"),
        "training reported capture:\n{out}"
    );
    assert!(out.contains("drop accuracy"), "training reported metrics");
    let json = std::fs::read_to_string(model).expect("model file written");
    assert!(
        json.contains("macro_cfg"),
        "model JSON has expected structure"
    );

    // Hybrid deployment of that model.
    let out = run_ok(&[
        "hybrid",
        "--model",
        model,
        "--clusters",
        "4",
        "--horizon-ms",
        "5",
    ]);
    assert!(
        out.contains("oracle"),
        "hybrid exercised the oracle:\n{out}"
    );
    assert!(out.contains("flows"), "hybrid printed flow summary");

    // Side-by-side comparison table.
    let out = run_ok(&[
        "compare",
        "--model",
        model,
        "--clusters",
        "2",
        "--horizon-ms",
        "5",
    ]);
    assert!(out.contains("KS distance"), "compare printed KS:\n{out}");
    assert!(out.contains("p50"), "compare printed quantile table");
}

#[test]
fn cli_run_with_trace() {
    let out = run_ok(&[
        "run",
        "--clusters",
        "2",
        "--horizon-ms",
        "3",
        "--trace",
        "50",
    ]);
    assert!(out.contains("events"), "run summary printed:\n{out}");
    assert!(out.contains("tx_start"), "raw trace printed");
    assert!(
        out.contains("truncated"),
        "trace reports truncation beyond 50 events"
    );
}

/// `--trace-out` + `--sample-every` produce a Chrome-trace JSON with flow
/// and sampler tracks and a sibling samples CSV; `--pdes` adds per-
/// partition wall-clock tracks — the full three-track-type timeline.
#[test]
fn cli_trace_out_writes_perfetto_timeline() {
    let dir = std::env::temp_dir().join("elephant_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.trace.json");
    let trace_s = trace.to_str().unwrap();

    let out = run_ok(&[
        "run",
        "--clusters",
        "2",
        "--horizon-ms",
        "4",
        "--pdes",
        "2",
        "--sample-every",
        "200",
        "--trace-out",
        trace_s,
    ]);
    assert!(out.contains("under PDES"), "PDES summary printed:\n{out}");
    assert!(out.contains("perfetto"), "timeline written:\n{out}");

    let json = std::fs::read_to_string(&trace).expect("timeline file written");
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""), "chrome-trace envelope");
    // All three track types: wall-clock partition slices, sim-time flow
    // spans, sim-time sampler counters.
    assert!(json.contains("pdes partitions (wall clock)"), "{out}");
    assert!(json.contains("flows & events (sim time)"));
    assert!(json.contains("samplers (sim time)"));
    assert!(json.contains("barrier_wait"), "per-epoch barrier slices");
    assert!(json.contains("queue_bytes"), "sampler counter track");

    let csv_path = format!("{}.samples.csv", trace_s.trim_end_matches(".json"));
    let csv = std::fs::read_to_string(&csv_path).expect("samples CSV written");
    assert!(csv.starts_with("time_us,queue_host_bytes"), "CSV header");
    assert!(csv.lines().count() > 2, "CSV has sample rows");
}

#[test]
fn cli_gru_training_works() {
    let dir = std::env::temp_dir().join("elephant_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("gru.json");
    let model = model.to_str().unwrap();
    let out = run_ok(&[
        "train",
        "--horizon-ms",
        "6",
        "--epochs",
        "1",
        "--hidden",
        "8",
        "--layers",
        "1",
        "--gru",
        "--out",
        model,
    ]);
    assert!(out.contains("GRU"), "GRU trunk announced:\n{out}");
    let json = std::fs::read_to_string(model).unwrap();
    assert!(
        json.contains("Gru"),
        "serialized model records the trunk kind"
    );
}

#[test]
fn cli_rejects_bad_usage() {
    let out = elephant().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = elephant().args(["run", "--frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = elephant().args(["hybrid", "--model"]).output().unwrap(); // flag missing its value
    assert!(!out.status.success());
}

/// `hybrid` without `--model` falls back to capturing and training a small
/// model on the spot, so `--profile`/`--metrics-out` work standalone.
#[test]
fn cli_hybrid_without_model_trains_fallback() {
    let dir = std::env::temp_dir().join("elephant_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("fallback_report.json");
    let report = report.to_str().unwrap();
    let out = run_ok(&[
        "hybrid",
        "--clusters",
        "2",
        "--horizon-ms",
        "5",
        "--metrics-out",
        report,
    ]);
    assert!(
        out.contains("default model"),
        "fallback training announced:\n{out}"
    );
    let json = std::fs::read_to_string(report).expect("metrics report written");
    assert!(
        json.contains("events_per_second") && json.contains("\"metrics\""),
        "report has run stats and a registry snapshot:\n{json}"
    );
}
