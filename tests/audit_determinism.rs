//! Lockdown for the accuracy observatory: the audit driver must be a
//! read-only observer (auditing a run cannot change it), its verdict must
//! be deterministic, and every driver's run-ledger artifact must survive
//! the `elephant compare` round trip — including the audit's own pair.
//!
//! The accuracy gate reuses the reference workload and bounds of
//! `tests/oracle_cache.rs`: a small-but-real trained model on the paper
//! 2-cluster topology, judged at the distribution level.

use std::process::Command;

use elephant::core::{
    run_audit, train_cluster_model, AuditHooks, AuditRun, DropPolicy, LearnedOracle, RunLedger,
    TrainingOptions, LEDGER_SCHEMA_VERSION,
};
use elephant::des::{SimDuration, SimTime};
use elephant::net::{BoundaryRecord, ClosParams, FlowSpec, NetConfig, RttScope};
use elephant::obs::{DivergenceBounds, RunReport};
use elephant::scenario::run_fingerprint;
use elephant::trace::{filter_touching_cluster, generate, WorkloadConfig};

const HORIZON: SimTime = SimTime::from_millis(12);

fn elephant_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elephant"))
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("elephant_audit_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The reference setup from `tests/oracle_cache.rs`: train a small but
/// real model on the audited workload so the audit exercises the deployed
/// inference path.
fn reference_audit(seed: u64) -> AuditRun {
    let params = ClosParams::paper_cluster(2);
    let flows = generate(&params, &WorkloadConfig::paper_default(HORIZON, seed));
    let truth_cfg = NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    };
    let (net, _) = elephant::core::run_ground_truth(params, truth_cfg, Some(1), &flows, HORIZON);
    let records: Vec<BoundaryRecord> = elephant::core::capture_records(net).expect("capture");
    let (model, _) = train_cluster_model(
        &records,
        &params,
        &TrainingOptions {
            hidden: 8,
            layers: 1,
            epochs: 2,
            ..Default::default()
        },
    );

    let elided: Vec<FlowSpec> = filter_touching_cluster(&flows, 0);
    let oracle = LearnedOracle::new(model, params, DropPolicy::Sample, 0xFACE);
    run_audit(
        params,
        0,
        Box::new(oracle),
        NetConfig::default(),
        &elided,
        HORIZON,
        // Drop-rate and KS carry over from the differential suite
        // unchanged. The W1 bound does not: oracle_cache.rs compares two
        // runs of the *same* oracle (W1/mean < 0.05), while truth-vs-
        // hybrid also pays the model's systematic FCT bias, so the
        // calibrated budget for this comparison class is coarser.
        DivergenceBounds {
            max_w1_ratio: 0.75,
            ..DivergenceBounds::default()
        },
        SimDuration::from_micros(200),
        AuditHooks::default(),
    )
}

/// On the reference workload a trained model must hold the differential
/// suite's transferable bounds — drop-rate within 1% absolute, FCT KS
/// below 0.35 — plus the calibrated truth-vs-hybrid W1 budget.
#[test]
fn reference_workload_within_bounds() {
    let run = reference_audit(17);
    let d = &run.divergence;
    assert!(d.flows_matched > 20, "matched {} flows", d.flows_matched);
    // The two oracle_cache.rs bounds that transfer directly, asserted
    // explicitly so a future bounds change cannot silently weaken them.
    assert!(
        d.drop_rate_error() < 0.01,
        "drop-rate error {:.4}",
        d.drop_rate_error()
    );
    assert!(d.fct_ks < 0.35, "FCT KS {:.3}", d.fct_ks);
    assert!(
        d.within_bounds(),
        "reference audit breached bounds: {:?}\n{}",
        d.breaches(),
        d.to_table()
    );
}

/// The audit is deterministic end to end: repeating it on the same seed
/// reproduces both final network states bit-for-bit (fingerprints) and
/// the identical divergence verdict (serialized report).
#[test]
fn audit_is_deterministic() {
    let a = reference_audit(23);
    let b = reference_audit(23);
    assert_eq!(
        run_fingerprint([&a.truth_net]),
        run_fingerprint([&b.truth_net]),
        "ground-truth run must be reproducible"
    );
    assert_eq!(
        run_fingerprint([&a.hybrid_net]),
        run_fingerprint([&b.hybrid_net]),
        "hybrid run must be reproducible"
    );
    let ja = serde_json::to_string(&a.divergence).unwrap();
    let jb = serde_json::to_string(&b.divergence).unwrap();
    assert_eq!(ja, jb, "divergence verdict must be reproducible");
}

/// A perturbed ledger must trip `elephant compare` with the dedicated
/// divergence exit code (8), while the pristine pair compares clean (0).
#[test]
fn cli_compare_flags_perturbed_ledger() {
    let dir = tmp_dir();
    let a_path = dir.join("compare_a.json");
    let b_path = dir.join("compare_b.json");

    let mut report = RunReport::new("run", "2 clusters, 10ms");
    report.set_run(1.0, 100_000, 0.01);
    report.scalar("drop_rate", 0.002);
    let mut a = RunLedger::new("sequential", report);
    a.seed = 7;
    a.fingerprint = 0x1234_5678_9ABC_DEF0;
    let mut b = a.clone();
    a.save(&a_path).unwrap();

    // Clean self-comparison first.
    let ok = elephant_bin()
        .args([
            "compare",
            a_path.to_str().unwrap(),
            a_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        ok.status.success(),
        "self-compare must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Perturb a gated scalar and the fingerprint: both must surface.
    b.report.scalar("drop_rate", 0.2);
    b.fingerprint ^= 1;
    b.save(&b_path).unwrap();
    let out = elephant_bin()
        .args([
            "compare",
            a_path.to_str().unwrap(),
            b_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(8),
        "divergence must exit 8\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("drop_rate"), "scalar drift named: {err}");
    assert!(
        err.contains("fingerprint"),
        "fingerprint drift named: {err}"
    );
}

/// Every driver's `--metrics-out` artifact is a schema-v1 run ledger that
/// reloads with a valid checksum, and the audit's own ledger pair loads
/// the same way — the full round trip `elephant compare` depends on.
#[test]
fn every_driver_emits_a_loadable_ledger() {
    let dir = tmp_dir();
    let cases: &[(&str, Vec<&str>)] = &[
        (
            "sequential",
            vec!["run", "--clusters", "2", "--horizon-ms", "3"],
        ),
        (
            "pdes",
            vec!["run", "--clusters", "2", "--horizon-ms", "3", "--pdes", "2"],
        ),
        (
            "hybrid",
            vec!["hybrid", "--clusters", "2", "--horizon-ms", "5"],
        ),
    ];
    for (driver, args) in cases {
        let path = dir.join(format!("ledger_{driver}.json"));
        let path_s = path.to_str().unwrap().to_string();
        let mut full = args.clone();
        full.extend(["--metrics-out", &path_s]);
        let out = elephant_bin().args(&full).output().expect("binary runs");
        assert!(
            out.status.success(),
            "elephant {full:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let ledger = RunLedger::load(&path).expect("ledger validates");
        assert_eq!(ledger.schema, LEDGER_SCHEMA_VERSION);
        assert_eq!(&ledger.driver, driver, "driver tag for {full:?}");
        assert!(ledger.verify(), "checksum seals the artifact");
        assert!(ledger.report.events > 0, "report carries run facts");
    }

    // The audit pair: hybrid ledger embeds the divergence block (with
    // NaN-bearing oracle attribution rows), truth ledger rides alongside.
    // Exit 0 (within bounds) and 8 (breach) both still write the pair.
    let scenario = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/smoke.toml");
    let audit_path = dir.join("ledger_audit.json");
    let audit_s = audit_path.to_str().unwrap();
    let out = elephant_bin()
        .args([
            "audit",
            scenario,
            "--horizon-ms",
            "6",
            "--ledger-out",
            audit_s,
        ])
        .output()
        .expect("binary runs");
    assert!(
        matches!(out.status.code(), Some(0) | Some(8)),
        "audit must run to verdict:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let hybrid = RunLedger::load(&audit_path).expect("audit-hybrid ledger validates");
    assert_eq!(&hybrid.driver, "audit-hybrid");
    let d = hybrid.divergence.expect("divergence block embedded");
    assert!(d
        .slices
        .iter()
        .any(|s| s.axis == "oracle" && s.truth.is_nan()));
    let truth_path = dir.join("ledger_audit.truth.json");
    let truth = RunLedger::load(&truth_path).expect("audit-truth ledger validates");
    assert_eq!(&truth.driver, "audit-truth");
    assert!(truth.divergence.is_none(), "truth side carries no verdict");
}
