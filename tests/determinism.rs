//! Determinism: the whole pipeline — workload, simulation, capture,
//! training, hybrid deployment — is a pure function of its seeds.
//!
//! This is what makes every figure in EXPERIMENTS.md regenerable: a
//! drive-by `cargo run --bin figureN` produces the committed numbers.

use elephant::core::{
    run_ground_truth, run_hybrid, train_cluster_model, DropPolicy, LearnedOracle, TrainingOptions,
};
use elephant::des::SimTime;
use elephant::net::{ClosParams, NetConfig, RttScope};
use elephant::trace::{filter_touching_cluster, generate, WorkloadConfig};

const HORIZON: SimTime = SimTime::from_millis(15);

#[derive(PartialEq, Debug)]
struct Fingerprint {
    flows: usize,
    completed: u64,
    delivered: u64,
    drops: u64,
    events: u64,
    records: usize,
    model_json_len: usize,
    hybrid_completed: u64,
    hybrid_oracle_deliveries: u64,
    hybrid_events: u64,
    rtt_samples: Vec<u64>,
}

fn pipeline(seed: u64) -> Fingerprint {
    let params = ClosParams::paper_cluster(2);
    let flows = generate(&params, &WorkloadConfig::paper_default(HORIZON, seed));
    let cfg = NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    };
    let (net, meta) = run_ground_truth(params, cfg, Some(1), &flows, HORIZON);
    let rtt_samples: Vec<u64> = net
        .stats
        .raw_rtt()
        .iter()
        .take(500)
        .map(|&s| (s * 1e12) as u64)
        .collect();
    let stats_completed = net.stats.flows_completed;
    let delivered = net.stats.delivered_bytes;
    let drops = net.stats.drops.total();
    let records = net.into_capture().expect("capture").into_records();

    let opts = TrainingOptions {
        epochs: 2,
        ..Default::default()
    };
    let (model, _) = train_cluster_model(&records, &params, &opts);
    let json = model.to_json();

    let elided = filter_touching_cluster(&flows, 0);
    let oracle = LearnedOracle::new(model, params, DropPolicy::Sample, seed ^ 0xABCD);
    let (hybrid, hmeta) = run_hybrid(params, 0, Box::new(oracle), cfg, &elided, HORIZON);

    Fingerprint {
        flows: flows.len(),
        completed: stats_completed,
        delivered,
        drops,
        events: meta.events,
        records: records.len(),
        model_json_len: json.len(),
        hybrid_completed: hybrid.stats.flows_completed,
        hybrid_oracle_deliveries: hybrid.stats.oracle_deliveries,
        hybrid_events: hmeta.events,
        rtt_samples,
    }
}

#[test]
fn same_seed_same_everything() {
    let a = pipeline(7);
    let b = pipeline(7);
    assert_eq!(a, b);
}

/// Observability is read-only: running the same pipeline with metric and
/// span collection enabled yields the bit-identical fingerprint (wall
/// clocks are sampled for reporting but never feed simulated time).
#[test]
fn instrumentation_does_not_perturb_results() {
    let baseline = pipeline(7);
    elephant::obs::set_enabled(true);
    let instrumented = pipeline(7);
    elephant::obs::set_enabled(false);
    assert_eq!(
        baseline, instrumented,
        "instrumented run must match uninstrumented run"
    );
}

#[test]
fn different_seed_different_simulation() {
    let a = pipeline(7);
    let b = pipeline(8);
    // The workload differs, so nearly everything downstream must too.
    assert_ne!(
        (a.flows, a.events, &a.rtt_samples),
        (b.flows, b.events, &b.rtt_samples),
        "seeds must actually matter"
    );
}
