//! Lockdown for scenario-driven hybrid audits: `run-scenario --audit`
//! must run the paired truth+hybrid comparison inside the scenario's
//! committed `[audit]` budget, gate on those bounds with exit 8, and be
//! deterministic end to end — repeating the audit reproduces the sealed
//! ledger pair's fingerprints and divergence verdict exactly.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;

use elephant::core::{
    capture_records, run_ground_truth, train_cluster_model, RunLedger, TrainingOptions,
};
use elephant::des::SimTime;
use elephant::net::{ClosParams, NetConfig, RttScope};
use elephant::trace::{generate, WorkloadConfig};

const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/hybrid_smoke.toml");

fn elephant_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_elephant"))
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("elephant_hybrid_scenario_audit");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a model on the reference two-cluster capture and writes the
/// artifact. `epochs = 0` leaves the nets at their random initialization —
/// the "deliberately loosened" model the breach test deploys.
fn train_model_artifact(epochs: usize, name: &str) -> PathBuf {
    let params = ClosParams::paper_cluster(2);
    let horizon = SimTime::from_millis(12);
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, 9));
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
    let records = capture_records(net).expect("capture was enabled");
    let (model, _) = train_cluster_model(
        &records,
        &params,
        &TrainingOptions {
            hidden: 8,
            layers: 1,
            epochs,
            ..Default::default()
        },
    );
    let path = tmp_dir().join(name);
    std::fs::write(&path, model.to_file_json()).unwrap();
    path
}

/// Both tests that want a competent model share one training run.
fn trained_model() -> PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| train_model_artifact(2, "trained.json"))
        .clone()
}

/// The committed scenario with its `[audit]` KS bound tightened to 0.2 —
/// a budget the trained model meets with 2x margin and the untrained one
/// (KS ~0.33 on this workload) breaches.
fn tight_ks_scenario() -> PathBuf {
    let doc = std::fs::read_to_string(SCENARIO).expect("committed scenario reads");
    assert!(doc.contains("max_ks = 0.35"));
    let doc = doc.replace("max_ks = 0.35", "max_ks = 0.2");
    let path = tmp_dir().join("tight_ks.toml");
    std::fs::write(&path, doc).unwrap();
    path
}

/// The scenario's committed `[audit]` bounds hold for a trained model:
/// the paired run completes and gates clean (exit 0, "audit OK").
#[test]
fn hybrid_scenario_audit_within_committed_budget() {
    let model = trained_model().display().to_string();
    let out = elephant_bin()
        .args(["run-scenario", SCENARIO, "--model", &model, "--audit"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "audit must pass the committed budget\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("audit OK"),
        "verdict line missing: {stdout}"
    );
    assert!(
        stdout.contains("fingerprint:"),
        "hybrid-side fingerprint missing: {stdout}"
    );
}

/// Deploying a deliberately loosened (untrained) model breaches bounds a
/// trained model meets, and the breach exits 8 naming the failed axis.
#[test]
fn loosened_model_breaches_bounds_and_exits_8() {
    let scenario = tight_ks_scenario().display().to_string();

    let good = trained_model().display().to_string();
    let out = elephant_bin()
        .args(["run-scenario", &scenario, "--model", &good, "--audit"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "trained model must meet the tightened budget:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let loose = train_model_artifact(0, "untrained.json")
        .display()
        .to_string();
    let out = elephant_bin()
        .args(["run-scenario", &scenario, "--model", &loose, "--audit"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(8),
        "untrained model must breach\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("audit FAILED"),
        "breach verdict missing: {stderr}"
    );
    assert!(stderr.contains("KS"), "failed axis not named: {stderr}");
}

/// Repeating the audit reproduces the sealed ledger pair: identical
/// fingerprints on both sides and a byte-identical divergence verdict.
/// (Wall-clock timings are the only fields allowed to differ.)
#[test]
fn repeat_audit_reproduces_the_sealed_ledger_pair() {
    let model = trained_model().display().to_string();
    let run = |tag: &str| -> (RunLedger, RunLedger) {
        let base = tmp_dir().join(format!("audit_{tag}.json"));
        let base_s = base.display().to_string();
        let out = elephant_bin()
            .args([
                "run-scenario",
                SCENARIO,
                "--model",
                &model,
                "--audit",
                "--metrics-out",
                &base_s,
            ])
            .output()
            .expect("binary runs");
        assert!(
            matches!(out.status.code(), Some(0) | Some(8)),
            "audit must run to verdict:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let hybrid = RunLedger::load(&base).expect("hybrid ledger validates");
        let truth_path = tmp_dir().join(format!("audit_{tag}.truth.json"));
        let truth = RunLedger::load(&truth_path).expect("truth ledger validates");
        (hybrid, truth)
    };
    let (h1, t1) = run("first");
    let (h2, t2) = run("second");

    assert!(h1.verify() && t1.verify(), "checksums seal the pair");
    assert_eq!(&h1.driver, "audit-hybrid");
    assert_eq!(&t1.driver, "audit-truth");
    assert_eq!(h1.fingerprint, h2.fingerprint, "hybrid side reproducible");
    assert_eq!(t1.fingerprint, t2.fingerprint, "truth side reproducible");
    let d1 = h1.divergence.expect("divergence block embedded");
    let d2 = h2.divergence.expect("divergence block embedded");
    assert_eq!(
        serde_json::to_string(&d1).unwrap(),
        serde_json::to_string(&d2).unwrap(),
        "divergence verdict must serialize to identical bytes"
    );
    assert!(t1.divergence.is_none(), "truth side carries no verdict");
}
