//! PDES consistency: the parallel engine must compute the *same
//! simulation* as the sequential engine.
//!
//! Exact bitwise equality is not the contract: simultaneous arrivals at a
//! shared queue are tie-broken by insertion order, which differs between a
//! global event list and per-partition lists (OMNeT++'s PDES has the same
//! property). What must hold: every flow completes in both engines on a
//! drain-to-quiescence run, delivered byte counts match exactly, and event
//! counts agree to within tie-ordering noise.

use elephant::des::SimTime;
use elephant::net::{ClosParams, NetConfig, RttScope};
use elephant::trace::{generate, LoadProfile, Locality, SizeDist, WorkloadConfig};
use elephant_bench::{run_hybrid_pdes, run_pdes, train_default_model};

#[test]
fn pdes_matches_sequential_outcomes() {
    let params = ClosParams::leaf_spine(4);
    let gen_horizon = SimTime::from_millis(5);
    let wl = WorkloadConfig {
        load: 0.25,
        sizes: SizeDist::web_search(),
        locality: Locality::leaf_spine(),
        horizon: gen_horizon,
        seed: 31,
        profile: LoadProfile::Constant,
    };
    let flows = generate(&params, &wl);
    assert!(flows.len() >= 10);
    let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
    // Long horizon: everything drains.
    let horizon = SimTime::from_secs(30);

    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, meta) = elephant::core::run_ground_truth(params, cfg, None, &flows, horizon);
    assert_eq!(
        net.stats.flows_completed as usize,
        flows.len(),
        "sequential drains"
    );
    assert_eq!(net.stats.delivered_bytes, total_bytes);

    for (partitions, machines) in [(2usize, 1usize), (4, 2), (4, 4)] {
        let out = run_pdes(params, &flows, horizon, partitions, machines, 64);
        // Delivered bytes & completions live inside the partitions'
        // networks, which run_pdes does not return; event-count agreement
        // plus the lookahead assertions inside the engine are the
        // invariant here.
        let seq = meta.events as f64;
        let par = out.report.events_executed as f64;
        let rel = (seq - par).abs() / seq;
        assert!(
            rel < 0.05,
            "event counts diverged beyond tie noise: sequential {seq}, \
             pdes({partitions},{machines}) {par} (rel {rel:.4})"
        );
    }
}

#[test]
fn pdes_event_totals_are_reproducible() {
    // Two identical PDES runs must agree exactly with each other: thread
    // interleaving may vary, but each partition's event stream is fixed by
    // the lookahead barrier discipline... except for mailbox append order
    // at identical timestamps, which epoch-based delivery sorts by time.
    let params = ClosParams::leaf_spine(4);
    let wl = WorkloadConfig {
        load: 0.2,
        sizes: SizeDist::fixed(30_000),
        locality: Locality::leaf_spine(),
        horizon: SimTime::from_millis(3),
        seed: 77,
        profile: LoadProfile::Constant,
    };
    let flows = generate(&params, &wl);
    let horizon = SimTime::from_secs(10);
    let a = run_pdes(params, &flows, horizon, 4, 2, 64);
    let b = run_pdes(params, &flows, horizon, 4, 2, 64);
    assert_eq!(a.report.remote_messages, b.report.remote_messages);
    // Event totals can differ only through same-instant mailbox ordering;
    // for this workload they should be stable.
    let rel = (a.report.events_executed as f64 - b.report.events_executed as f64).abs()
        / a.report.events_executed as f64;
    assert!(rel < 0.01, "repeat runs diverged: {a:?} vs {b:?}");
}

#[test]
fn hybrid_pdes_smoke() {
    // The hybrid simulator under conservative PDES: cluster-wise
    // partitions, per-partition oracle instances around shared weights.
    // Verifies the lookahead discipline holds (the engine asserts it) and
    // that boundary traffic actually flows across partitions.
    let horizon = SimTime::from_millis(10);
    let (model, _, _) = train_default_model(
        SimTime::from_millis(15),
        3,
        &elephant::core::TrainingOptions {
            epochs: 2,
            ..Default::default()
        },
    );
    let params = ClosParams::paper_cluster(4);
    let flows = elephant::trace::filter_touching_cluster(
        &generate(&params, &WorkloadConfig::paper_default(horizon, 4)),
        0,
    );
    assert!(!flows.is_empty());
    let (out, oracle_pkts) = run_hybrid_pdes(params, 0, &model, &flows, horizon, 2, 64, 9);
    assert!(
        out.report.events_executed > 10_000,
        "events {}",
        out.report.events_executed
    );
    assert!(
        out.report.remote_messages > 100,
        "cross-partition traffic flows"
    );
    assert!(
        oracle_pkts > 100,
        "oracles exercised in their partitions: {oracle_pkts}"
    );
}
