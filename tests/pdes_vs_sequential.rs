//! PDES consistency: the parallel engine must compute the *same
//! simulation* as the sequential engine.
//!
//! Exact bitwise equality is not the contract: simultaneous arrivals at a
//! shared queue are tie-broken by insertion order, which differs between a
//! global event list and per-partition lists (OMNeT++'s PDES has the same
//! property). What must hold: every flow completes in both engines on a
//! drain-to-quiescence run, delivered byte counts match exactly, and event
//! counts agree to within tie-ordering noise.

use elephant::core::{run_pdes_full, PdesRun};
use elephant::des::{EpochMode, SimTime};
use elephant::net::{ClosParams, NetConfig, RttScope};
use elephant::trace::{generate, LoadProfile, Locality, SizeDist, WorkloadConfig};
use elephant_bench::{run_hybrid_pdes, run_pdes, train_default_model};

#[test]
fn pdes_matches_sequential_outcomes() {
    let params = ClosParams::leaf_spine(4);
    let gen_horizon = SimTime::from_millis(5);
    let wl = WorkloadConfig {
        load: 0.25,
        sizes: SizeDist::web_search(),
        locality: Locality::leaf_spine(),
        horizon: gen_horizon,
        seed: 31,
        profile: LoadProfile::Constant,
    };
    let flows = generate(&params, &wl);
    assert!(flows.len() >= 10);
    let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
    // Long horizon: everything drains.
    let horizon = SimTime::from_secs(30);

    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, meta) = elephant::core::run_ground_truth(params, cfg, None, &flows, horizon);
    assert_eq!(
        net.stats.flows_completed as usize,
        flows.len(),
        "sequential drains"
    );
    assert_eq!(net.stats.delivered_bytes, total_bytes);

    for (partitions, machines) in [(2usize, 1usize), (4, 2), (4, 4)] {
        let out = run_pdes(params, &flows, horizon, partitions, machines, 64);
        // Delivered bytes & completions live inside the partitions'
        // networks, which run_pdes does not return; event-count agreement
        // plus the lookahead assertions inside the engine are the
        // invariant here.
        let seq = meta.events as f64;
        let par = out.report.events_executed as f64;
        let rel = (seq - par).abs() / seq;
        assert!(
            rel < 0.05,
            "event counts diverged beyond tie noise: sequential {seq}, \
             pdes({partitions},{machines}) {par} (rel {rel:.4})"
        );
    }
}

#[test]
fn pdes_event_totals_are_reproducible() {
    // Two identical PDES runs must agree exactly with each other: thread
    // interleaving may vary, but each partition's event stream is fixed by
    // the lookahead barrier discipline... except for mailbox append order
    // at identical timestamps, which epoch-based delivery sorts by time.
    let params = ClosParams::leaf_spine(4);
    let wl = WorkloadConfig {
        load: 0.2,
        sizes: SizeDist::fixed(30_000),
        locality: Locality::leaf_spine(),
        horizon: SimTime::from_millis(3),
        seed: 77,
        profile: LoadProfile::Constant,
    };
    let flows = generate(&params, &wl);
    let horizon = SimTime::from_secs(10);
    let a = run_pdes(params, &flows, horizon, 4, 2, 64);
    let b = run_pdes(params, &flows, horizon, 4, 2, 64);
    assert_eq!(a.report.remote_messages, b.report.remote_messages);
    // Event totals can differ only through same-instant mailbox ordering;
    // for this workload they should be stable.
    let rel = (a.report.events_executed as f64 - b.report.events_executed as f64).abs()
        / a.report.events_executed as f64;
    assert!(rel < 0.01, "repeat runs diverged: {a:?} vs {b:?}");
}

/// Everything a PDES run computes, per partition, to full precision.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    completed: u64,
    delivered: u64,
    drops: u64,
    events: u64,
    remote_sent: u64,
    fct: Vec<(u64, u64, u64)>,
}

fn fingerprints(run: &PdesRun) -> Vec<Fingerprint> {
    run.nets
        .iter()
        .zip(&run.report.partitions)
        .map(|(net, p)| Fingerprint {
            completed: net.stats.flows_completed,
            delivered: net.stats.delivered_bytes,
            drops: net.stats.drops.total(),
            events: p.events,
            remote_sent: p.remote_events_sent,
            fct: net
                .stats
                .fct
                .iter()
                .map(|r| (r.flow.0, r.started.as_nanos(), r.completed.as_nanos()))
                .collect(),
        })
        .collect()
}

#[test]
fn adaptive_and_fixed_epochs_compute_identical_simulations() {
    // Uneven partition loads (all traffic confined to half the racks) plus
    // a long idle gap (a second flow wave 12ms after the first drains):
    // the two conditions where the adaptive planner diverges most from
    // fixed-increment stepping. The simulations must still be
    // bit-identical — per-partition completions, delivered bytes, drops,
    // event counts, and every flow-completion time to the nanosecond —
    // while the adaptive planner executes strictly fewer epochs and jumps
    // the gap instead of grinding it.
    let params = ClosParams::leaf_spine(4);
    let wl = WorkloadConfig {
        load: 0.3,
        sizes: SizeDist::fixed(30_000),
        locality: Locality::leaf_spine(),
        horizon: SimTime::from_millis(2),
        seed: 53,
        profile: LoadProfile::Constant,
    };
    // Uneven: keep only flows whose endpoints both sit in racks 0-1, so
    // partitions 2-3 see nothing but pass-through fabric traffic.
    let mut flows: Vec<_> = generate(&params, &wl)
        .into_iter()
        .filter(|f| f.src.rack < 2 && f.dst.rack < 2)
        .collect();
    assert!(flows.len() >= 4, "workload too small: {}", flows.len());
    // Idle gap: replay the same wave 12ms later (thousands of lookaheads).
    let wave: Vec<_> = flows.clone();
    for f in wave {
        let mut f = f;
        f.id = elephant::net::FlowId(f.id.0 + 1_000_000);
        f.start = SimTime::from_nanos(f.start.as_nanos() + 12_000_000);
        flows.push(f);
    }
    let horizon = SimTime::from_millis(24);

    let run = |mode: EpochMode| -> PdesRun {
        run_pdes_full(params, &flows, horizon, 4, 2, 64, mode, None, None)
            .unwrap_or_else(|e| panic!("PDES run failed: {e}"))
    };
    let adaptive = run(EpochMode::Adaptive);
    let fixed = run(EpochMode::Fixed);

    assert_eq!(
        fingerprints(&adaptive),
        fingerprints(&fixed),
        "epoch planning changed the simulation"
    );
    assert!(
        adaptive.report.epochs < fixed.report.epochs,
        "adaptive must execute strictly fewer epochs: {} vs {}",
        adaptive.report.epochs,
        fixed.report.epochs
    );
    assert!(
        adaptive.report.epochs_jumped > 0,
        "the idle gap must be jumped, not ground through"
    );
    assert_eq!(fixed.report.epochs_jumped, 0, "fixed mode never jumps");
    // The load imbalance must actually hold, or this test is vacuous.
    let events: Vec<u64> = adaptive
        .report
        .partitions
        .iter()
        .map(|p| p.events)
        .collect();
    assert!(
        events[0] + events[1] > 4 * (events[2] + events[3]),
        "expected uneven loads, got {events:?}"
    );
}

#[test]
fn hybrid_pdes_smoke() {
    // The hybrid simulator under conservative PDES: cluster-wise
    // partitions, per-partition oracle instances around shared weights.
    // Verifies the lookahead discipline holds (the engine asserts it) and
    // that boundary traffic actually flows across partitions.
    let horizon = SimTime::from_millis(10);
    let (model, _, _) = train_default_model(
        SimTime::from_millis(15),
        3,
        &elephant::core::TrainingOptions {
            epochs: 2,
            ..Default::default()
        },
    );
    let params = ClosParams::paper_cluster(4);
    let flows = elephant::trace::filter_touching_cluster(
        &generate(&params, &WorkloadConfig::paper_default(horizon, 4)),
        0,
    );
    assert!(!flows.is_empty());
    let (out, oracle_pkts) = run_hybrid_pdes(params, 0, &model, &flows, horizon, 2, 64, 9);
    assert!(
        out.report.events_executed > 10_000,
        "events {}",
        out.report.events_executed
    );
    assert!(
        out.report.remote_messages > 100,
        "cross-partition traffic flows"
    );
    assert!(
        oracle_pkts > 100,
        "oracles exercised in their partitions: {oracle_pkts}"
    );
}
