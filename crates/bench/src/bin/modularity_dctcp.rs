//! **§3 design goal "Modularity"**: "the method we choose must be able to
//! model different protocols and traffic patterns."
//!
//! This harness repeats the train-and-approximate pipeline under a
//! *different transport*: DCTCP on ECN-marking switches instead of TCP
//! New Reno on plain drop-tail. Nothing in the pipeline is told about the
//! change — the boundary capture, features, macro calibration, and micro
//! models are protocol-agnostic — so comparable held-out accuracy under
//! both stacks is direct evidence for the modularity claim.
//!
//! It also reports what the protocols themselves did (ECN marks, drops,
//! RTT quantiles), since DCTCP's whole point is keeping queues short.

use elephant_bench::{emit_report, fmt_f, print_table, Args};
use elephant_core::{run_ground_truth, train_cluster_model, TrainingOptions};
use elephant_net::{ClosParams, NetConfig, RttScope, TcpConfig};
use elephant_obs::RunReport;
use elephant_trace::{generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(40, 200);

    // ECN marking threshold: 30 kB (20 full frames), the DCTCP regime.
    let mut dctcp_params = ClosParams::paper_cluster(2);
    dctcp_params.host_link = dctcp_params.host_link.with_ecn(30_000);
    dctcp_params.fabric_link = dctcp_params.fabric_link.with_ecn(30_000);
    dctcp_params.core_link = dctcp_params.core_link.with_ecn(30_000);

    let variants: &[(&str, ClosParams, TcpConfig)] = &[
        (
            "New Reno",
            ClosParams::paper_cluster(2),
            TcpConfig::default(),
        ),
        ("DCTCP", dctcp_params, TcpConfig::dctcp()),
    ];

    let mut run_report = RunReport::new(
        "modularity_dctcp",
        format!("New Reno vs DCTCP, horizon {horizon}, seed {}", args.seed),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, params, tcp) in variants {
        println!("running + training under {name} ...");
        let flows = generate(params, &WorkloadConfig::paper_default(horizon, args.seed));
        let cfg = NetConfig {
            tcp: *tcp,
            rtt_scope: RttScope::All,
            ..Default::default()
        };
        let (net, _) = run_ground_truth(*params, cfg, Some(1), &flows, horizon);
        let (marks, _) = net.port_totals();
        let drops = net.stats.drops.total();
        let p99 = net.stats.rtt_hist.quantile(0.99);
        let completed = net.stats.flows_completed;
        let records = net.into_capture().expect("capture").into_records();
        let drop_rate =
            records.iter().filter(|r| r.dropped).count() as f64 / records.len().max(1) as f64;

        let (_, report) = train_cluster_model(&records, params, &TrainingOptions::default());
        let acc = (report.up.eval.drop_accuracy + report.down.eval.drop_accuracy) / 2.0;
        let rmse = (report.up.eval.latency_rmse + report.down.eval.latency_rmse) / 2.0;

        let key = name.replace(' ', "_");
        run_report.scalar(format!("drops_{key}"), drops as f64);
        run_report.scalar(format!("ecn_marks_{key}"), marks as f64);
        run_report.scalar(format!("rtt_p99_s_{key}"), p99);
        run_report.scalar(format!("drop_acc_{key}"), acc);
        run_report.scalar(format!("latency_rmse_{key}"), rmse);

        rows.push(vec![
            name.to_string(),
            completed.to_string(),
            drops.to_string(),
            marks.to_string(),
            format!("{:.1}us", p99 * 1e6),
            fmt_f(drop_rate),
            fmt_f(acc),
            fmt_f(rmse),
        ]);
        csv.push(vec![
            name.to_string(),
            completed.to_string(),
            drops.to_string(),
            marks.to_string(),
            format!("{p99}"),
            format!("{drop_rate}"),
            format!("{acc}"),
            format!("{rmse}"),
        ]);
    }

    print_table(
        "Modularity: the same pipeline models two transports",
        &[
            "transport",
            "flows done",
            "drops",
            "ECN marks",
            "RTT p99",
            "fabric drop rate",
            "model drop acc",
            "latency rmse",
        ],
        &rows,
    );
    write_csv(
        args.out.join("modularity_dctcp.csv"),
        &[
            "transport",
            "completed",
            "drops",
            "ecn_marks",
            "rtt_p99_s",
            "fabric_drop_rate",
            "drop_acc",
            "latency_rmse",
        ],
        &csv,
    )
    .expect("write csv");
    println!(
        "\nwrote {}",
        args.out.join("modularity_dctcp.csv").display()
    );
    println!(
        "shape targets: DCTCP marks instead of dropping (fewer drops, lower\n\
         p99); the untouched pipeline reaches comparable accuracy on both."
    );

    run_report.gather();
    emit_report(&run_report, &args);
}
