//! Smoke bench: proves the observability layer is zero-cost when disabled.
//!
//! Runs `scenarios/smoke.toml` (the paper's two-cluster Poisson web-search
//! mix) three ways, interleaved to defeat thermal/frequency drift:
//!
//! * **baseline** — the plain [`elephant_core::run_ground_truth`] path,
//!   timeline and metrics off (the pre-observability code path);
//! * **disabled** — the `_observed` entry point with every hook present
//!   but switched off (no trace, no sampler, timeline disabled) — the
//!   path every production run now takes;
//! * **enabled** — timeline + strided trace + 100µs sampler, reported for
//!   information only.
//!
//! A fourth interleaved variant measures checkpoint overhead:
//!
//! * **checkpointed** — the supervised sequential driver at the default
//!   checkpoint interval, no faults injected, so every cost is the
//!   periodic world snapshot.
//!
//! The CI gates: the median *disabled* wall time may exceed the median
//! *baseline* by at most 5%, and so may the median *checkpointed* wall
//! time (each plus a small absolute allowance so microsecond-scale
//! jitter on a fast run cannot trip the ratio). Exits non-zero on
//! violation. Writes `BENCH_smoke.json` under `--out`.

use elephant_bench::{emit_report, fmt_f, print_table, Args};
use elephant_core::{run_ground_truth, run_ground_truth_observed, run_sequential_supervised};
use elephant_des::SimDuration;
use elephant_net::{NetSampler, TraceLog};
use elephant_scenario::{compile, load, CompileOverrides};

/// The reference workload, shared with `elephant run-scenario`.
const SCENARIO: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/smoke.toml");

const ROUNDS: usize = 5;
/// Relative overhead budget for the disabled path.
const MAX_OVERHEAD: f64 = 0.05;
/// Absolute slack (seconds): below this delta the ratio test is noise.
const ABS_SLACK: f64 = 0.010;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let args = Args::parse();
    let horizon = args.horizon(20, 200);
    // The scenario's Poisson window is unspecified, so it stretches to the
    // overridden horizon — quick and full modes come from one file.
    let scenario = load(SCENARIO).unwrap_or_else(|e| panic!("cannot load scenario: {e}"));
    let compiled = compile(
        &scenario,
        &CompileOverrides {
            seed: Some(args.seed),
            horizon_ms: Some(horizon.as_secs_f64() * 1e3),
            repeat: None,
        },
    );
    let params = compiled.params;
    let flows = compiled.flows;

    // Warm-up: touch the allocator and page in the code paths once.
    run_ground_truth(params, Default::default(), None, &flows, horizon);

    let policy = elephant_core::RecoveryPolicy::default();
    let mut base = Vec::with_capacity(ROUNDS);
    let mut disabled = Vec::with_capacity(ROUNDS);
    let mut checkpointed = Vec::with_capacity(ROUNDS);
    let mut events = 0u64;
    let mut checkpoints_taken = 0u64;
    for _ in 0..ROUNDS {
        let (_, m) = run_ground_truth(params, Default::default(), None, &flows, horizon);
        base.push(m.wall.as_secs_f64());
        events = m.events;
        let (_, m) = run_ground_truth_observed(
            params,
            Default::default(),
            None,
            &flows,
            horizon,
            None,
            None,
        );
        disabled.push(m.wall.as_secs_f64());
        let run = run_sequential_supervised(params, Default::default(), &flows, horizon, &policy)
            .unwrap_or_else(|e| panic!("supervised run failed: {e}"));
        checkpoints_taken = run.log.checkpoints_taken;
        checkpointed.push(run.wall.as_secs_f64());
    }

    // One enabled run, informational: full timeline + sampler + trace.
    elephant_obs::timeline().reset();
    elephant_obs::set_timeline_enabled(true);
    let mut sampler = NetSampler::new(SimDuration::from_micros(100), &flows);
    let trace = TraceLog::strided(50_000, events);
    let (net, enabled_meta) = run_ground_truth_observed(
        params,
        Default::default(),
        None,
        &flows,
        horizon,
        Some(trace),
        Some(&mut sampler),
    );
    elephant_net::export_flow_timeline(&net, elephant_net::MAX_FLOW_TRACKS);
    elephant_obs::set_timeline_enabled(false);
    let timeline_records = elephant_obs::timeline().len();
    elephant_obs::timeline().reset();

    let med_base = median(&mut base);
    let med_disabled = median(&mut disabled);
    let med_checkpointed = median(&mut checkpointed);
    let med_enabled = enabled_meta.wall.as_secs_f64();
    let overhead_disabled = (med_disabled - med_base) / med_base;
    let overhead_checkpointed = (med_checkpointed - med_base) / med_base;
    let overhead_enabled = (med_enabled - med_base) / med_base;

    print_table(
        "observability + checkpoint overhead (median wall seconds)",
        &["variant", "wall_s", "vs baseline"],
        &[
            vec!["baseline".into(), fmt_f(med_base), "-".into()],
            vec![
                "obs disabled".into(),
                fmt_f(med_disabled),
                format!("{:+.2}%", overhead_disabled * 100.0),
            ],
            vec![
                format!("checkpointed x{checkpoints_taken}"),
                fmt_f(med_checkpointed),
                format!("{:+.2}%", overhead_checkpointed * 100.0),
            ],
            vec![
                "obs enabled".into(),
                fmt_f(med_enabled),
                format!("{:+.2}%", overhead_enabled * 100.0),
            ],
        ],
    );

    let mut report = elephant_obs::RunReport::new("smoke", "observability overhead gate");
    report.set_run(med_disabled, events, horizon.as_secs_f64());
    report.scalar("wall_baseline_s", med_base);
    report.scalar("wall_disabled_s", med_disabled);
    report.scalar("wall_checkpointed_s", med_checkpointed);
    report.scalar("wall_enabled_s", med_enabled);
    report.scalar("overhead_disabled", overhead_disabled);
    report.scalar("overhead_checkpointed", overhead_checkpointed);
    report.scalar("checkpoints_taken", checkpoints_taken as f64);
    report.scalar("overhead_enabled", overhead_enabled);
    report.scalar("timeline_records", timeline_records as f64);
    report.scalar("sampler_rows", sampler.rows().len() as f64);
    report.gather();
    emit_report(&report, &args);

    let delta = med_disabled - med_base;
    if overhead_disabled > MAX_OVERHEAD && delta > ABS_SLACK {
        eprintln!(
            "FAIL: disabled-path overhead {:+.2}% exceeds the {:.0}% budget ({}s over baseline)",
            overhead_disabled * 100.0,
            MAX_OVERHEAD * 100.0,
            fmt_f(delta),
        );
        std::process::exit(1);
    }
    let ckpt_delta = med_checkpointed - med_base;
    if overhead_checkpointed > MAX_OVERHEAD && ckpt_delta > ABS_SLACK {
        eprintln!(
            "FAIL: checkpoint overhead {:+.2}% at the default interval exceeds the \
             {:.0}% budget ({}s over baseline, {checkpoints_taken} checkpoints)",
            overhead_checkpointed * 100.0,
            MAX_OVERHEAD * 100.0,
            fmt_f(ckpt_delta),
        );
        std::process::exit(1);
    }
    println!(
        "PASS: disabled-path overhead {:+.2}% and checkpoint overhead {:+.2}% \
         within the {:.0}% budget",
        overhead_disabled * 100.0,
        overhead_checkpointed * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
