//! **Ablation A3 (§4.1)**: does the macro-state feature help the micro
//! model?
//!
//! The paper's hierarchy rests on the claim that the micro model benefits
//! from knowing the current congestion regime. We train twice from the
//! same capture: once normally, and once with the macro classifier's
//! thresholds pinned so it never leaves `Minimal` — the one-hot feature
//! becomes a constant and carries no information. A workload with an
//! incast burst (so regimes actually vary) makes the difference visible.

use elephant_bench::{emit_report, fmt_f, print_table, Args};
use elephant_core::{run_ground_truth, train_cluster_model, MacroConfig, TrainingOptions};
use elephant_net::{ClosParams, HostAddr, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{generate, incast, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(40, 200);
    let params = ClosParams::paper_cluster(2);

    // Bursty workload so macro states carry signal.
    let mut flows = generate(&params, &WorkloadConfig::paper_default(horizon, args.seed));
    let max_id = flows.iter().map(|f| f.id.0).max().unwrap_or(0);
    let senders: Vec<HostAddr> = (0..8)
        .map(|i| HostAddr::new(0, (i % 2) as u16, (i / 2 % 4) as u16))
        .collect();
    for k in 0..3u64 {
        let at = elephant_des::SimTime::from_nanos(horizon.as_nanos() * (k + 1) / 4);
        flows.extend(incast(
            &senders,
            HostAddr::new(1, 0, 0),
            300_000,
            at,
            max_id + 1 + k * 100,
        ));
    }
    flows.sort_by_key(|f| (f.start, f.id.0));

    println!("capturing bursty ground truth ...");
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
    let records = net.into_capture().expect("capture").into_records();
    let drop_rate =
        records.iter().filter(|r| r.dropped).count() as f64 / records.len().max(1) as f64;
    println!("{} records, drop rate {}", records.len(), fmt_f(drop_rate));

    // A macro config whose thresholds can never fire: latency_low = +inf
    // keeps the state pinned at Minimal, drop_high > 1 never triggers.
    let pinned = MacroConfig {
        latency_low: f64::INFINITY,
        drop_high: 2.0,
        ..MacroConfig::default()
    };

    let variants: [(&str, Option<MacroConfig>); 2] = [
        ("with macro state", None),
        ("macro state ablated", Some(pinned)),
    ];
    let mut run_report = RunReport::new(
        "ablation_macro",
        format!(
            "bursty 2-cluster capture, horizon {horizon}, seed {}",
            args.seed
        ),
    );
    run_report.scalar("capture_drop_rate", drop_rate);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, over) in variants {
        let opts = TrainingOptions {
            macro_override: over,
            ..Default::default()
        };
        let (_, report) = train_cluster_model(&records, &params, &opts);
        let acc = (report.up.eval.drop_accuracy + report.down.eval.drop_accuracy) / 2.0;
        let rmse = (report.up.eval.latency_rmse + report.down.eval.latency_rmse) / 2.0;
        let key = name.replace(' ', "_");
        run_report.scalar(format!("drop_acc_{key}"), acc);
        run_report.scalar(format!("latency_rmse_{key}"), rmse);
        rows.push(vec![name.to_string(), fmt_f(acc), fmt_f(rmse)]);
        csv.push(vec![name.to_string(), format!("{acc}"), format!("{rmse}")]);
        eprintln!("  {name} done");
    }

    print_table(
        "Ablation A3: macro-state feature on/off",
        &["variant", "drop acc", "latency rmse"],
        &rows,
    );
    write_csv(
        args.out.join("ablation_macro.csv"),
        &["variant", "drop_acc", "latency_rmse"],
        &csv,
    )
    .expect("write csv");
    println!("\nwrote {}", args.out.join("ablation_macro.csv").display());
    println!("shape target: ablating the macro feature should not *improve* accuracy;");
    println!("under bursty load it typically costs latency accuracy (§4.1's rationale).");

    run_report.gather();
    emit_report(&run_report, &args);
}
