//! **Figure 5 / §6.2**: speedup of the approximate simulation over
//! full-fidelity simulation as the number of clusters grows.
//!
//! For each size, the full run simulates every cluster (four switches +
//! eight servers each, the paper's shape) under the complete workload; the
//! approximate run keeps cluster 0 and the core layer at packet fidelity,
//! serves every other fabric from the learned oracle, and elides traffic
//! that never touches cluster 0 — the paper's two compounding savings
//! (§6.2: fabric events removed, remote-only traffic omitted).
//!
//! Shape target: speedup grows monotonically with cluster count (paper:
//! ≈1.2× at 2 clusters to ≈4.5× at 16; ours depends on workload and
//! machine but must grow).

use elephant_bench::{emit_report, fmt_f, fmt_secs, print_table, train_default_model, Args};
use elephant_core::{run_ground_truth, run_hybrid, DropPolicy, LearnedOracle, TrainingOptions};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{filter_touching_cluster, generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    let horizon = args.horizon(20, 100);
    let cluster_counts: &[u16] = if args.full {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8]
    };

    println!("Figure 5: training the reusable cluster model ...");
    let (model, _, _) = train_default_model(
        args.horizon(40, 200),
        args.seed,
        &TrainingOptions::default(),
    );

    elephant_obs::set_enabled(true);
    let mut report = RunReport::new(
        "figure5",
        format!(
            "clusters {cluster_counts:?}, horizon {horizon}, seed {}",
            args.seed
        ),
    );
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in cluster_counts {
        let params = ClosParams::paper_cluster(n);
        let flows = generate(
            &params,
            &WorkloadConfig::paper_default(horizon, args.seed.wrapping_add(1)),
        );

        let (_, full_meta) = run_ground_truth(params, cfg, None, &flows, horizon);

        let elided = filter_touching_cluster(&flows, 0);
        let oracle = LearnedOracle::new(
            model.clone(),
            params,
            DropPolicy::Sample,
            args.seed ^ 0xF1F5,
        );
        let (hnet, hybrid_meta) = run_hybrid(params, 0, Box::new(oracle), cfg, &elided, horizon);

        let speedup = full_meta.wall.as_secs_f64() / hybrid_meta.wall.as_secs_f64().max(1e-9);
        let event_ratio = full_meta.events as f64 / hybrid_meta.events.max(1) as f64;
        report.scalar(format!("speedup_n{n}"), speedup);
        report.scalar(format!("event_ratio_n{n}"), event_ratio);
        if n == *cluster_counts.last().expect("nonempty cluster counts") {
            report.set_run(
                hybrid_meta.wall.as_secs_f64(),
                hybrid_meta.events,
                hybrid_meta.sim_seconds,
            );
        }
        rows.push(vec![
            n.to_string(),
            flows.len().to_string(),
            elided.len().to_string(),
            fmt_secs(full_meta.wall),
            fmt_secs(hybrid_meta.wall),
            fmt_f(speedup),
            fmt_f(event_ratio),
            hnet.stats.oracle_deliveries.to_string(),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", full_meta.wall.as_secs_f64()),
            format!("{}", hybrid_meta.wall.as_secs_f64()),
            format!("{speedup}"),
            format!("{}", full_meta.events),
            format!("{}", hybrid_meta.events),
        ]);
        eprintln!("  {n} clusters done (speedup {})", fmt_f(speedup));
    }

    print_table(
        "Figure 5: speedup of approximate vs full simulation",
        &[
            "clusters",
            "flows",
            "elided flows",
            "full wall",
            "approx wall",
            "speedup",
            "event ratio",
            "oracle pkts",
        ],
        &rows,
    );
    write_csv(
        args.out.join("figure5.csv"),
        &[
            "clusters",
            "full_wall_s",
            "approx_wall_s",
            "speedup",
            "full_events",
            "approx_events",
        ],
        &csv,
    )
    .expect("write figure5.csv");
    println!("\nwrote {}", args.out.join("figure5.csv").display());
    println!("shape target: speedup grows with cluster count (paper: 1.2x -> 4.5x over 2 -> 16).");

    report.gather();
    emit_report(&report, &args);
}
