//! **Ablation A2 (§4.2)**: the loss balance α.
//!
//! "A hyper-parameter α balances the relative contribution of error
//! prediction, L = L_drop + α·L_latency. … In practice, we set α to a
//! value 0 < α ≤ 1 because the contribution of drops in determining future
//! behavior is more significant than latency." This harness sweeps α and
//! reports both heads' held-out quality from one shared capture: larger α
//! buys latency accuracy at (potential) cost to drop classification.

use elephant_bench::{emit_report, fmt_f, print_table, Args};
use elephant_core::{run_ground_truth, train_cluster_model, TrainingOptions};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(40, 200);
    let params = ClosParams::paper_cluster(2);

    println!("capturing ground truth ...");
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, args.seed));
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
    let records = net.into_capture().expect("capture").into_records();
    println!("{} records", records.len());

    let alphas: &[f32] = if args.full {
        &[0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
    } else {
        &[0.1, 0.5, 1.0]
    };

    let mut run_report = RunReport::new(
        "ablation_alpha",
        format!(
            "alpha sweep {alphas:?}, horizon {horizon}, seed {}",
            args.seed
        ),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &alpha in alphas {
        let opts = TrainingOptions {
            alpha,
            ..Default::default()
        };
        let (_, report) = train_cluster_model(&records, &params, &opts);
        let acc = (report.up.eval.drop_accuracy + report.down.eval.drop_accuracy) / 2.0;
        let rmse = (report.up.eval.latency_rmse + report.down.eval.latency_rmse) / 2.0;
        run_report.scalar(format!("drop_acc_alpha{alpha}"), acc);
        run_report.scalar(format!("latency_rmse_alpha{alpha}"), rmse);
        rows.push(vec![format!("{alpha}"), fmt_f(acc), fmt_f(rmse)]);
        csv.push(vec![
            format!("{alpha}"),
            format!("{acc}"),
            format!("{rmse}"),
        ]);
        eprintln!("  alpha={alpha} done");
    }

    print_table(
        "Ablation A2: loss balance alpha",
        &["alpha", "drop acc", "latency rmse"],
        &rows,
    );
    write_csv(
        args.out.join("ablation_alpha.csv"),
        &["alpha", "drop_acc", "latency_rmse"],
        &csv,
    )
    .expect("write csv");
    println!("\nwrote {}", args.out.join("ablation_alpha.csv").display());
    println!("shape target: latency RMSE falls as alpha rises; drop accuracy holds or dips.");

    run_report.gather();
    emit_report(&run_report, &args);
}
