//! **§6.2 speedup source #3**: "the approximate version was run in
//! parallel. Because the interdependencies between cluster fabric switches
//! are removed, parallel execution provides better speedups here than it
//! does for full simulation."
//!
//! This harness quantifies the *structural* part of that claim, which is
//! measurable even on one core: how much synchronization a partitioning
//! needs. Full-fidelity PDES must cut through the fabric (lookahead = one
//! link delay, cross-partition messages on every fabric hop); hybrid PDES
//! partitions at the oracle boundary, so only boundary crossings — a
//! small fraction of all events — cross partitions.
//!
//! Reported per cluster count: events, epochs, cross-partition messages,
//! and messages *per event* for both partitionings. On multi-core hosts
//! the hybrid's lower coupling converts directly into parallel speedup.

use elephant_bench::{
    emit_report, fmt_f, fmt_secs, partition_rows, print_table, run_hybrid_pdes, run_pdes,
    train_default_model, Args,
};
use elephant_core::TrainingOptions;
use elephant_net::ClosParams;
use elephant_obs::RunReport;
use elephant_trace::{filter_touching_cluster, generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    let horizon = args.horizon(15, 60);
    let cluster_counts: &[u16] = if args.full {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8]
    };

    println!("training the reusable cluster model ...");
    let (model, _, _) = train_default_model(
        args.horizon(40, 200),
        args.seed,
        &TrainingOptions::default(),
    );

    elephant_obs::set_enabled(true);
    let mut report = RunReport::new(
        "hybrid_pdes",
        format!(
            "clusters {cluster_counts:?}, horizon {horizon}, seed {}",
            args.seed
        ),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in cluster_counts {
        let params = ClosParams::paper_cluster(n);
        let flows = generate(
            &params,
            &WorkloadConfig::paper_default(horizon, args.seed.wrapping_add(1)),
        );

        // Full-fidelity PDES: one partition per cluster (racks split), on
        // as many "machines".
        let partitions = n as usize;
        let full = run_pdes(params, &flows, horizon, partitions, partitions, 64);
        let full_coupling =
            full.report.remote_messages as f64 / full.report.events_executed.max(1) as f64;

        // Hybrid PDES: same machine count, oracle-boundary partitioning,
        // elided workload.
        let elided = filter_touching_cluster(&flows, 0);
        let (hyb, oracle_pkts) = run_hybrid_pdes(
            params, 0, &model, &elided, horizon, partitions, 64, args.seed,
        );
        let hyb_coupling =
            hyb.report.remote_messages as f64 / hyb.report.events_executed.max(1) as f64;

        report.scalar(format!("full_msgs_per_event_n{n}"), full_coupling);
        report.scalar(format!("hybrid_msgs_per_event_n{n}"), hyb_coupling);
        report.scalar(format!("hybrid_oracle_packets_n{n}"), oracle_pkts as f64);
        // The biggest hybrid run is the headline: its partition breakdown
        // shows how little of the wall time the oracle boundary spends
        // synchronizing.
        if n == *cluster_counts.last().expect("nonempty cluster counts") {
            report.set_run(
                hyb.wall.as_secs_f64(),
                hyb.report.events_executed,
                horizon.as_secs_f64(),
            );
            report.partitions = partition_rows(&hyb.report);
        }

        rows.push(vec![
            n.to_string(),
            full.report.events_executed.to_string(),
            fmt_f(full_coupling),
            fmt_secs(full.wall),
            hyb.report.events_executed.to_string(),
            fmt_f(hyb_coupling),
            fmt_secs(hyb.wall),
            oracle_pkts.to_string(),
        ]);
        csv.push(vec![
            n.to_string(),
            full.report.events_executed.to_string(),
            format!("{full_coupling}"),
            format!("{}", full.wall.as_secs_f64()),
            hyb.report.events_executed.to_string(),
            format!("{hyb_coupling}"),
            format!("{}", hyb.wall.as_secs_f64()),
        ]);
        eprintln!("  {n} clusters done");
    }

    print_table(
        "Hybrid vs full-fidelity PDES: cross-partition coupling",
        &[
            "clusters",
            "full events",
            "full msgs/event",
            "full wall",
            "hybrid events",
            "hyb msgs/event",
            "hybrid wall",
            "oracle pkts",
        ],
        &rows,
    );
    write_csv(
        args.out.join("hybrid_pdes.csv"),
        &[
            "clusters",
            "full_events",
            "full_msgs_per_event",
            "full_wall_s",
            "hybrid_events",
            "hybrid_msgs_per_event",
            "hybrid_wall_s",
        ],
        &csv,
    )
    .expect("write csv");
    println!("\nwrote {}", args.out.join("hybrid_pdes.csv").display());
    println!(
        "shape target: the hybrid needs far fewer cross-partition messages\n\
         per event than full-fidelity PDES — the decoupling that makes the\n\
         approximate simulation parallelize well (§6.2). (Wall times on a\n\
         single-core host measure overhead, not parallel speedup.)"
    );

    report.gather();
    emit_report(&report, &args);
}
