//! **Figure 1 / §2.2**: packet-level simulator performance on leaf-spine
//! topologies of various size — single thread versus conservative PDES on
//! 1, 2, and 4 (emulated) machines.
//!
//! The paper's claim this harness reproduces: multi-threading helps small
//! networks, but as the network grows the synchronization forced by tiny
//! lookahead (every ToR talks to every spine, one propagation delay away)
//! makes PDES *slower* than a single thread, and spreading over more
//! machines adds marshalling cost per cross-boundary event.
//!
//! Mapping of the paper's "machines": OMNeT++ partitions the module graph
//! itself, so logical processes scale with the network — we partition one
//! LP per four racks (minimum two), dealt round-robin over the emulated
//! machines; events between partitions on different machines are
//! serialized through a byte buffer with a 64-byte MPI-style envelope.
//! See DESIGN.md's substitution table. NOTE: in a single-core container
//! PDES cannot show real parallel wins at any size; the reproducible
//! claim is the *degradation*: sync + marshalling overhead grows with
//! network size and machine count.
//!
//! Output: sim-seconds per wall-second per (size, engine), printed and
//! written to `figure1.csv`.

use elephant_bench::{fmt_f, print_table, run_pdes, Args};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_trace::{LoadProfile, generate, write_csv, Locality, SizeDist, WorkloadConfig};

fn main() {
    let args = Args::parse();
    let horizon = args.horizon(20, 100);
    let sizes: &[u16] = if args.full { &[4, 8, 16, 32, 64] } else { &[4, 8, 16] };
    let machines = [1usize, 2, 4];
    const ENVELOPE: usize = 64;

    println!("Figure 1: leaf-spine performance, horizon {horizon}, seed {}", args.seed);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in sizes {
        let params = ClosParams::leaf_spine(n);
        let wl = WorkloadConfig {
            load: 0.3,
            sizes: SizeDist::web_search(),
            locality: Locality::leaf_spine(),
            horizon,
            seed: args.seed,
            profile: LoadProfile::Constant,
        };
        let flows = generate(&params, &wl);

        // Single thread.
        let cfg = NetConfig { rtt_scope: RttScope::None, ..Default::default() };
        let (_, meta) =
            elephant_core::run_ground_truth(params, cfg, None, &flows, horizon);
        let single = meta.sim_seconds_per_second();

        // PDES at 1, 2, 4 machines.
        let mut pdes_rates = Vec::new();
        for &m in &machines {
            // LPs scale with the module graph, as OMNeT++'s partitioning
            // does; more machines spread the same LPs wider.
            let partitions = ((n as usize / 4).max(2) * m).min(n as usize);
            let out = run_pdes(params, &flows, horizon, partitions, m, ENVELOPE);
            pdes_rates.push((m, out.sim_seconds_per_second(horizon), out.report));
        }

        let row = vec![
            n.to_string(),
            format!("{}", meta.events),
            fmt_f(single),
            fmt_f(pdes_rates[0].1),
            fmt_f(pdes_rates[1].1),
            fmt_f(pdes_rates[2].1),
        ];
        eprintln!(
            "  n={n}: events {} | remote msgs (4m) {} | marshalled {}",
            meta.events, pdes_rates[2].2.remote_messages, pdes_rates[2].2.marshalled_messages
        );
        csv.push(vec![
            n.to_string(),
            format!("{single}"),
            format!("{}", pdes_rates[0].1),
            format!("{}", pdes_rates[1].1),
            format!("{}", pdes_rates[2].1),
        ]);
        rows.push(row);
    }

    print_table(
        "Figure 1: sim-seconds per wall-second (higher is better)",
        &["tors/spines", "events", "single thread", "1 machine", "2 machines", "4 machines"],
        &rows,
    );
    write_csv(
        args.out.join("figure1.csv"),
        &["size", "single_thread", "machines_1", "machines_2", "machines_4"],
        &csv,
    )
    .expect("write figure1.csv");
    println!("\nwrote {}", args.out.join("figure1.csv").display());
    println!(
        "shape target: PDES competitive at small sizes, falling behind the\n\
         single thread as size grows; more machines = more marshalling cost."
    );
}
