//! **Figure 1 / §2.2**: packet-level simulator performance on leaf-spine
//! topologies of various size — single thread versus conservative PDES on
//! 1, 2, and 4 (emulated) machines.
//!
//! The paper's claim this harness reproduces: multi-threading helps small
//! networks, but as the network grows the synchronization forced by tiny
//! lookahead (every ToR talks to every spine, one propagation delay away)
//! makes PDES *slower* than a single thread, and spreading over more
//! machines adds marshalling cost per cross-boundary event.
//!
//! Mapping of the paper's "machines": OMNeT++ partitions the module graph
//! itself, so logical processes scale with the network — we partition one
//! LP per four racks (minimum two), dealt round-robin over the emulated
//! machines; events between partitions on different machines are
//! serialized through a byte buffer with a 64-byte MPI-style envelope.
//! See DESIGN.md's substitution table. NOTE: in a single-core container
//! PDES cannot show real parallel wins at any size; the reproducible
//! claim is the *degradation*: sync + marshalling overhead grows with
//! network size and machine count.
//!
//! Each size runs the single-threaded engine twice — observability off,
//! then on — so the report carries the measured instrumentation overhead
//! fraction alongside the performance figures.
//!
//! Output: sim-seconds per wall-second per (size, engine), printed and
//! written to `figure1.csv`, plus the full run report as
//! `BENCH_figure1.json` (events/sec, per-partition barrier-wait share,
//! profiler tree).

use elephant_bench::{emit_report, fmt_f, partition_rows, print_table, run_pdes, Args};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{generate, write_csv, LoadProfile, Locality, SizeDist, WorkloadConfig};

fn main() {
    let args = Args::parse();
    let horizon = args.horizon(20, 100);
    let sizes: &[u16] = if args.full {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 8, 16]
    };
    let machines = [1usize, 2, 4];
    const ENVELOPE: usize = 64;

    println!(
        "Figure 1: leaf-spine performance, horizon {horizon}, seed {}",
        args.seed
    );
    let mut report = RunReport::new(
        "figure1",
        format!(
            "leaf-spine sweep sizes {sizes:?}, horizon {horizon}, seed {}, envelope {ENVELOPE}B",
            args.seed
        ),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut base_wall_total = 0.0f64;
    let mut inst_wall_total = 0.0f64;
    for &n in sizes {
        let params = ClosParams::leaf_spine(n);
        let wl = WorkloadConfig {
            load: 0.3,
            sizes: SizeDist::web_search(),
            locality: Locality::leaf_spine(),
            horizon,
            seed: args.seed,
            profile: LoadProfile::Constant,
        };
        let flows = generate(&params, &wl);
        let cfg = NetConfig {
            rtt_scope: RttScope::None,
            ..Default::default()
        };

        // Single thread, uninstrumented: the baseline the paper measures.
        // Best-of-three wall times on both sides keep scheduler noise out
        // of the overhead figure (sub-second runs jitter by several
        // percent on a shared core).
        let best_run = |obs_on: bool| {
            elephant_obs::set_enabled(obs_on);
            let mut best: Option<elephant_core::RunMeta> = None;
            for _ in 0..3 {
                let (_, m) = elephant_core::run_ground_truth(params, cfg, None, &flows, horizon);
                if best.as_ref().map(|b| m.wall < b.wall).unwrap_or(true) {
                    best = Some(m);
                }
            }
            best.expect("three runs produce a best")
        };
        let base_meta = best_run(false);
        let single = base_meta.sim_seconds_per_second();

        // Single thread again with collection on: the difference is the
        // observability overhead (acceptance target: under 5%).
        let meta = best_run(true);
        let overhead = (meta.wall.as_secs_f64() - base_meta.wall.as_secs_f64())
            / base_meta.wall.as_secs_f64().max(1e-12);
        base_wall_total += base_meta.wall.as_secs_f64();
        inst_wall_total += meta.wall.as_secs_f64();
        report.scalar(format!("overhead_fraction_n{n}"), overhead);
        report.scalar(format!("single_sim_s_per_s_n{n}"), single);

        // PDES at 1, 2, 4 machines (collection stays on so the partition
        // breakdown lands in the report).
        let mut pdes_rates = Vec::new();
        for &m in &machines {
            // LPs scale with the module graph, as OMNeT++'s partitioning
            // does; more machines spread the same LPs wider.
            let partitions = ((n as usize / 4).max(2) * m).min(n as usize);
            let out = run_pdes(params, &flows, horizon, partitions, m, ENVELOPE);
            let rate = out.sim_seconds_per_second(horizon);
            report.scalar(format!("pdes_sim_s_per_s_n{n}_m{m}"), rate);
            pdes_rates.push((m, rate, out));
        }
        // The widest machine spread of the largest size is the partition
        // breakdown worth keeping (the paper's worst case).
        if n == *sizes.last().expect("nonempty sizes") {
            report.set_run(meta.wall.as_secs_f64(), meta.events, meta.sim_seconds);
            report.partitions = partition_rows(&pdes_rates[2].2.report);
        }

        rows.push(vec![
            n.to_string(),
            format!("{}", meta.events),
            fmt_f(single),
            fmt_f(pdes_rates[0].1),
            fmt_f(pdes_rates[1].1),
            fmt_f(pdes_rates[2].1),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{single}"),
            format!("{}", pdes_rates[0].1),
            format!("{}", pdes_rates[1].1),
            format!("{}", pdes_rates[2].1),
        ]);
    }

    print_table(
        "Figure 1: sim-seconds per wall-second (higher is better)",
        &[
            "tors/spines",
            "events",
            "single thread",
            "1 machine",
            "2 machines",
            "4 machines",
        ],
        &rows,
    );
    write_csv(
        args.out.join("figure1.csv"),
        &[
            "size",
            "single_thread",
            "machines_1",
            "machines_2",
            "machines_4",
        ],
        &csv,
    )
    .expect("write figure1.csv");
    println!("\nwrote {}", args.out.join("figure1.csv").display());
    println!(
        "shape target: PDES competitive at small sizes, falling behind the\n\
         single thread as size grows; more machines = more marshalling cost."
    );

    // Aggregate overhead across all sizes — the headline acceptance number
    // (< 0.05); per-size fractions above show the spread.
    report.scalar(
        "overhead_fraction",
        (inst_wall_total - base_wall_total) / base_wall_total.max(1e-12),
    );

    report.gather();
    emit_report(&report, &args);
}
