//! **Ablation A1 (§7 "Improving accuracy")**: LSTM capacity sweep.
//!
//! "Our prototype currently uses a two-layer LSTM with 128 hidden nodes.
//! Accuracy can be improved by stacking more layers \[and\] using more nodes
//! per layer … adding more complexity may increase the cost of training
//! and prediction." This harness quantifies that trade-off: held-out
//! accuracy versus training wall time and per-packet inference latency,
//! across hidden widths and depths, from one shared capture.

use std::time::Instant;

use elephant_bench::{emit_report, fmt_f, print_table, Args};
use elephant_core::{run_ground_truth, train_cluster_model, TrainingOptions, FEATURE_DIM};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(40, 200);
    let params = ClosParams::paper_cluster(2);

    println!("capturing ground truth ...");
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, args.seed));
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
    let records = net.into_capture().expect("capture").into_records();
    println!("{} records", records.len());

    let shapes: &[(usize, usize)] = if args.full {
        &[
            (8, 1),
            (16, 1),
            (32, 1),
            (16, 2),
            (32, 2),
            (64, 2),
            (128, 2),
        ]
    } else {
        &[(8, 1), (16, 1), (16, 2), (32, 2)]
    };

    let mut run_report = RunReport::new(
        "ablation_model_size",
        format!(
            "shape sweep {shapes:?}, horizon {horizon}, seed {}",
            args.seed
        ),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &(hidden, layers) in shapes {
        let opts = TrainingOptions {
            hidden,
            layers,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (model, report) = train_cluster_model(&records, &params, &opts);
        let train_wall = t0.elapsed();

        // Inference cost: steady-state per-packet prediction latency.
        let mut state = model.up.init_state();
        let x = vec![0.3f32; FEATURE_DIM];
        let iters = 5_000;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(model.up.predict(&x, &mut state));
        }
        let per_pkt_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;

        let acc = (report.up.eval.drop_accuracy + report.down.eval.drop_accuracy) / 2.0;
        let rmse = (report.up.eval.latency_rmse + report.down.eval.latency_rmse) / 2.0;
        run_report.scalar(format!("drop_acc_{layers}x{hidden}"), acc);
        run_report.scalar(format!("latency_rmse_{layers}x{hidden}"), rmse);
        run_report.scalar(format!("infer_us_{layers}x{hidden}"), per_pkt_us);
        rows.push(vec![
            format!("{layers}x{hidden}"),
            fmt_f(acc),
            fmt_f(rmse),
            format!("{:.2}s", train_wall.as_secs_f64()),
            format!("{per_pkt_us:.2}us"),
        ]);
        csv.push(vec![
            hidden.to_string(),
            layers.to_string(),
            format!("{acc}"),
            format!("{rmse}"),
            format!("{}", train_wall.as_secs_f64()),
            format!("{per_pkt_us}"),
        ]);
        eprintln!("  {layers}x{hidden} done");
    }

    print_table(
        "Ablation A1: model capacity vs accuracy vs cost",
        &[
            "shape",
            "drop acc",
            "latency rmse",
            "train wall",
            "inference/pkt",
        ],
        &rows,
    );
    write_csv(
        args.out.join("ablation_model_size.csv"),
        &[
            "hidden",
            "layers",
            "drop_acc",
            "latency_rmse",
            "train_wall_s",
            "infer_us",
        ],
        &csv,
    )
    .expect("write csv");
    println!(
        "\nwrote {}",
        args.out.join("ablation_model_size.csv").display()
    );
    println!("shape target: accuracy saturates while train+inference cost keeps rising (§7).");

    run_report.gather();
    emit_report(&run_report, &args);
}
