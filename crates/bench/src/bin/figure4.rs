//! **Figure 4 / §6.1**: CDFs of packet RTTs observed by hosts in the
//! fully simulated cluster — ground truth versus the hybrid simulation —
//! plus the quantitative comparison the paper eyeballs (KS distance and a
//! per-quantile error table).
//!
//! Protocol: train on a two-cluster capture with one seed, then evaluate
//! on a *different* seed: ground truth runs both clusters at full
//! fidelity; the approximate run replaces cluster 1's fabric with the
//! learned oracle and elides traffic that never touches cluster 0. Both
//! runs collect RTT samples only in cluster 0.
//!
//! Shape target (paper): the approximate CDF is steeper (the model
//! under-represents congestion variance) but turns upward at a similar
//! latency to the ground truth.

use elephant_bench::{emit_report, fmt_f, print_table, train_default_model, Args};
use elephant_core::{
    compare_cdfs, macro_agreement, macro_confusion, run_ground_truth, run_hybrid, DropPolicy,
    LatencyCodec, LearnedOracle, TrainingOptions,
};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{filter_touching_cluster, generate, write_xy, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let train_horizon = args.horizon(40, 400);
    let eval_horizon = args.horizon(40, 400);
    let params = ClosParams::paper_cluster(2);

    // Step 1-2: ground truth + training (seed A).
    let mut opts = TrainingOptions::default();
    if args.full {
        opts.epochs = 16;
    }
    println!(
        "training on 2-cluster capture (horizon {train_horizon}, seed {}) ...",
        args.seed
    );
    let (model, report, records) = train_default_model(train_horizon, args.seed, &opts);
    println!(
        "  {} records | up: acc {:.3} rmse {:.3} | down: acc {:.3} rmse {:.3}",
        records.len(),
        report.up.eval.drop_accuracy,
        report.up.eval.latency_rmse,
        report.down.eval.drop_accuracy,
        report.down.eval.latency_rmse,
    );

    // Macro-state drift diagnostic: how often does the deployed
    // (prediction-fed) classifier agree with the truth-fed one?
    let confusion = macro_confusion(
        &records,
        &model.up,
        &model.down,
        model.macro_cfg,
        LatencyCodec::default(),
        &params,
    )
    .unwrap_or_else(|e| panic!("macro confusion diagnostic failed: {e}"));
    println!(
        "  macro-state agreement (auto-regressive vs truth-fed): {:.1}%",
        macro_agreement(&confusion) * 100.0
    );

    // Step 3: evaluate with an unseen seed.
    let eval_seed = args.seed.wrapping_add(1);
    let flows = generate(
        &params,
        &WorkloadConfig::paper_default(eval_horizon, eval_seed),
    );
    let cfg = NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    };

    println!("ground-truth run ({} flows) ...", flows.len());
    let (truth_net, truth_meta) = run_ground_truth(params, cfg, None, &flows, eval_horizon);

    let elided = filter_touching_cluster(&flows, 0);
    println!("hybrid run ({} flows after elision) ...", elided.len());
    let oracle = LearnedOracle::new(model, params, DropPolicy::Sample, args.seed ^ 0xFEED);
    let (approx_net, approx_meta) =
        run_hybrid(params, 0, Box::new(oracle), cfg, &elided, eval_horizon);

    // Comparison.
    let truth_cdf = truth_net.stats.rtt_cdf();
    let approx_cdf = approx_net.stats.rtt_cdf();
    let cmp = compare_cdfs(&truth_cdf, &approx_cdf);

    let rows: Vec<Vec<String>> = cmp
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("p{:.1}", r.q * 100.0),
                format!("{:.1}us", r.truth * 1e6),
                format!("{:.1}us", r.approx * 1e6),
                format!("{:+.1}%", r.rel_error() * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 4: RTT distribution, ground truth vs approximation",
        &["quantile", "ground truth", "approx", "rel. error"],
        &rows,
    );
    println!(
        "\nKS distance: {}   (samples: {} truth, {} approx)",
        fmt_f(cmp.ks),
        cmp.truth_samples,
        cmp.approx_samples
    );
    println!(
        "events: {} truth vs {} approx | drops: {} truth vs {} approx (oracle {})",
        truth_meta.events,
        approx_meta.events,
        truth_net.stats.drops.total(),
        approx_net.stats.drops.total(),
        approx_net.stats.drops.oracle,
    );

    write_xy(
        args.out.join("figure4_truth.csv"),
        "latency_s",
        "cdf",
        &truth_net.stats.rtt_hist.cdf_points(),
    )
    .expect("write truth CDF");
    write_xy(
        args.out.join("figure4_approx.csv"),
        "latency_s",
        "cdf",
        &approx_net.stats.rtt_hist.cdf_points(),
    )
    .expect("write approx CDF");
    println!(
        "wrote {} and {}",
        args.out.join("figure4_truth.csv").display(),
        args.out.join("figure4_approx.csv").display()
    );
    println!(
        "shape target: approx CDF steeper than truth, knee at a similar\n\
         latency; congestion tail underestimated (paper §6.1)."
    );

    let mut run_report = RunReport::new(
        "figure4",
        format!(
            "2 clusters, eval horizon {eval_horizon}, train seed {}",
            args.seed
        ),
    );
    run_report.set_run(
        approx_meta.wall.as_secs_f64(),
        approx_meta.events,
        approx_meta.sim_seconds,
    );
    run_report.scalar("ks_distance", cmp.ks);
    run_report.scalar("macro_agreement", macro_agreement(&confusion));
    run_report.scalar("truth_events", truth_meta.events as f64);
    run_report.scalar("truth_drops", truth_net.stats.drops.total() as f64);
    run_report.scalar("approx_drops", approx_net.stats.drops.total() as f64);
    run_report.scalar("oracle_drops", approx_net.stats.drops.oracle as f64);
    run_report.gather();
    emit_report(&run_report, &args);
}
