//! **§6.2/§7 scaling claim**: "these results indicate that our method has
//! the potential to scale to hundreds of clusters and thousands of
//! machines while still keeping the runtime to a useful result low" — and
//! §7's converse: full simulation exhausts memory holding "state for
//! millions of TCP connections".
//!
//! This harness extends Figure 5 to larger networks than the paper ran
//! (up to 64 clusters = 512 hosts by default, 128 with `--full`), and
//! reports the two quantities that decide scalability: wall time and live
//! state (flows and TCP connections instantiated). The hybrid's costs stay
//! roughly flat as the network grows — only the observed cluster's share
//! of traffic is ever materialized — while full simulation grows linearly
//! in both.

use elephant_bench::{emit_report, fmt_f, fmt_secs, print_table, train_default_model, Args};
use elephant_core::{run_ground_truth, run_hybrid, DropPolicy, LearnedOracle, TrainingOptions};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{filter_touching_cluster, generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    let horizon = args.horizon(15, 40);
    let cluster_counts: &[u16] = if args.full {
        &[8, 16, 32, 64, 128]
    } else {
        &[8, 16, 32, 64]
    };

    println!("training the reusable cluster model ...");
    let (model, _, _) = train_default_model(
        args.horizon(30, 100),
        args.seed,
        &TrainingOptions::default(),
    );

    elephant_obs::set_enabled(true);
    let mut report = RunReport::new(
        "scale",
        format!(
            "clusters {cluster_counts:?}, horizon {horizon}, seed {}",
            args.seed
        ),
    );
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in cluster_counts {
        let params = ClosParams::paper_cluster(n);
        let flows = generate(
            &params,
            &WorkloadConfig::paper_default(horizon, args.seed.wrapping_add(2)),
        );
        let elided = filter_touching_cluster(&flows, 0);

        let (_, full_meta) = run_ground_truth(params, cfg, None, &flows, horizon);

        let oracle = LearnedOracle::new(
            model.clone(),
            params,
            DropPolicy::Sample,
            args.seed ^ 0x5CA1E,
        );
        let (hnet, hybrid_meta) = run_hybrid(params, 0, Box::new(oracle), cfg, &elided, horizon);

        let speedup = full_meta.wall.as_secs_f64() / hybrid_meta.wall.as_secs_f64().max(1e-9);
        report.scalar(format!("speedup_n{n}"), speedup);
        report.scalar(
            format!("hybrid_wall_s_n{n}"),
            hybrid_meta.wall.as_secs_f64(),
        );
        if n == *cluster_counts.last().expect("nonempty cluster counts") {
            report.set_run(
                hybrid_meta.wall.as_secs_f64(),
                hybrid_meta.events,
                hybrid_meta.sim_seconds,
            );
        }
        rows.push(vec![
            n.to_string(),
            params.total_hosts().to_string(),
            flows.len().to_string(),
            elided.len().to_string(),
            fmt_secs(full_meta.wall),
            fmt_secs(hybrid_meta.wall),
            fmt_f(speedup),
            hnet.stats.oracle_deliveries.to_string(),
        ]);
        csv.push(vec![
            n.to_string(),
            flows.len().to_string(),
            elided.len().to_string(),
            format!("{}", full_meta.wall.as_secs_f64()),
            format!("{}", hybrid_meta.wall.as_secs_f64()),
            format!("{speedup}"),
        ]);
        eprintln!("  {n} clusters done ({})", fmt_f(speedup));
    }

    print_table(
        "Scaling beyond the paper: full vs hybrid cost as the DC grows",
        &[
            "clusters",
            "hosts",
            "flows (full)",
            "flows (hybrid)",
            "full wall",
            "hybrid wall",
            "speedup",
            "oracle pkts",
        ],
        &rows,
    );
    write_csv(
        args.out.join("scale.csv"),
        &[
            "clusters",
            "full_flows",
            "hybrid_flows",
            "full_wall_s",
            "hybrid_wall_s",
            "speedup",
        ],
        &csv,
    )
    .expect("write csv");
    println!("\nwrote {}", args.out.join("scale.csv").display());
    println!(
        "shape target: full-simulation cost and state grow ~linearly with\n\
         cluster count while the hybrid's stay nearly flat — the §6.2/§7\n\
         scalability argument. TCP connection state follows the flow\n\
         columns: the hybrid never materializes remote-only connections."
    );

    // FEL memory substrate: the kernel records a high-water mark of the
    // event list's resident bytes into a global gauge. Surface it (and a
    // per-host figure at the largest network) so scaling runs track queue
    // memory alongside wall time.
    let fel_peak = elephant_obs::gauge("des/kernel/fel_bytes_peak", "").get();
    let top_hosts =
        ClosParams::paper_cluster(*cluster_counts.last().expect("nonempty")).total_hosts() as f64;
    report.scalar("fel_bytes_peak", fel_peak as f64);
    report.scalar("fel_bytes_per_host", fel_peak as f64 / top_hosts.max(1.0));
    println!(
        "FEL high-water mark across the sweep: {fel_peak} bytes \
         ({:.1} B/host at {} hosts)",
        fel_peak as f64 / top_hosts.max(1.0),
        top_hosts as u64,
    );

    report.gather();
    emit_report(&report, &args);
}
