//! **Ablation A4 (§7 "Improving accuracy" / future work)**: recurrent
//! architecture variants for the micro model.
//!
//! "Accuracy can be improved by … testing new LSTM variants. Each of these
//! come with tradeoffs that must be carefully balanced." This harness
//! trains the standard LSTM trunk and a GRU trunk of the same width from
//! one shared capture and compares held-out accuracy, parameter count,
//! training wall time, and per-packet inference latency.

use std::time::Instant;

use elephant_bench::{emit_report, fmt_f, print_table, Args};
use elephant_core::{run_ground_truth, train_cluster_model, TrainingOptions, FEATURE_DIM};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_nn::RnnKind;
use elephant_obs::RunReport;
use elephant_trace::{generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(40, 200);
    let params = ClosParams::paper_cluster(2);

    println!("capturing ground truth ...");
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, args.seed));
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
    let records = net.into_capture().expect("capture").into_records();
    println!("{} records", records.len());

    let variants: &[(&str, RnnKind)] = &[("LSTM", RnnKind::Lstm), ("GRU", RnnKind::Gru)];
    let mut run_report = RunReport::new(
        "ablation_rnn",
        format!("LSTM vs GRU, horizon {horizon}, seed {}", args.seed),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &(name, kind) in variants {
        let opts = TrainingOptions {
            rnn: kind,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (model, report) = train_cluster_model(&records, &params, &opts);
        let train_wall = t0.elapsed();

        let mut state = model.up.init_state();
        let x = vec![0.3f32; FEATURE_DIM];
        let iters = 20_000;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(model.up.predict(&x, &mut state));
        }
        let per_pkt_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let mut m = model.up.clone();
        let param_count: usize = m.param_slices().iter().map(|s| s.len()).sum();

        let acc = (report.up.eval.drop_accuracy + report.down.eval.drop_accuracy) / 2.0;
        let rmse = (report.up.eval.latency_rmse + report.down.eval.latency_rmse) / 2.0;
        run_report.scalar(format!("drop_acc_{name}"), acc);
        run_report.scalar(format!("latency_rmse_{name}"), rmse);
        run_report.scalar(format!("params_{name}"), param_count as f64);
        run_report.scalar(format!("infer_us_{name}"), per_pkt_us);
        rows.push(vec![
            name.to_string(),
            param_count.to_string(),
            fmt_f(acc),
            fmt_f(rmse),
            format!("{:.2}s", train_wall.as_secs_f64()),
            format!("{per_pkt_us:.2}us"),
        ]);
        csv.push(vec![
            name.to_string(),
            param_count.to_string(),
            format!("{acc}"),
            format!("{rmse}"),
            format!("{}", train_wall.as_secs_f64()),
            format!("{per_pkt_us}"),
        ]);
        eprintln!("  {name} done");
    }

    print_table(
        "Ablation A4: recurrent-architecture variants (same width/depth)",
        &[
            "trunk",
            "params",
            "drop acc",
            "latency rmse",
            "train wall",
            "inference/pkt",
        ],
        &rows,
    );
    write_csv(
        args.out.join("ablation_rnn.csv"),
        &[
            "trunk",
            "params",
            "drop_acc",
            "latency_rmse",
            "train_wall_s",
            "infer_us",
        ],
        &csv,
    )
    .expect("write csv");
    println!("\nwrote {}", args.out.join("ablation_rnn.csv").display());
    println!("shape target: GRU ~3/4 the parameters and cost, comparable accuracy (§7).");

    run_report.gather();
    emit_report(&run_report, &args);
}
