//! **Ablation A5 (§4.2)**: how the drop *probability* becomes a drop
//! *decision*.
//!
//! "The model then outputs … a binary decision whether to drop the
//! packet." A probability head admits two binarizations: Bernoulli
//! sampling (calibrated aggregate drop rates, stochastic per packet) or
//! thresholding (deterministic, but all-or-nothing per feature regime).
//! The deployed oracle defaults to sampling; this harness quantifies why,
//! by deploying the same trained model under both policies and comparing
//! the hybrid's drop counts and RTT distribution against ground truth.

use elephant_bench::{emit_report, fmt_f, print_table, train_default_model, Args};
use elephant_core::{
    compare_cdfs, run_ground_truth, run_hybrid, DropPolicy, LearnedOracle, TrainingOptions,
};
use elephant_net::{ClosParams, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{filter_touching_cluster, generate, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(40, 120);
    let params = ClosParams::paper_cluster(2);

    println!("training ...");
    let (model, _, _) = train_default_model(horizon, args.seed, &TrainingOptions::default());

    // Unseen-seed evaluation, like Figure 4.
    let eval_seed = args.seed.wrapping_add(1);
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, eval_seed));
    let cfg = NetConfig {
        rtt_scope: RttScope::Cluster(0),
        ..Default::default()
    };
    println!("ground truth ...");
    let (truth, _) = run_ground_truth(params, cfg, None, &flows, horizon);
    let truth_cdf = truth.stats.rtt_cdf();
    let elided = filter_touching_cluster(&flows, 0);

    let policies: &[(&str, DropPolicy)] = &[
        ("sample", DropPolicy::Sample),
        ("threshold 0.5", DropPolicy::Threshold(0.5)),
        ("threshold 0.1", DropPolicy::Threshold(0.1)),
    ];
    let mut report = RunReport::new(
        "ablation_drop_policy",
        format!("2 clusters, horizon {horizon}, seed {}", args.seed),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, policy) in policies {
        let oracle = LearnedOracle::new(model.clone(), params, *policy, args.seed ^ 0xD20);
        let (net, _) = run_hybrid(params, 0, Box::new(oracle), cfg, &elided, horizon);
        let cmp = compare_cdfs(&truth_cdf, &net.stats.rtt_cdf());
        let key = name.replace([' ', '.'], "_");
        report.scalar(format!("oracle_drops_{key}"), net.stats.drops.oracle as f64);
        report.scalar(format!("ks_{key}"), cmp.ks);
        rows.push(vec![
            name.to_string(),
            net.stats.drops.oracle.to_string(),
            fmt_f(cmp.ks),
            format!("{:+.1}%", cmp.rows[5].rel_error() * 100.0), // p99
            net.stats.flows_completed.to_string(),
        ]);
        csv.push(vec![
            name.to_string(),
            net.stats.drops.oracle.to_string(),
            format!("{}", cmp.ks),
            format!("{}", cmp.rows[5].rel_error()),
        ]);
        eprintln!("  {name} done");
    }
    println!(
        "\nground truth: {} drops total in the remote fabric's role",
        truth.stats.drops.total()
    );
    print_table(
        "Ablation A5: drop-decision policy",
        &[
            "policy",
            "oracle drops",
            "KS vs truth",
            "p99 error",
            "flows done",
        ],
        &rows,
    );
    write_csv(
        args.out.join("ablation_drop_policy.csv"),
        &["policy", "oracle_drops", "ks", "p99_rel_error"],
        &csv,
    )
    .expect("write csv");
    println!(
        "\nwrote {}",
        args.out.join("ablation_drop_policy.csv").display()
    );
    println!(
        "reading: per-packet drop probabilities are small (aggregate loss is\n\
         ~1%), so any usable threshold fires never — thresholding silently\n\
         eliminates loss from the simulation. Sampling is the only policy\n\
         that reproduces a loss process at all; the RTT distribution pays a\n\
         little (spurious drops trigger RTOs the ground truth did not have),\n\
         which is the paper's \"imperfect model predictions\" divergence\n\
         (§6.1). Drop realism is why Sample is the deployed default."
    );

    report.scalar("truth_drops", truth.stats.drops.total() as f64);
    report.gather();
    emit_report(&report, &args);
}
