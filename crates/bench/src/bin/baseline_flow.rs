//! **Baseline B1 (§2/§8)**: flow-level simulation versus packet-level
//! simulation — what the cheaper abstraction gains in speed and loses in
//! fidelity.
//!
//! Two scenarios on the same two-cluster topology:
//!
//! 1. **steady** — the standard web-search workload: the fluid model
//!    should track packet-level mean FCTs reasonably while running far
//!    faster;
//! 2. **incast** — a synchronized burst into one host: the fluid model is
//!    structurally blind to the queue overflow and retransmission storms
//!    that dominate the packet-level result ("miss out on many important
//!    network effects, particularly in the presence of bursty traffic").

use std::time::Instant;

use elephant_bench::{emit_report, fmt_f, fmt_secs, print_table, Args};
use elephant_core::run_ground_truth;
use elephant_net::{ClosParams, HostAddr, NetConfig, RttScope, Topology};
use elephant_obs::RunReport;
use elephant_trace::{generate, incast, write_csv, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(20, 100);
    let params = ClosParams::paper_cluster(2);
    let topo = Topology::clos(params);

    let mut report = RunReport::new(
        "baseline_flow",
        format!("2 clusters, horizon {horizon}, seed {}", args.seed),
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();

    // Scenario 1: steady web-search load.
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, args.seed));
    run_scenario(
        "steady",
        &params,
        &topo,
        &flows,
        horizon,
        &mut report,
        &mut rows,
        &mut csv,
    );

    // Scenario 2: incast burst (plus nothing else).
    let senders: Vec<HostAddr> = (0..8)
        .map(|i| HostAddr::new(1, (i % 2) as u16, (i / 2 % 4) as u16))
        .collect();
    let burst = incast(
        &senders,
        HostAddr::new(0, 0, 0),
        500_000,
        elephant_des::SimTime::ZERO,
        1,
    );
    run_scenario(
        "incast",
        &params,
        &topo,
        &burst,
        horizon,
        &mut report,
        &mut rows,
        &mut csv,
    );

    print_table(
        "Baseline B1: packet-level vs flow-level simulation",
        &[
            "scenario",
            "engine",
            "wall",
            "completed",
            "mean FCT",
            "drops",
            "retrans-visible",
        ],
        &rows,
    );
    write_csv(
        args.out.join("baseline_flow.csv"),
        &[
            "scenario",
            "engine",
            "wall_s",
            "completed",
            "mean_fct_s",
            "drops",
        ],
        &csv,
    )
    .expect("write csv");
    println!("\nwrote {}", args.out.join("baseline_flow.csv").display());
    println!(
        "shape target: fluid is much faster and FCT-plausible under steady\n\
         load, but reports zero drops even where the packet simulator sees\n\
         an incast loss storm — the fidelity gap motivating the paper."
    );

    report.gather();
    emit_report(&report, &args);
}

#[allow(clippy::too_many_arguments)] // an experiment spec, not an API surface
fn run_scenario(
    name: &str,
    params: &ClosParams,
    topo: &Topology,
    flows: &[elephant_net::FlowSpec],
    horizon: elephant_des::SimTime,
    report: &mut RunReport,
    rows: &mut Vec<Vec<String>>,
    csv: &mut Vec<Vec<String>>,
) {
    // Packet level.
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, meta) = run_ground_truth(*params, cfg, None, flows, horizon);
    let pkt_fct = net.stats.mean_fct().map(|d| d.as_secs_f64()).unwrap_or(0.0);
    rows.push(vec![
        name.into(),
        "packet".into(),
        fmt_secs(meta.wall),
        net.stats.flows_completed.to_string(),
        format!("{:.1}us", pkt_fct * 1e6),
        net.stats.drops.total().to_string(),
        "yes".into(),
    ]);
    csv.push(vec![
        name.into(),
        "packet".into(),
        format!("{}", meta.wall.as_secs_f64()),
        net.stats.flows_completed.to_string(),
        format!("{pkt_fct}"),
        net.stats.drops.total().to_string(),
    ]);

    report.scalar(format!("{name}_packet_wall_s"), meta.wall.as_secs_f64());
    report.scalar(format!("{name}_packet_mean_fct_s"), pkt_fct);
    report.scalar(
        format!("{name}_packet_drops"),
        net.stats.drops.total() as f64,
    );

    // Flow level.
    let t0 = Instant::now();
    let fluid = elephant_flow::simulate(topo, flows, horizon);
    let wall = t0.elapsed();
    report.scalar(format!("{name}_fluid_wall_s"), wall.as_secs_f64());
    report.scalar(format!("{name}_fluid_mean_fct_s"), fluid.mean_fct_secs());
    rows.push(vec![
        name.into(),
        "fluid".into(),
        fmt_secs(wall),
        fluid.fct.len().to_string(),
        format!("{:.1}us", fluid.mean_fct_secs() * 1e6),
        "0 (cannot model)".into(),
        "no".into(),
    ]);
    csv.push(vec![
        name.into(),
        "fluid".into(),
        format!("{}", wall.as_secs_f64()),
        fluid.fct.len().to_string(),
        format!("{}", fluid.mean_fct_secs()),
        "0".into(),
    ]);
    eprintln!(
        "  {name}: packet {} vs fluid {} wall ({}x)",
        fmt_secs(meta.wall),
        fmt_secs(wall),
        fmt_f(meta.wall.as_secs_f64() / wall.as_secs_f64().max(1e-9))
    );
}
