//! **§4/§4.1 claim**: boundary traffic exhibits multi-scale structure and
//! the auto-regressive macro classifier identifies four congestion
//! regimes in it.
//!
//! The harness runs a two-cluster ground truth whose workload includes a
//! deliberate mid-run incast burst (forcing the High/Decreasing regimes),
//! replays the captured boundary records through the calibrated macro
//! model, and reports regime occupancy, the transition matrix, and a
//! downsampled regime timeline.

use elephant_bench::{emit_report, fmt_f, print_table, Args};
use elephant_core::{calibrate_macro, run_ground_truth, MacroModel, MacroState};
use elephant_net::{ClosParams, HostAddr, NetConfig, RttScope};
use elephant_obs::RunReport;
use elephant_trace::{generate, incast, write_csv, LoadProfile, WorkloadConfig};

fn main() {
    let args = Args::parse();
    elephant_obs::set_enabled(true);
    let horizon = args.horizon(40, 200);
    let params = ClosParams::paper_cluster(2);

    // Sinusoidally swinging background load (the paper's seconds-scale
    // regime drift, compressed) plus an incast burst into cluster 1.
    let mut wl = WorkloadConfig::paper_default(horizon, args.seed);
    wl.profile = LoadProfile::Sinusoid {
        period: elephant_des::SimTime::from_nanos(horizon.as_nanos() / 2),
        min: 0.3,
        max: 1.6,
    };
    let mut flows = generate(&params, &wl);
    let max_id = flows.iter().map(|f| f.id.0).max().unwrap_or(0);
    let senders: Vec<HostAddr> = (0..8)
        .map(|i| HostAddr::new(0, (i % 2) as u16, (i / 2 % 4) as u16))
        .collect();
    let burst_at = elephant_des::SimTime::from_nanos(horizon.as_nanos() / 2);
    flows.extend(incast(
        &senders,
        HostAddr::new(1, 0, 0),
        400_000,
        burst_at,
        max_id + 1,
    ));
    flows.sort_by_key(|f| (f.start, f.id.0));

    println!("running ground truth with incast burst at {burst_at} ...");
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        track_queues: true,
        ..Default::default()
    };
    let (net, meta) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
    if let Some(layers) = net.queue_depth_by_layer(horizon) {
        let names = ["host NIC", "ToR", "Agg", "Core"];
        println!("queue occupancy (time-weighted mean / peak bytes):");
        for (name, (mean, peak)) in names.iter().zip(layers.iter()) {
            println!("  {name:<8} {:>10.0} / {:>8.0}", mean, peak);
        }
    }
    let mut records = net.into_capture().expect("capture enabled").into_records();
    records.sort_by_key(|r| r.t_in);
    println!("{} boundary records captured", records.len());

    let macro_cfg = calibrate_macro(&records);
    println!(
        "calibrated thresholds: latency_low {:.1}us, drop_high {:.3}",
        macro_cfg.latency_low * 1e6,
        macro_cfg.drop_high
    );

    let mut model = MacroModel::new(macro_cfg);
    let mut occupancy = [0u64; 4];
    let mut transitions = [[0u64; 4]; 4];
    let mut timeline: Vec<(f64, usize)> = Vec::new();
    let mut prev = model.state();
    for (i, r) in records.iter().enumerate() {
        let s = model.observe(
            if r.dropped {
                None
            } else {
                Some(r.latency.as_secs_f64())
            },
            r.dropped,
        );
        occupancy[s.index()] += 1;
        transitions[prev.index()][s.index()] += 1;
        prev = s;
        if i % (records.len() / 200).max(1) == 0 {
            timeline.push((r.t_in.as_secs_f64(), s.index()));
        }
    }

    let total: u64 = occupancy.iter().sum();
    let names = ["Minimal", "Increasing", "High", "Decreasing"];
    let rows: Vec<Vec<String>> = MacroState::ALL
        .iter()
        .map(|s| {
            vec![
                names[s.index()].to_string(),
                occupancy[s.index()].to_string(),
                format!(
                    "{:.1}%",
                    100.0 * occupancy[s.index()] as f64 / total.max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        "Macro-state occupancy over the capture",
        &["state", "observations", "share"],
        &rows,
    );

    let trows: Vec<Vec<String>> = (0..4)
        .map(|i| {
            let mut row = vec![names[i].to_string()];
            row.extend((0..4).map(|j| transitions[i][j].to_string()));
            row
        })
        .collect();
    print_table(
        "Transition counts (row = from, column = to)",
        &["", names[0], names[1], names[2], names[3]],
        &trows,
    );

    // Multi-scale evidence: latency variance at second vs microsecond scale.
    let lat: Vec<(f64, f64)> = records
        .iter()
        .filter(|r| !r.dropped)
        .map(|r| (r.t_in.as_secs_f64(), r.latency.as_secs_f64()))
        .collect();
    if lat.len() > 100 {
        let n = lat.len();
        let coarse: Vec<f64> = lat
            .chunks(n / 20)
            .map(|c| c.iter().map(|&(_, l)| l).sum::<f64>() / c.len() as f64)
            .collect();
        let coarse_spread = spread(&coarse);
        let fine_spread = spread(&lat.iter().take(n / 20).map(|&(_, l)| l).collect::<Vec<_>>());
        println!(
            "\nmulti-scale structure: coarse (regime) latency spread {} vs\n\
             fine (jitter) spread within one window {} — both non-trivial,\n\
             which is the premise of the macro/micro split (§4).",
            fmt_f(coarse_spread / 1e-6),
            fmt_f(fine_spread / 1e-6)
        );
    }

    let csv: Vec<Vec<String>> = timeline
        .iter()
        .map(|&(t, s)| vec![format!("{t}"), s.to_string()])
        .collect();
    write_csv(
        args.out.join("macrostates_timeline.csv"),
        &["time_s", "state"],
        &csv,
    )
    .expect("write timeline");
    println!(
        "wrote {}",
        args.out.join("macrostates_timeline.csv").display()
    );

    // Every regime should be visited in a run with a burst.
    let visited = occupancy.iter().filter(|&&c| c > 0).count();
    println!("regimes visited: {visited}/4");

    let mut report = RunReport::new(
        "macrostates",
        format!(
            "2 clusters + incast burst, horizon {horizon}, seed {}",
            args.seed
        ),
    );
    report.set_run(meta.wall.as_secs_f64(), meta.events, meta.sim_seconds);
    report.scalar("regimes_visited", visited as f64);
    for s in MacroState::ALL {
        report.scalar(
            format!("occupancy_share_{}", names[s.index()].to_lowercase()),
            occupancy[s.index()] as f64 / total.max(1) as f64,
        );
    }
    report.gather();
    emit_report(&report, &args);
}

fn spread(xs: &[f64]) -> f64 {
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}
