//! # elephant-bench — evaluation harnesses
//!
//! One binary per figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index) plus ablations and baselines. This library holds
//! what they share: argument parsing, table printing, the PDES run
//! wrapper, and the default train-once-reuse-everywhere model pipeline.
//!
//! Every harness prints a human-readable table and writes CSVs under
//! `--out` (default `results/`), so figures can be re-plotted offline.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Duration;

use elephant_core::{
    run_ground_truth, run_pdes_full, run_pdes_hybrid, train_cluster_model, ClusterModel,
    TrainReport, TrainingOptions,
};
use elephant_des::{EpochMode, PdesReport, SimTime};
use elephant_net::{ClosParams, FlowSpec, NetConfig, RttScope};
use elephant_trace::{generate, WorkloadConfig};

/// Common command-line switches shared by every harness binary.
#[derive(Clone, Debug)]
pub struct Args {
    /// Run the paper-scale configuration instead of the quick one.
    pub full: bool,
    /// Experiment seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// Optional horizon override in milliseconds.
    pub horizon_ms: Option<u64>,
}

impl Args {
    /// Parses `--full`, `--seed N`, `--out DIR`, `--horizon-ms N` from the
    /// process arguments. Unknown switches abort with usage.
    pub fn parse() -> Args {
        let mut args = Args {
            full: false,
            seed: 42,
            out: PathBuf::from("results"),
            horizon_ms: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"))
                }
                "--out" => {
                    args.out =
                        PathBuf::from(it.next().unwrap_or_else(|| usage("--out needs a path")))
                }
                "--horizon-ms" => {
                    args.horizon_ms = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--horizon-ms needs an integer")),
                    )
                }
                other => usage(&format!("unknown argument {other}")),
            }
        }
        std::fs::create_dir_all(&args.out).expect("create output directory");
        args
    }

    /// The effective horizon: the override, or `quick`/`full` defaults.
    pub fn horizon(&self, quick_ms: u64, full_ms: u64) -> SimTime {
        let ms = self
            .horizon_ms
            .unwrap_or(if self.full { full_ms } else { quick_ms });
        SimTime::from_millis(ms)
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <harness> [--full] [--seed N] [--out DIR] [--horizon-ms N]");
    std::process::exit(2)
}

/// Prints an aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Outcome of a PDES run plus its wall time.
#[derive(Clone, Debug)]
pub struct PdesOutcome {
    /// Kernel statistics.
    pub report: PdesReport,
    /// Wall-clock duration.
    pub wall: Duration,
}

impl PdesOutcome {
    /// Simulated seconds per wall second (Figure 1's y-axis).
    pub fn sim_seconds_per_second(&self, horizon: SimTime) -> f64 {
        horizon.as_secs_f64() / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Converts a PDES report's per-partition breakdown into run-report rows.
pub fn partition_rows(report: &PdesReport) -> Vec<elephant_obs::PartitionRow> {
    report
        .partitions
        .iter()
        .map(|p| {
            elephant_obs::PartitionRow {
                partition: p.partition,
                events: p.events,
                work_seconds: p.work_seconds,
                barrier_wait_seconds: p.barrier_wait_seconds,
                barrier_wait_share: 0.0,
                marshal_seconds: p.marshal_seconds,
                remote_events_sent: p.remote_events_sent,
                remote_bytes_sent: p.remote_bytes_sent,
            }
            .finish()
        })
        .collect()
}

/// Prints a [`elephant_obs::RunReport`] and writes `BENCH_<name>.json`
/// into `args.out` as a sealed schema-v1 [`elephant_core::RunLedger`] —
/// the single artifact path every harness binary funnels through. The
/// shape matches the CLI's `--metrics-out`, so `elephant compare` accepts
/// bench artifacts directly (e.g. to gate a branch's bench run against a
/// baseline artifact).
pub fn emit_report(report: &elephant_obs::RunReport, args: &Args) {
    println!("\n{}", report.to_table());
    let mut ledger =
        elephant_core::RunLedger::new(format!("bench-{}", report.name), report.clone());
    ledger.scenario = report.scenario.clone();
    ledger.seed = args.seed;
    let path = args.out.join(format!("BENCH_{}.json", report.name));
    match ledger.save(&path) {
        Ok(()) => println!(
            "wrote {} (schema-v{} run ledger)",
            path.display(),
            elephant_core::LEDGER_SCHEMA_VERSION
        ),
        Err(e) => eprintln!("failed to write bench ledger: {e}"),
    }
}

/// Runs the packet simulator under conservative PDES: `partitions`
/// rack-partitioned logical processes dealt round-robin over `machines`
/// emulated machines (cross-machine messages marshalled with
/// `envelope_bytes` of MPI-style envelope). Thin wrapper over
/// [`elephant_core::run_pdes_full`] keeping the harnesses' historic
/// panic-on-error contract.
pub fn run_pdes(
    params: ClosParams,
    flows: &[FlowSpec],
    horizon: SimTime,
    partitions: usize,
    machines: usize,
    envelope_bytes: usize,
) -> PdesOutcome {
    run_pdes_mode(
        params,
        flows,
        horizon,
        partitions,
        machines,
        envelope_bytes,
        EpochMode::Adaptive,
    )
}

/// [`run_pdes`] with an explicit epoch-planning mode, for harnesses that
/// A/B the adaptive planner against fixed-increment stepping.
#[allow(clippy::too_many_arguments)] // an experiment spec, not an API surface
pub fn run_pdes_mode(
    params: ClosParams,
    flows: &[FlowSpec],
    horizon: SimTime,
    partitions: usize,
    machines: usize,
    envelope_bytes: usize,
    mode: EpochMode,
) -> PdesOutcome {
    let run = run_pdes_full(
        params,
        flows,
        horizon,
        partitions,
        machines,
        envelope_bytes,
        mode,
        None,
        None,
    )
    .unwrap_or_else(|e| panic!("PDES run failed: {e}"));
    PdesOutcome {
        report: run.report,
        wall: run.wall,
    }
}

/// Runs the *hybrid* simulator under PDES, partitioned by cluster: the
/// full cluster plus the core layer is one logical process, every stub
/// cluster (its hosts, TCP stacks, and oracle) another — the paper's
/// §6.2 observation that approximation removes the fabric interdependence
/// that made PDES unprofitable. Each partition owns its own
/// [`elephant_core::LearnedOracle`] instance around the shared weights.
///
/// Returns the outcome plus the summed oracle deliveries. On a single-core
/// host this measures coordination overhead only; with real cores the
/// partitions execute concurrently.
#[allow(clippy::too_many_arguments)] // an experiment spec, not an API surface
pub fn run_hybrid_pdes(
    params: ClosParams,
    full_cluster: u16,
    model: &elephant_core::ClusterModel,
    flows: &[FlowSpec],
    horizon: SimTime,
    machines: usize,
    envelope_bytes: usize,
    seed: u64,
) -> (PdesOutcome, u64) {
    use elephant_core::{DropPolicy, LearnedOracle};
    let run = run_pdes_hybrid(
        params,
        full_cluster,
        |p| {
            Box::new(LearnedOracle::new(
                model.clone(),
                params,
                DropPolicy::Sample,
                seed.wrapping_add(p as u64),
            ))
        },
        flows,
        horizon,
        machines,
        envelope_bytes,
        EpochMode::Adaptive,
        None,
        None,
    )
    .unwrap_or_else(|e| panic!("PDES run failed: {e}"));
    let oracle_total = run.oracle_deliveries();
    (
        PdesOutcome {
            report: run.report,
            wall: run.wall,
        },
        oracle_total,
    )
}

/// The standard "train once" step used by Figures 4–5 and the ablations:
/// a two-cluster ground-truth run with capture around cluster 1, then the
/// §3 training pipeline. Returns the records too, so ablations can retrain
/// from the same capture.
pub fn train_default_model(
    horizon: SimTime,
    seed: u64,
    opts: &TrainingOptions,
) -> (ClusterModel, TrainReport, Vec<elephant_net::BoundaryRecord>) {
    let params = ClosParams::paper_cluster(2);
    let flows = generate(&params, &WorkloadConfig::paper_default(horizon, seed));
    let cfg = NetConfig {
        rtt_scope: RttScope::None,
        ..Default::default()
    };
    let (net, _) = run_ground_truth(params, cfg, Some(1), &flows, horizon);
    let records = net.into_capture().expect("capture enabled").into_records();
    let (model, report) = train_cluster_model(&records, &params, opts);
    (model, report, records)
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else if v.abs() >= 0.001 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// Formats a duration in seconds with millisecond precision.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}
