//! Criterion micro-benchmarks for the hot kernels underneath every
//! experiment: the event queue, the forwarding path, oracle inference,
//! feature extraction, workload generation, and the statistics kernels.
//!
//! These are the per-operation costs that the figure-level results
//! decompose into; regressions here move every figure.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use elephant_core::{FeatureExtractor, LatencyCodec, MacroState, FEATURE_DIM};
use elephant_des::{splitmix64, EmpiricalCdf, Scheduler, SimDuration, SimTime, Simulator};
use elephant_net::{
    schedule_flows, ClosParams, Direction, FlowId, HostAddr, NetConfig, Network, RttScope, Topology,
};
use elephant_nn::{Matrix, MicroNet, MicroNetConfig};
use elephant_trace::{generate, SizeDist, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("des/event_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("schedule_pop_1k_pending", |b| {
        let mut s: Scheduler<u64> = Scheduler::new();
        let mut t = 0u64;
        for i in 0..1000 {
            s.schedule_at(SimTime::from_nanos(i * 100), i);
        }
        b.iter(|| {
            t += 1;
            let (time, _) = s.pop().expect("non-empty");
            s.schedule_at(time + SimDuration::from_micros(100), t);
        });
    });
    // The same hold-model cycle against both FEL backends at a density
    // where the bucketed scan pays off (100k pending events). This pair
    // is the per-operation view of `pdes_scaling`'s density-sweep gate.
    fn hold_cycle<F: elephant_des::Fel<u64>>(b: &mut criterion::Bencher, n: u64) {
        let mut s: Scheduler<u64, F> = Scheduler::new();
        let mut t = 0u64;
        for i in 0..n {
            s.schedule_at(SimTime::from_nanos(splitmix64(i) % 4_000_000), i);
        }
        b.iter(|| {
            t += 1;
            let (time, _) = s.pop().expect("non-empty");
            let off = splitmix64(t) % 4_000_000 + 1;
            s.schedule_at(time + SimDuration::from_nanos(off), t);
        });
    }
    g.bench_function("hold_100k_pending_heap", |b| {
        hold_cycle::<elephant_des::BinaryHeapFel<u64>>(b, 100_000)
    });
    g.bench_function("hold_100k_pending_calendar", |b| {
        hold_cycle::<elephant_des::CalendarFel<u64>>(b, 100_000)
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::clos(ClosParams::paper_cluster(16));
    let mut g = c.benchmark_group("net/routing");
    g.throughput(Throughput::Elements(1));
    let tor = topo.tor_node(3, 0).unwrap();
    g.bench_function("route_at_tor", |b| {
        let mut f = 0u64;
        b.iter(|| {
            f += 1;
            topo.route(tor, HostAddr::new(12, 1, 2), FlowId(f))
        });
    });
    g.bench_function("fabric_path", |b| {
        let mut f = 0u64;
        b.iter(|| {
            f += 1;
            topo.fabric_path(HostAddr::new(3, 0, 1), HostAddr::new(12, 1, 2), FlowId(f))
        });
    });
    g.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut g = c.benchmark_group("nn");
    for (h, l) in [(32usize, 2usize), (128, 2)] {
        let cfg = MicroNetConfig {
            input: FEATURE_DIM,
            hidden: h,
            layers: l,
            alpha: 0.5,
            rnn: elephant_nn::RnnKind::Lstm,
        };
        let model = MicroNet::new(cfg, &mut rng);
        let x = vec![0.3f32; FEATURE_DIM];
        g.throughput(Throughput::Elements(1));
        g.bench_function(format!("predict_{l}x{h}"), |b| {
            let mut state = model.init_state();
            b.iter(|| model.predict(&x, &mut state));
        });
    }
    let m = Matrix::xavier(128, 128, &mut rng);
    let x = vec![0.5f32; 128];
    let mut y = vec![0.0f32; 128];
    g.throughput(Throughput::Elements(128 * 128));
    g.bench_function("matvec_128x128", |b| b.iter(|| m.matvec(&x, &mut y)));
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    let params = ClosParams::paper_cluster(16);
    let topo = Topology::clos(params);
    let path = topo.fabric_path(HostAddr::new(1, 0, 0), HostAddr::new(0, 1, 2), FlowId(5));
    let mut g = c.benchmark_group("core");
    g.throughput(Throughput::Elements(1));
    g.bench_function("feature_extract", |b| {
        let mut fx = FeatureExtractor::new(&params);
        let mut t = 0u64;
        b.iter(|| {
            t += 50;
            fx.extract(
                HostAddr::new(1, 0, 0),
                HostAddr::new(0, 1, 2),
                1500,
                Direction::Up,
                &path,
                SimTime::from_nanos(t),
                MacroState::Increasing,
            )
        });
    });
    let codec = LatencyCodec::default();
    g.bench_function("latency_codec_round_trip", |b| {
        b.iter(|| codec.decode(codec.encode(SimDuration::from_micros(87))))
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/simulation");
    g.sample_size(10);
    // Cost of simulating one millisecond of a loaded 2-cluster network.
    g.bench_function("two_cluster_1ms", |b| {
        let params = ClosParams::paper_cluster(2);
        let horizon = SimTime::from_millis(1);
        let flows = generate(&params, &WorkloadConfig::paper_default(horizon, 5));
        b.iter_batched(
            || {
                let topo = Arc::new(Topology::clos(params));
                let cfg = NetConfig {
                    rtt_scope: RttScope::None,
                    ..Default::default()
                };
                let mut sim = Simulator::new(Network::new(topo, cfg));
                schedule_flows(&mut sim, &flows);
                sim
            },
            |mut sim| {
                sim.run_until(horizon);
                sim.scheduler().executed_total()
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

fn bench_workload_and_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.bench_function("generate_10ms_4clusters", |b| {
        let params = ClosParams::paper_cluster(4);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            generate(
                &params,
                &WorkloadConfig::paper_default(SimTime::from_millis(10), seed),
            )
        });
    });
    g.bench_function("size_dist_sample", |b| {
        let d = SizeDist::web_search();
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| d.sample(&mut rng));
    });
    let mut rng = SmallRng::seed_from_u64(3);
    let a: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
    let bsamples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() * 1.1).collect();
    let ca = EmpiricalCdf::from_samples(&a);
    let cb = EmpiricalCdf::from_samples(&bsamples);
    g.bench_function("ks_distance_10k", |b| b.iter(|| ca.ks_distance(&cb)));
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_routing,
    bench_nn,
    bench_features,
    bench_simulation,
    bench_workload_and_stats
);
criterion_main!(benches);
