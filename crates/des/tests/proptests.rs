//! Property-based tests of the kernel's ordering, cancellation, and
//! statistics invariants.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use elephant_des::{EmpiricalCdf, HeapScheduler, Scheduler, SimDuration, SimTime, Summary};
use proptest::prelude::*;

/// A random scheduler workload: interleaved schedules (with arbitrary
/// future offsets) and cancellations.
#[derive(Clone, Debug)]
enum Op {
    Schedule(u64),
    CancelNth(usize),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..10_000).prop_map(Op::Schedule),
            (0usize..64).prop_map(Op::CancelNth),
            Just(Op::Pop),
        ],
        1..200,
    )
}

/// The differential-test alphabet: everything the `Scheduler` API can do to
/// the FEL, including the remote lane and zero-offset bursts. Offsets mix
/// sub-bucket, multi-bucket, and multi-year magnitudes so the calendar
/// queue's year scan, direct-search jump, and resize paths all trigger.
#[derive(Clone, Debug)]
enum FelOp {
    Schedule(u64),
    ScheduleNow,
    Remote { sender: usize, offset: u64 },
    CancelNth(usize),
    Peek,
    Pop,
}

fn arb_fel_ops() -> impl Strategy<Value = Vec<FelOp>> {
    let offset = prop_oneof![
        0u64..100,        // intra-bucket ties and near-ties
        0u64..50_000,     // a few buckets ahead
        0u64..50_000_000, // many years ahead: direct-search jumps
    ];
    let remote_offset = prop_oneof![0u64..100, 0u64..50_000, 0u64..50_000_000];
    proptest::collection::vec(
        prop_oneof![
            offset.prop_map(FelOp::Schedule),
            Just(FelOp::ScheduleNow),
            (0usize..4, remote_offset)
                .prop_map(|(sender, offset)| FelOp::Remote { sender, offset }),
            (0usize..96).prop_map(FelOp::CancelNth),
            Just(FelOp::Peek),
            Just(FelOp::Pop),
        ],
        1..300,
    )
}

proptest! {
    /// The scheduler agrees with a reference model (a sorted multiset of
    /// (time, seq) pairs with tombstones) on every pop.
    #[test]
    fn scheduler_matches_reference_model(ops in arb_ops()) {
        let mut sched: Scheduler<u64> = Scheduler::new();
        let mut model: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut issued = Vec::new(); // (key, time, seq, payload)
        let mut cancelled = std::collections::HashSet::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut payload = 1000u64;

        for op in ops {
            match op {
                Op::Schedule(offset) => {
                    let t = now + offset;
                    payload += 1;
                    let key = sched.schedule_at(SimTime::from_nanos(t), payload);
                    model.push(Reverse((t, seq, payload)));
                    issued.push((key, t, seq, payload));
                    seq += 1;
                }
                Op::CancelNth(n) => {
                    if let Some(&(key, t, s, p)) = issued.get(n % issued.len().max(1)) {
                        // Cancel both in the scheduler and the model (only
                        // meaningful if not already popped/cancelled).
                        if sched.cancel(key) {
                            cancelled.insert((t, s, p));
                        }
                    }
                }
                Op::Pop => {
                    // Pop the reference model's earliest non-cancelled.
                    let expected = loop {
                        match model.pop() {
                            None => break None,
                            Some(Reverse((t, s, p))) => {
                                if !cancelled.contains(&(t, s, p)) {
                                    break Some((t, p));
                                }
                            }
                        }
                    };
                    let got = sched.pop().map(|(t, p)| (t.as_nanos(), p));
                    prop_assert_eq!(got, expected);
                    if let Some((t, _)) = got {
                        now = t;
                    }
                }
            }
        }
        // Drain both and compare the tails.
        loop {
            let expected = loop {
                match model.pop() {
                    None => break None,
                    Some(Reverse((t, s, p))) => {
                        if !cancelled.contains(&(t, s, p)) {
                            break Some((t, p));
                        }
                    }
                }
            };
            let got = sched.pop().map(|(t, p)| (t.as_nanos(), p));
            prop_assert_eq!(got, expected);
            if got.is_none() {
                break;
            }
        }
        // Conservation: scheduled = executed + cancelled + pending(0).
        prop_assert_eq!(
            sched.scheduled_total(),
            sched.executed_total() + sched.cancelled_total()
        );
    }

    /// Differential test of the calendar-queue FEL against the legacy
    /// binary heap: identical op sequences — local schedules at mixed
    /// offsets (including zero-offset `schedule_now` bursts), remote-lane
    /// deliveries from several senders, cancellations, pops, and peeks —
    /// must produce bit-identical pop streams, peeks, pending counts, and
    /// lifetime counters. This is the drop-in proof that swapping the FEL
    /// backend cannot change a simulation.
    #[test]
    fn calendar_queue_matches_binary_heap(ops in arb_fel_ops()) {
        let mut cal: Scheduler<u64> = Scheduler::new();
        let mut heap: HeapScheduler<u64> = Scheduler::new();
        let mut keys = Vec::new(); // parallel (cal_key, heap_key)
        let mut send_seqs = [0u64; 4]; // per-sender remote counters
        let mut payload = 0u64;

        for op in ops {
            match op {
                FelOp::Schedule(offset) => {
                    payload += 1;
                    let t = cal.now() + SimDuration::from_nanos(offset);
                    keys.push((
                        cal.schedule_at(t, payload),
                        heap.schedule_at(t, payload),
                    ));
                }
                FelOp::ScheduleNow => {
                    payload += 1;
                    keys.push((cal.schedule_now(payload), heap.schedule_now(payload)));
                }
                FelOp::Remote { sender, offset } => {
                    payload += 1;
                    let t = cal.now() + SimDuration::from_nanos(offset);
                    let seq = send_seqs[sender];
                    send_seqs[sender] += 1;
                    cal.schedule_remote(t, sender, seq, payload);
                    heap.schedule_remote(t, sender, seq, payload);
                }
                FelOp::CancelNth(n) => {
                    if let Some(&(ck, hk)) = keys.get(n % keys.len().max(1)) {
                        prop_assert_eq!(cal.cancel(ck), heap.cancel(hk));
                    }
                }
                FelOp::Peek => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                }
                FelOp::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.pending(), heap.pending());
        }
        // Drain both and compare the tails plus every lifetime counter.
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h);
            if c.is_none() {
                break;
            }
        }
        prop_assert_eq!(cal.scheduled_total(), heap.scheduled_total());
        prop_assert_eq!(cal.executed_total(), heap.executed_total());
        prop_assert_eq!(cal.cancelled_total(), heap.cancelled_total());
        prop_assert_eq!(cal.now(), heap.now());
    }

    /// A cloned (checkpointed) calendar queue drains identically to the
    /// original from any mid-workload state the ops reached, and the
    /// original is unaffected by draining the clone first.
    #[test]
    fn calendar_queue_checkpoint_round_trips(ops in arb_fel_ops()) {
        let mut s: Scheduler<u64> = Scheduler::new();
        let mut keys = Vec::new();
        let mut send_seqs = [0u64; 4];
        let mut payload = 0u64;
        for op in ops {
            match op {
                FelOp::Schedule(offset) => {
                    payload += 1;
                    let t = s.now() + SimDuration::from_nanos(offset);
                    keys.push(s.schedule_at(t, payload));
                }
                FelOp::ScheduleNow => {
                    payload += 1;
                    keys.push(s.schedule_now(payload));
                }
                FelOp::Remote { sender, offset } => {
                    payload += 1;
                    let t = s.now() + SimDuration::from_nanos(offset);
                    let seq = send_seqs[sender];
                    send_seqs[sender] += 1;
                    s.schedule_remote(t, sender, seq, payload);
                }
                FelOp::CancelNth(n) => {
                    if let Some(&k) = keys.get(n % keys.len().max(1)) {
                        s.cancel(k);
                    }
                }
                FelOp::Peek => {
                    s.peek_time();
                }
                FelOp::Pop => {
                    s.pop();
                }
            }
        }
        let mut snapshot = s.clone();
        let from_snapshot: Vec<_> = std::iter::from_fn(|| snapshot.pop()).collect();
        let from_original: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
        prop_assert_eq!(from_snapshot, from_original);
        prop_assert_eq!(snapshot.executed_total(), s.executed_total());
    }

    /// Pops are globally time-ordered regardless of insertion order.
    #[test]
    fn pops_are_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut s: Scheduler<()> = Scheduler::new();
        for &t in &times {
            s.schedule_at(SimTime::from_nanos(t), ());
        }
        let mut prev = SimTime::ZERO;
        while let Some((t, _)) = s.pop() {
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    /// Summary::merge is associative-enough: merging in any split point
    /// yields the same moments as one pass.
    #[test]
    fn summary_split_invariance(
        data in proptest::collection::vec(-1e6f64..1e6, 2..100),
        split in 1usize..99,
    ) {
        let split = split % (data.len() - 1) + 1;
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..split].iter().for_each(|&x| a.record(x));
        data[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.variance() - whole.variance()).abs()
                <= 1e-6 * (1.0 + whole.variance().abs())
        );
    }

    /// KS distance never exceeds the fraction of differing mass: adding
    /// the same samples to both sides cannot increase it.
    #[test]
    fn ks_shrinks_with_shared_mass(
        shared in proptest::collection::vec(0.0f64..100.0, 1..50),
        extra in proptest::collection::vec(0.0f64..100.0, 1..50),
    ) {
        let a = EmpiricalCdf::from_samples(&extra);
        let mut both = shared.clone();
        both.extend_from_slice(&extra);
        let b = EmpiricalCdf::from_samples(&both);
        let mut shared_only = shared.clone();
        shared_only.extend_from_slice(&extra);
        let c = EmpiricalCdf::from_samples(&shared_only);
        // b and c are identical multisets: distance 0.
        prop_assert!(b.ks_distance(&c) < 1e-12);
        // Distance to the pure-extra distribution is bounded by 1.
        prop_assert!(a.ks_distance(&b) <= 1.0);
    }

    /// Durations built from link math always round up, never to zero for
    /// positive byte counts.
    #[test]
    fn serialization_time_positive(bytes in 1u64..1_000_000, gbps in 1.0f64..400.0) {
        let d = SimDuration::from_bytes_at_gbps(bytes, gbps);
        prop_assert!(d >= SimDuration::from_nanos(1));
        // And scales monotonically in size.
        let d2 = SimDuration::from_bytes_at_gbps(bytes * 2, gbps);
        prop_assert!(d2 >= d);
    }
}
