//! Fault-injection suite for the PDES engine: stalls must become structured
//! errors instead of hangs, slowdowns must not trip the watchdog, and
//! message-level faults (drop/duplicate/corrupt) must be deterministic
//! under a fixed seed.

use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use elephant_des::{
    FaultPlan, PartitionId, PartitionSim, PartitionWorld, PdesConfig, PdesError, PdesRunner,
    RemoteSink, Scheduler, SimDuration, SimTime, Transportable,
};

const LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

/// A token that hops around a partition ring, as in the engine's unit
/// tests; its codec detects truncation (decode returns `None`).
#[derive(Debug, PartialEq)]
struct Token {
    hops_left: u32,
    value: u64,
}

impl Transportable for Token {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.hops_left);
        buf.put_u64(self.value);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.remaining() < 12 {
            return None;
        }
        Some(Token {
            hops_left: buf.get_u32(),
            value: buf.get_u64(),
        })
    }
}

struct Ring {
    id: PartitionId,
    n: usize,
    arrivals: u64,
}

impl PartitionWorld for Ring {
    type Event = Token;
    fn handle(&mut self, ev: Token, sched: &mut Scheduler<Token>, remote: &mut RemoteSink<Token>) {
        self.arrivals += 1;
        if ev.hops_left == 0 {
            return;
        }
        let next = Token {
            hops_left: ev.hops_left - 1,
            value: ev.value + 1,
        };
        let at = sched.now() + LOOKAHEAD;
        let dst = (self.id + 1) % self.n;
        if dst == self.id {
            sched.schedule_at(at, next);
        } else {
            remote.send(dst, at, next);
        }
    }
}

fn ring_parts(n: usize, hops: u32) -> Vec<PartitionSim<Ring>> {
    let mut parts: Vec<PartitionSim<Ring>> = (0..n)
        .map(|id| PartitionSim::new(Ring { id, n, arrivals: 0 }))
        .collect();
    parts[0].scheduler_mut().schedule_at(
        SimTime::ZERO,
        Token {
            hops_left: hops,
            value: 0,
        },
    );
    parts
}

fn ring_run(
    n: usize,
    hops: u32,
    machines: usize,
    cfg_mut: impl FnOnce(PdesConfig) -> PdesConfig,
) -> (Vec<u64>, Result<elephant_des::PdesReport, PdesError>) {
    let parts = ring_parts(n, hops);
    let config = cfg_mut(PdesConfig::round_robin(n, machines, LOOKAHEAD, 16));
    let mut runner = PdesRunner::new(parts, config);
    let result = runner.run_until(SimTime::from_secs(10));
    let arrivals = runner
        .into_partitions()
        .into_iter()
        .map(|p| p.world().arrivals)
        .collect();
    (arrivals, result)
}

/// The headline guarantee: a partition that stops consuming events turns
/// into a `PdesError::Stalled` naming the stuck partition within the
/// watchdog bound — not an infinite barrier loop.
#[test]
fn stalled_partition_is_named_within_watchdog_bound() {
    const WATCHDOG: u64 = 8;
    let (_, result) = ring_run(3, 1000, 1, |mut cfg| {
        cfg.stall_epochs = WATCHDOG;
        cfg.with_faults(FaultPlan {
            stall_partition: Some((1, 5)),
            ..Default::default()
        })
    });
    match result {
        Err(PdesError::Stalled {
            partition,
            at,
            epochs,
            report,
        }) => {
            assert_eq!(partition, 1, "the injected partition must be named");
            assert!(epochs >= WATCHDOG, "fired before the bound: {epochs}");
            assert!(
                report.epochs <= 5 + WATCHDOG + 2,
                "watchdog must bound the spin: {} epochs",
                report.epochs
            );
            // Diagnostics: the stuck partition's frozen clock equals the
            // stall time the error reports.
            assert_eq!(report.partitions[1].next_time, Some(at));
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}

/// A slow-but-advancing partition is not a stall: wall-clock lag must not
/// trip the (simulated-time) watchdog, and results are unaffected.
#[test]
fn slow_partition_completes_without_tripping_watchdog() {
    let (arrivals, result) = ring_run(3, 12, 1, |mut cfg| {
        cfg.stall_epochs = 4; // tight bound on purpose
        cfg.with_faults(FaultPlan {
            slow_partition: Some((1, Duration::from_millis(2))),
            ..Default::default()
        })
    });
    let report = result.expect("slowdown is not a fault");
    assert_eq!(arrivals.iter().sum::<u64>(), 13);
    assert_eq!(report.faults.total(), 0);
}

/// Dropping every cross-machine message kills the token on its first hop.
#[test]
fn message_drop_loses_the_token() {
    let (arrivals, result) = ring_run(4, 99, 2, |cfg| {
        cfg.with_faults(FaultPlan {
            seed: 1,
            drop_prob: 1.0,
            ..Default::default()
        })
    });
    let report = result.expect("drops are silent, not fatal");
    assert_eq!(arrivals.iter().sum::<u64>(), 1, "only the initial arrival");
    assert_eq!(report.faults.dropped, 1);
}

/// Duplicating every cross-machine hop doubles the token population per
/// hop: 1 + 2 + 4 + 8 arrivals for three hops.
#[test]
fn message_duplication_multiplies_arrivals() {
    let (arrivals, result) = ring_run(4, 3, 2, |cfg| {
        cfg.with_faults(FaultPlan {
            seed: 1,
            dup_prob: 1.0,
            ..Default::default()
        })
    });
    let report = result.expect("duplication is not fatal");
    assert_eq!(arrivals.iter().sum::<u64>(), 15);
    assert_eq!(report.faults.duplicated, 7, "every hop duplicated");
}

/// A corrupted message fails to decode on the far side and surfaces as
/// `PdesError::Corrupt` naming the sender — where the engine previously
/// panicked inside a worker thread.
#[test]
fn corrupted_message_yields_structured_error() {
    let (_, result) = ring_run(4, 99, 2, |cfg| {
        cfg.with_faults(FaultPlan {
            seed: 1,
            corrupt_prob: 1.0,
            ..Default::default()
        })
    });
    match result {
        Err(PdesError::Corrupt {
            partition, report, ..
        }) => {
            assert_eq!(partition, 0, "partition 0 sends the first hop");
            assert_eq!(report.faults.corrupted, 1);
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// The fault stream is a pure function of (plan, partition): two runs with
/// the same seed inject the identical faults and produce identical results.
#[test]
fn fault_injection_is_deterministic() {
    let run = || {
        ring_run(4, 200, 2, |cfg| {
            cfg.with_faults(FaultPlan {
                seed: 7,
                drop_prob: 0.25,
                dup_prob: 0.1,
                ..Default::default()
            })
        })
    };
    let (arr_a, res_a) = run();
    let (arr_b, res_b) = run();
    let rep_a = res_a.expect("run a");
    let rep_b = res_b.expect("run b");
    assert_eq!(arr_a, arr_b, "same seed, same arrivals");
    assert_eq!(rep_a.faults, rep_b.faults, "same seed, same faults");
    assert_eq!(rep_a.events_executed, rep_b.events_executed);
    assert!(rep_a.faults.total() > 0, "plan must actually inject");
}

/// A fault-free plan with the watchdog enabled is invisible: same events,
/// same epochs, zero fault counts as a run with no plan at all.
#[test]
fn inert_plan_matches_unfaulted_run() {
    let (arr_plain, res_plain) = ring_run(3, 50, 2, |cfg| cfg);
    let (arr_inert, res_inert) = ring_run(3, 50, 2, |cfg| cfg.with_faults(FaultPlan::default()));
    let rep_plain = res_plain.expect("plain");
    let rep_inert = res_inert.expect("inert");
    assert_eq!(arr_plain, arr_inert);
    assert_eq!(rep_plain.events_executed, rep_inert.events_executed);
    assert_eq!(rep_plain.epochs, rep_inert.epochs);
    assert_eq!(rep_inert.faults.total(), 0);
}
