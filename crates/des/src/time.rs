//! Simulation clock types.
//!
//! The kernel measures simulated time in integer **nanoseconds** held in a
//! [`SimTime`] newtype. Integer time keeps event ordering exact and runs
//! bit-reproducible across platforms, which floating-point clocks do not.
//! A companion [`SimDuration`] represents spans between instants.
//!
//! One nanosecond of resolution is enough to express the serialization time
//! of a single byte at 400 Gbps (0.02 ns rounds to 0, so link models round
//! *up* — see [`SimDuration::from_bytes_at_gbps`]), while a `u64` range of
//! ~584 simulated years is far beyond any experiment in this repository.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs an instant from fractional seconds, rounding to the
    /// nearest nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid simulation time: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from `earlier` to `self`, saturating at zero if `earlier` is
    /// actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Addition that saturates at [`SimTime::MAX`] instead of overflowing.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from fractional seconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// The time it takes to serialize `bytes` onto a link of `gbps`
    /// gigabits per second, rounded **up** so that no transmission is ever
    /// modeled as free.
    pub fn from_bytes_at_gbps(bytes: u64, gbps: f64) -> Self {
        assert!(gbps > 0.0, "link rate must be positive");
        let ns = (bytes as f64 * 8.0) / gbps; // bits / (bits per ns)
        SimDuration(ns.ceil() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked subtraction of spans.
    #[inline]
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Subtraction that saturates at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Integer multiplication of a span.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales this span by a non-negative float, rounding to nearest.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `other` spans fit in `self`.
    #[inline]
    fn div(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.6}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_nanos(2_500_000_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!(t + d, SimTime::from_micros(15));
        assert_eq!((t + d) - t, SimDuration::from_micros(5));
        assert_eq!(t - d, SimTime::from_micros(5));
        assert_eq!(d * 3, SimDuration::from_micros(15));
        assert_eq!(d / 5, SimDuration::from_micros(1));
        assert_eq!(SimDuration::from_micros(12) / d, 2);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(1).checked_since(SimTime::from_secs(2)),
            None
        );
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1500 bytes at 10 Gbps = 1200 ns exactly.
        assert_eq!(
            SimDuration::from_bytes_at_gbps(1500, 10.0),
            SimDuration::from_nanos(1200)
        );
        // 1 byte at 400 Gbps = 0.02 ns, must round up to 1 ns.
        assert_eq!(
            SimDuration::from_bytes_at_gbps(1, 400.0),
            SimDuration::from_nanos(1)
        );
        // Zero bytes genuinely takes zero time.
        assert_eq!(SimDuration::from_bytes_at_gbps(0, 10.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(999)), "999ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
