//! The sequential simulation engine.
//!
//! A simulation is a [`World`] (all model state plus an event-handling
//! function) driven by a [`Simulator`], which owns the world and its
//! [`Scheduler`] and runs the classic DES loop: pop the earliest event,
//! advance the clock, dispatch to the world, repeat.

use elephant_obs::{Counter, Gauge};

use crate::sched::Scheduler;
use crate::time::SimTime;

/// A simulation model: the state of every simulated component plus the
/// event dispatch function.
///
/// Implementations define a closed event enum as `Self::Event`; the engine
/// never inspects events, it only orders them.
pub trait World {
    /// The event alphabet of this model.
    type Event;

    /// Handles one event at the scheduler's current time. The handler may
    /// schedule any number of future events.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Why a call to [`Simulator::run`] (or a relative) returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The future event list drained completely.
    Exhausted,
    /// The configured time horizon was reached.
    HorizonReached,
    /// The configured event budget was spent.
    BudgetSpent,
}

/// Cached handles into the global metrics registry, plus local batch
/// accumulators. The simulator is single-threaded, so per-event bookkeeping
/// stays in plain integers; the shared atomics are only touched once per
/// `METRICS_FLUSH_EVERY` events and at run-loop exits, keeping the hot-path
/// cost to a relaxed flag load and two register ops.
#[derive(Debug)]
struct KernelMetrics {
    events: Counter,
    heap_depth: Gauge,
    fel_bytes: Gauge,
    batched_events: u64,
    batched_depth: i64,
}

const METRICS_FLUSH_EVERY: u64 = 4096;

impl KernelMetrics {
    fn new() -> Self {
        KernelMetrics {
            events: elephant_obs::counter("des/kernel/events_executed", ""),
            heap_depth: elephant_obs::gauge("des/kernel/heap_depth_peak", ""),
            fel_bytes: elephant_obs::gauge("des/kernel/fel_bytes_peak", ""),
            batched_events: 0,
            batched_depth: 0,
        }
    }

    /// Notes one executed event and the queue depth at the moment it
    /// popped. Returns `true` when the batch flushed to the registry —
    /// the caller's cue to sample expensive gauges (FEL bytes) at the
    /// same cadence.
    #[inline]
    fn note(&mut self, depth_at_pop: usize) -> bool {
        if !elephant_obs::enabled() {
            return false;
        }
        self.batched_events += 1;
        self.batched_depth = self.batched_depth.max(depth_at_pop as i64);
        if self.batched_events >= METRICS_FLUSH_EVERY {
            self.flush();
            return true;
        }
        false
    }

    /// Records a high-water mark of the FEL's resident bytes (the
    /// `bytes/host` memory-accounting substrate; see
    /// [`crate::Scheduler::fel_bytes`]).
    fn record_fel_bytes(&mut self, bytes: usize) {
        if elephant_obs::enabled() {
            self.fel_bytes.record_max(bytes as i64);
        }
    }

    /// Publishes the accumulated batch to the shared registry.
    fn flush(&mut self) {
        if self.batched_events > 0 {
            self.events.add(self.batched_events);
            self.heap_depth.record_max(self.batched_depth);
            self.batched_events = 0;
            self.batched_depth = 0;
        }
    }
}

/// Drives a [`World`] through simulated time.
#[derive(Debug)]
pub struct Simulator<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    metrics: KernelMetrics,
}

impl<W: World> Simulator<W> {
    /// Wraps a world with a fresh scheduler at time zero.
    pub fn new(world: W) -> Self {
        Simulator {
            world,
            sched: Scheduler::new(),
            metrics: KernelMetrics::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Immutable access to the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the model (e.g. to read out statistics or inject
    /// configuration between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the scheduler, for seeding initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Immutable access to the scheduler (event counters etc.).
    pub fn scheduler(&self) -> &Scheduler<W::Event> {
        &self.sched
    }

    /// Executes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((_, ev)) => {
                if self.metrics.note(self.sched.pending() + 1) {
                    self.metrics.record_fel_bytes(self.sched.fel_bytes());
                }
                self.world.handle(ev, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the event list drains.
    pub fn run(&mut self) -> StopReason {
        while self.step() {}
        self.metrics.flush();
        self.metrics.record_fel_bytes(self.sched.fel_bytes());
        StopReason::Exhausted
    }

    /// Runs until the event list drains or the clock passes `horizon`.
    ///
    /// Events stamped exactly at `horizon` still execute; the first event
    /// strictly after it stays queued and the clock is left parked at
    /// `horizon` so a subsequent call can resume seamlessly.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        loop {
            match self.sched.peek_time() {
                None => {
                    self.metrics.flush();
                    self.metrics.record_fel_bytes(self.sched.fel_bytes());
                    return StopReason::Exhausted;
                }
                Some(t) if t > horizon => {
                    self.sched.advance_clock(horizon.max(self.sched.now()));
                    self.metrics.flush();
                    self.metrics.record_fel_bytes(self.sched.fel_bytes());
                    return StopReason::HorizonReached;
                }
                Some(_) => {
                    let (_, ev) = self.sched.pop().expect("peeked event vanished");
                    if self.metrics.note(self.sched.pending() + 1) {
                        self.metrics.record_fel_bytes(self.sched.fel_bytes());
                    }
                    self.world.handle(ev, &mut self.sched);
                }
            }
        }
    }

    /// Runs until the event list drains or `budget` events have executed,
    /// whichever comes first. Useful for watchdogs around possibly-livelocked
    /// models.
    pub fn run_events(&mut self, budget: u64) -> StopReason {
        for _ in 0..budget {
            if !self.step() {
                self.metrics.flush();
                self.metrics.record_fel_bytes(self.sched.fel_bytes());
                return StopReason::Exhausted;
            }
        }
        self.metrics.flush();
        self.metrics.record_fel_bytes(self.sched.fel_bytes());
        StopReason::BudgetSpent
    }

    /// Consumes the simulator and returns the world, e.g. to extract final
    /// statistics.
    pub fn into_world(self) -> W {
        self.world
    }
}

impl<W: World + Clone> Simulator<W>
where
    W::Event: Clone,
{
    /// Deep-copies the world and scheduler into a resumable snapshot.
    ///
    /// Call between `run_until` chunks (the engine is parked there);
    /// restoring the snapshot and running on is bit-identical to never
    /// having stopped. Global observability (metrics registry, timeline)
    /// is deliberately outside the snapshot: counters are monotonic
    /// telemetry and keep the aborted attempt's contribution.
    pub fn checkpoint(&self) -> crate::checkpoint::SimCheckpoint<W> {
        crate::checkpoint::SimCheckpoint {
            world: self.world.clone(),
            sched: self.sched.clone(),
        }
    }

    /// Rewinds the simulator to a previously captured snapshot.
    pub fn restore(&mut self, checkpoint: &crate::checkpoint::SimCheckpoint<W>) {
        self.world = checkpoint.world.clone();
        self.sched = checkpoint.sched.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A world that counts down: each Tick schedules the next until zero.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    struct Tick;

    impl World for Countdown {
        type Event = Tick;
        fn handle(&mut self, _ev: Tick, sched: &mut Scheduler<Tick>) {
            self.fired_at.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(SimDuration::from_nanos(10), Tick);
            }
        }
    }

    fn countdown(n: u32) -> Simulator<Countdown> {
        let mut sim = Simulator::new(Countdown {
            remaining: n,
            fired_at: vec![],
        });
        sim.scheduler_mut().schedule_at(SimTime::ZERO, Tick);
        sim
    }

    #[test]
    fn run_drains_queue() {
        let mut sim = countdown(4);
        assert_eq!(sim.run(), StopReason::Exhausted);
        assert_eq!(sim.world().fired_at.len(), 5);
        assert_eq!(sim.now(), SimTime::from_nanos(40));
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut sim = countdown(100);
        let r = sim.run_until(SimTime::from_nanos(30));
        assert_eq!(r, StopReason::HorizonReached);
        // Ticks at 0,10,20,30 have fired; the one at 40 is pending.
        assert_eq!(sim.world().fired_at.len(), 4);
        assert_eq!(sim.now(), SimTime::from_nanos(30));
        // Resuming picks up where we left off.
        let r = sim.run_until(SimTime::from_nanos(50));
        assert_eq!(r, StopReason::HorizonReached);
        assert_eq!(sim.world().fired_at.len(), 6);
    }

    #[test]
    fn run_until_reports_exhaustion() {
        let mut sim = countdown(2);
        assert_eq!(sim.run_until(SimTime::from_secs(1)), StopReason::Exhausted);
    }

    #[test]
    fn run_events_respects_budget() {
        let mut sim = countdown(100);
        assert_eq!(sim.run_events(10), StopReason::BudgetSpent);
        assert_eq!(sim.world().fired_at.len(), 10);
        assert_eq!(sim.scheduler().executed_total(), 10);
    }

    #[test]
    fn empty_horizon_run_parks_clock() {
        let mut sim = Simulator::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        assert_eq!(sim.run_until(SimTime::from_secs(1)), StopReason::Exhausted);
    }
}
