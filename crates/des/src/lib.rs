//! # elephant-des — discrete-event simulation kernel
//!
//! The foundation of the `elephant` workspace: a deterministic,
//! integer-time discrete-event simulation kernel with a sequential engine,
//! a conservative parallel (PDES) engine, named random-number streams, and
//! the measurement primitives every experiment shares.
//!
//! This crate knows nothing about networks. The packet-level simulator
//! (`elephant-net`) supplies a [`World`] implementation whose event alphabet
//! is packets, timers, and flow arrivals; this crate merely orders and
//! dispatches them.
//!
//! ## Quick tour
//!
//! ```
//! use elephant_des::{Scheduler, SimDuration, SimTime, Simulator, World};
//!
//! /// An M/D/1-ish toy: a source emits jobs, a server takes 3us each.
//! struct Queue { busy_until: SimTime, served: u32 }
//! enum Ev { Arrival, Done }
//!
//! impl World for Queue {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
//!         match ev {
//!             Ev::Arrival => {
//!                 let start = self.busy_until.max(sched.now());
//!                 self.busy_until = start + SimDuration::from_micros(3);
//!                 sched.schedule_at(self.busy_until, Ev::Done);
//!             }
//!             Ev::Done => self.served += 1,
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Queue { busy_until: SimTime::ZERO, served: 0 });
//! for i in 0..10 {
//!     sim.scheduler_mut().schedule_at(SimTime::from_micros(i), Ev::Arrival);
//! }
//! sim.run();
//! assert_eq!(sim.world().served, 10);
//! assert_eq!(sim.now(), SimTime::from_micros(30)); // 10 jobs x 3us, back to back
//! ```
//!
//! ## Determinism contract
//!
//! Given the same seed and the same sequence of API calls, a sequential run
//! is bit-for-bit reproducible: integer nanosecond time, total `(time,
//! insertion)` event order, and order-independent named RNG streams
//! ([`RngFactory`]). The PDES engine preserves *semantics* (every event
//! fires at the same simulated time with the same payload) but interleaves
//! wall-clock execution across threads.

#![warn(missing_docs)]

mod checkpoint;
mod fault;
mod pdes;
mod rng;
mod sched;
mod sim;
mod stats;
mod time;

pub use checkpoint::{
    CheckpointError, CheckpointManifest, PdesCheckpoint, SimCheckpoint, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};
pub use fault::{FaultCounts, FaultPlan};
pub use pdes::{
    EpochMode, PartitionId, PartitionSim, PartitionStats, PartitionWorld, PdesConfig, PdesError,
    PdesReport, PdesRunner, RemoteSink, Transportable, DEFAULT_STALL_EPOCHS,
};
pub use rng::{splitmix64, RngFactory};
pub use sched::{
    BinaryHeapFel, CalendarFel, EventKey, Fel, HeapScheduler, Scheduler, SeqHasher, SeqSet,
};
pub use sim::{Simulator, StopReason, World};
pub use stats::{EmpiricalCdf, Ewma, LogHistogram, Summary, TimeWeighted};
pub use time::{SimDuration, SimTime};
