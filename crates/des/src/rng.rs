//! Deterministic random-number streams.
//!
//! Every stochastic element of a simulation (each traffic source, each ECMP
//! hash salt, each model initializer) draws from its own named stream derived
//! from one experiment seed. Streams are independent of the order in which
//! they are created, so adding instrumentation or reordering setup code never
//! perturbs results — a property the reproduction harness relies on.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives per-component RNGs from a single experiment seed.
#[derive(Clone, Copy, Debug)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given experiment seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed this factory was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the RNG for the stream named by `label` and `index`.
    ///
    /// The same `(seed, label, index)` triple always yields the same stream;
    /// distinct triples yield streams that are statistically independent
    /// (mixed through SplitMix64, the standard seed-expansion finalizer).
    pub fn stream(&self, label: &str, index: u64) -> SmallRng {
        let mut h = self.seed;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ b as u64);
        }
        h = splitmix64(h ^ index);
        // Guard against the all-zero degenerate state some generators dislike.
        SmallRng::seed_from_u64(splitmix64(h) | 1)
    }
}

/// SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(rng: &mut SmallRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn same_triple_same_stream() {
        let f = RngFactory::new(42);
        let a = draws(&mut f.stream("tcp", 3), 16);
        let b = draws(&mut f.stream("tcp", 3), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        assert_ne!(
            draws(&mut f.stream("tcp", 0), 16),
            draws(&mut f.stream("ecmp", 0), 16)
        );
    }

    #[test]
    fn different_indices_differ() {
        let f = RngFactory::new(42);
        assert_ne!(
            draws(&mut f.stream("tcp", 0), 16),
            draws(&mut f.stream("tcp", 1), 16)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = draws(&mut RngFactory::new(1).stream("x", 0), 16);
        let b = draws(&mut RngFactory::new(2).stream("x", 0), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_avalanches() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = splitmix64(0x1234_5678);
        let flipped = splitmix64(0x1234_5679);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "weak avalanche: {differing} bits"
        );
    }
}
