//! Conservative parallel discrete-event simulation (PDES).
//!
//! This engine reproduces the *kind* of parallelism OMNeT++'s MPI-based
//! PDES offers, which the paper's Figure 1 evaluates: the model is split
//! into partitions (logical processes), each with its own future event list,
//! and partitions may only exchange events whose delivery delay is at least
//! the **lookahead** `L` — in a network model, the minimum latency of any
//! cross-partition link.
//!
//! Synchronization is barrier-synchronous ("synchronous conservative"), with
//! two epoch modes (see [`EpochMode`]):
//!
//! * **Adaptive** (the default): each epoch, a designated planner thread
//!   computes every partition's *execution bound* from the published
//!   frontier — the earliest pending event of each partition, including
//!   mail still in flight through the exchange. Partition `r` may execute
//!   every event strictly below
//!
//!   ```text
//!   bound(r) = min( min over q != r of next(q) + L,  next(r) + 2L )
//!   ```
//!
//!   where `next(q)` is partition `q`'s earliest pending event. The first
//!   term is the classic conservative bound: the earliest instant at which
//!   any *other* partition could send `r` something new. The second term
//!   covers chains that return to `r` through an intermediary (`r → p → r`):
//!   remote self-sends are forbidden (asserted by [`RemoteSink::send`]), so
//!   any influence of `r` on itself crosses at least two links and arrives
//!   no earlier than `next(r) + 2L`. Because bounds are per-partition and
//!   anchored to the *global* minimum only through the published frontiers,
//!   an idle stretch — every partition's next event far in the future —
//!   costs a single barrier instead of thousands.
//!
//! * **Fixed**: the textbook fixed-increment escape hatch. Epoch `k+1` ends
//!   exactly `L` after epoch `k`, never skipping idle simulated time. This
//!   is the behaviour the adaptive planner is measured against (see the
//!   `pdes_scaling` bench) and a safety fallback (`--fixed-epochs`).
//!
//! Both modes execute events in an identical order: cross-partition
//! deliveries carry an intrinsic `(time, sender, send-seq)` key into the
//! scheduler's remote lane ([`Scheduler::schedule_remote`]), so tie order at
//! equal timestamps does not depend on which epoch plan happened to carry a
//! message. A run is therefore bit-identical across epoch modes, chunked
//! `run_until` boundaries, and repeat runs.
//!
//! ## The exchange
//!
//! Cross-partition messages move through double-buffered per-(sender,
//! receiver) outboxes. During an epoch each sender appends only to its own
//! `(sender, dst)` cells of the *next* buffer while receivers drain their
//! column of the *current* buffer — disjoint cells, so the epoch loop takes
//! no locks at all. The epoch barrier both swaps the buffers and publishes
//! the writes (its atomics establish the happens-before edges). The barrier
//! itself ([`EpochBarrier`]) spins briefly before parking: epochs are often
//! shorter than a park/unpark round trip.
//!
//! ## Emulating multi-machine deployments
//!
//! The paper runs PDES across 1–4 physical machines over MPI. We emulate a
//! machine boundary faithfully at the transport level: partitions are
//! assigned to machines, and every event crossing a machine boundary is
//! marshalled through a byte buffer ([`Transportable`]), prepended with a
//! configurable envelope (modeling MPI headers and kernel copies), checksummed
//! (forcing the copies to actually happen), and unmarshalled on the far
//! side. Same-machine exchanges move the event by pointer. This gives the
//! distinctive Figure-1 behaviour — more machines means more per-message
//! overhead — without requiring actual remote hosts.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Instant;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use elephant_obs::{TraceRecord, PID_PDES};
use parking_lot::Mutex;

use crate::fault::{FaultCounts, FaultPlan, FaultRng};
use crate::sched::Scheduler;
use crate::time::{SimDuration, SimTime};

/// Default watchdog bound: abort if the global minimum event time sits,
/// already covered by the previous epoch's execution bounds, for this many
/// consecutive epochs. A healthy adaptive epoch always executes the
/// globally-earliest event (its owner's bound exceeds it by at least `L`),
/// so any such stagnation is a stall; the slack only exists to keep
/// diagnostics unambiguous. In fixed mode, epochs that have not yet ground
/// forward to the next event are exempt (the bound has not covered it yet).
pub const DEFAULT_STALL_EPOCHS: u64 = 64;

/// Identifies a partition (logical process) in a PDES run.
pub type PartitionId = usize;

/// How the planner advances simulated time from epoch to epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EpochMode {
    /// Jump each epoch to the published global frontier and give every
    /// partition its own conservative execution bound (see module docs).
    #[default]
    Adaptive,
    /// Fixed-increment stepping: every epoch ends exactly `L` after the
    /// previous one, grinding through idle stretches one barrier at a time.
    /// Escape hatch for A/B-ing the adaptive planner (`--fixed-epochs`).
    Fixed,
}

/// Events that can cross a (simulated) machine boundary.
///
/// `encode`/`decode` must round-trip exactly; the engine asserts nothing
/// about the wire format beyond that.
pub trait Transportable: Sized {
    /// Serializes `self` onto `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Deserializes one value, consuming its bytes. Returns `None` on a
    /// malformed buffer (treated as a fatal model error by the engine).
    fn decode(buf: &mut Bytes) -> Option<Self>;
}

/// A partitioned simulation model.
///
/// Like [`crate::World`], but the handler may also emit events destined for
/// other partitions through the [`RemoteSink`].
pub trait PartitionWorld: Send {
    /// The event alphabet, shared by all partitions of the model.
    type Event: Transportable + Send;

    /// Handles one local event. Remote events must respect the lookahead:
    /// their delivery time must be at least `L` after the event being
    /// handled (the sink enforces this with an assertion).
    fn handle(
        &mut self,
        event: Self::Event,
        sched: &mut Scheduler<Self::Event>,
        remote: &mut RemoteSink<Self::Event>,
    );
}

/// Collects events addressed to other partitions during an epoch.
pub struct RemoteSink<E> {
    /// The owning partition; remote self-sends are rejected.
    me: PartitionId,
    lookahead: SimDuration,
    /// Timestamp of the event currently being handled; the lookahead floor.
    now: SimTime,
    out: Vec<(PartitionId, SimTime, E)>,
}

impl<E> RemoteSink<E> {
    fn new(me: PartitionId, lookahead: SimDuration) -> Self {
        RemoteSink {
            me,
            lookahead,
            now: SimTime::ZERO,
            out: Vec::new(),
        }
    }

    /// Sends `event` to `partition`, to be delivered at absolute time `at`.
    ///
    /// # Panics
    /// - If `at` violates the lookahead guarantee (earlier than the current
    ///   event's timestamp plus `L`); that is a causality bug in the model,
    ///   not a recoverable condition.
    /// - If `partition` is the sender itself: the adaptive planner's
    ///   per-partition bounds assume a partition can only influence itself
    ///   through at least two cross-partition hops, so self-routed events
    ///   must use the local scheduler.
    pub fn send(&mut self, partition: PartitionId, at: SimTime, event: E) {
        assert!(
            partition != self.me,
            "partition {} may not remote-send to itself; use the local scheduler",
            self.me
        );
        assert!(
            at >= self.now.saturating_add(self.lookahead),
            "lookahead violation: remote event at {at} sent from an event at {} \
             with lookahead {}",
            self.now,
            self.lookahead
        );
        self.out.push((partition, at, event));
    }
}

/// One partition: its world plus its private future event list.
pub struct PartitionSim<W: PartitionWorld> {
    world: W,
    sched: Scheduler<W::Event>,
    /// Running count of cross-partition message copies this partition has
    /// posted, across `run_until` chunks — the `send-seq` half of the remote
    /// tie-break key, so chunk boundaries cannot collide or reorder keys.
    send_seq: u64,
    /// Fault-RNG stream position, persisted across `run_until` chunks and
    /// checkpoints so a chunked or resumed run rolls the identical fault
    /// sequence as an uninterrupted one. `None` until a faulted run starts.
    fault_rng_state: Option<u64>,
    /// Epochs this partition has executed across all chunks — the counter a
    /// scripted [`FaultPlan::stall_partition`] fault measures against, so a
    /// restored run re-stalls (or not) exactly where the original did.
    epochs_run: u64,
}

impl<W: PartitionWorld> PartitionSim<W> {
    /// Wraps a world with an empty scheduler.
    pub fn new(world: W) -> Self {
        PartitionSim {
            world,
            sched: Scheduler::new(),
            send_seq: 0,
            fault_rng_state: None,
            epochs_run: 0,
        }
    }

    /// Access the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Immutable access to the scheduler (clock, counters).
    pub fn scheduler(&self) -> &Scheduler<W::Event> {
        &self.sched
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the partition, returning its world (post-run statistics).
    pub fn into_world(self) -> W {
        self.world
    }
}

// Cloning a partition snapshots the world, the FEL, and every piece of
// cross-chunk progress (send-seq, fault-RNG position, epoch count): a clone
// resumed at a chunk boundary is bit-identical to the original continuing.
impl<W: PartitionWorld + Clone> Clone for PartitionSim<W>
where
    W::Event: Clone,
{
    fn clone(&self) -> Self {
        PartitionSim {
            world: self.world.clone(),
            sched: self.sched.clone(),
            send_seq: self.send_seq,
            fault_rng_state: self.fault_rng_state,
            epochs_run: self.epochs_run,
        }
    }
}

/// Static configuration of a PDES run.
#[derive(Clone, Debug)]
pub struct PdesConfig {
    /// The lookahead `L`: minimum cross-partition delivery delay. Must be
    /// positive; the model must never send a remote event sooner than `L`
    /// after the moment it is sent.
    pub lookahead: SimDuration,
    /// Machine assignment, one entry per partition. Events between
    /// partitions on different machines pay the marshalling cost.
    pub machine_of: Vec<usize>,
    /// Envelope bytes prepended to every cross-machine message, modeling
    /// MPI headers plus kernel copy overhead. 0 disables the envelope but
    /// marshalling still occurs.
    pub envelope_bytes: usize,
    /// Stall watchdog bound: if the global minimum pending event time fails
    /// to advance for this many consecutive epochs whose bounds covered it,
    /// the run aborts with [`PdesError::Stalled`] naming the stuck
    /// partition. `0` disables the watchdog (a stalled partition then hangs
    /// the barrier loop forever).
    pub stall_epochs: u64,
    /// Optional deterministic fault injection (see [`FaultPlan`]).
    pub faults: Option<FaultPlan>,
    /// Epoch planning mode (see [`EpochMode`]); adaptive by default.
    pub epoch_mode: EpochMode,
}

impl PdesConfig {
    /// All partitions on a single machine.
    pub fn single_machine(partitions: usize, lookahead: SimDuration) -> Self {
        PdesConfig {
            lookahead,
            machine_of: vec![0; partitions],
            envelope_bytes: 0,
            stall_epochs: DEFAULT_STALL_EPOCHS,
            faults: None,
            epoch_mode: EpochMode::Adaptive,
        }
    }

    /// Partitions dealt round-robin across `machines` machines with the
    /// given envelope size.
    pub fn round_robin(
        partitions: usize,
        machines: usize,
        lookahead: SimDuration,
        envelope_bytes: usize,
    ) -> Self {
        assert!(machines >= 1);
        PdesConfig {
            lookahead,
            machine_of: (0..partitions).map(|p| p % machines).collect(),
            envelope_bytes,
            stall_epochs: DEFAULT_STALL_EPOCHS,
            faults: None,
            epoch_mode: EpochMode::Adaptive,
        }
    }

    /// Returns `self` with the given fault plan installed.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Returns `self` with the given epoch planning mode.
    pub fn with_epoch_mode(mut self, mode: EpochMode) -> Self {
        self.epoch_mode = mode;
        self
    }
}

/// Structured failure from a PDES run, replacing hangs and worker panics.
///
/// Both variants carry the partial [`PdesReport`] assembled at abort time,
/// so callers can inspect per-partition diagnostics (each partition's event
/// count and frozen [`PartitionStats::next_time`]) even for a failed run.
#[derive(Debug)]
pub enum PdesError {
    /// A partition stopped advancing: the global minimum pending event time
    /// sat at `at` for `epochs` consecutive epochs. Without the watchdog
    /// this is an infinite barrier loop.
    Stalled {
        /// The partition holding the frozen minimum event time.
        partition: PartitionId,
        /// The simulated time the run is stuck at.
        at: SimTime,
        /// Consecutive non-advancing epochs observed before aborting.
        epochs: u64,
        /// Partial statistics gathered up to the abort (boxed to keep the
        /// `Err` variant small on the hot `Result` path).
        report: Box<PdesReport>,
    },
    /// A marshalled cross-machine message failed to decode on the far side.
    Corrupt {
        /// The partition that sent the undecodable message.
        partition: PartitionId,
        /// Scheduled delivery time of the lost message.
        at: SimTime,
        /// Partial statistics gathered up to the abort.
        report: Box<PdesReport>,
    },
    /// A partition's event handler panicked. The panic is caught at the
    /// handler boundary and folded into the normal abort protocol, so one
    /// panicking worker produces this single structured error instead of a
    /// cascade of poisoned-barrier panics across every other thread.
    Panicked {
        /// The partition whose handler panicked.
        partition: PartitionId,
        /// Timestamp of the event being handled when the panic unwound.
        at: SimTime,
        /// The panic payload, when it was a string.
        message: String,
        /// Partial statistics gathered up to the abort.
        report: Box<PdesReport>,
    },
}

impl PdesError {
    /// The partial report assembled when the run aborted.
    pub fn report(&self) -> &PdesReport {
        match self {
            PdesError::Stalled { report, .. }
            | PdesError::Corrupt { report, .. }
            | PdesError::Panicked { report, .. } => report,
        }
    }
}

impl std::fmt::Display for PdesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdesError::Stalled {
                partition,
                at,
                epochs,
                ..
            } => write!(
                f,
                "PDES stalled: partition {partition} failed to advance past {at} \
                 for {epochs} consecutive epochs"
            ),
            PdesError::Corrupt { partition, at, .. } => write!(
                f,
                "PDES transport corruption: message from partition {partition} \
                 due at {at} failed to decode"
            ),
            PdesError::Panicked {
                partition,
                at,
                message,
                ..
            } => write!(
                f,
                "PDES worker panic: partition {partition} panicked handling an \
                 event at {at}: {message}"
            ),
        }
    }
}

impl std::error::Error for PdesError {}

/// Which failure a worker thread observed; folded into [`PdesError`] with
/// the final report once all threads have drained.
#[derive(Clone, Debug)]
enum FailureCause {
    Stalled { epochs: u64 },
    Corrupt,
    Panicked { message: String },
}

#[derive(Clone, Debug)]
struct Failure {
    partition: PartitionId,
    at: SimTime,
    cause: FailureCause,
}

/// Aggregate statistics from a PDES run.
#[derive(Clone, Debug, Default)]
pub struct PdesReport {
    /// Number of epoch barriers executed.
    pub epochs: u64,
    /// Epochs whose start jumped past the previous epoch's fixed-increment
    /// frontier (`previous start + L`) — the adaptive planner's win counter;
    /// always zero in [`EpochMode::Fixed`].
    pub epochs_jumped: u64,
    /// Total events executed across all partitions.
    pub events_executed: u64,
    /// Cross-partition messages delivered (marshalled or not).
    pub remote_messages: u64,
    /// Cross-machine messages, i.e. the subset that was marshalled.
    pub marshalled_messages: u64,
    /// Total bytes pushed through the marshalling path (payload + envelope).
    pub bytes_marshalled: u64,
    /// Faults injected by the configured [`FaultPlan`] (all zero without one).
    pub faults: FaultCounts,
    /// Wall-time and traffic breakdown, one row per partition.
    pub partitions: Vec<PartitionStats>,
}

impl PdesReport {
    /// Folds another report into this one, summing counts and wall times.
    ///
    /// Used by sampled drivers that advance a [`PdesRunner`] in chunks
    /// (one `run_until` per sampling tick) and want run-total statistics:
    /// each chunk's report covers only that chunk, so summation is exact.
    /// `next_time` takes the later report's value.
    ///
    /// # Panics
    /// Panics if the two reports have different partition counts: such
    /// reports come from different runs and zipping them would silently
    /// truncate rows.
    pub fn merge(&mut self, other: &PdesReport) {
        self.epochs += other.epochs;
        self.epochs_jumped += other.epochs_jumped;
        self.events_executed += other.events_executed;
        self.remote_messages += other.remote_messages;
        self.marshalled_messages += other.marshalled_messages;
        self.bytes_marshalled += other.bytes_marshalled;
        self.faults.dropped += other.faults.dropped;
        self.faults.duplicated += other.faults.duplicated;
        self.faults.corrupted += other.faults.corrupted;
        if self.partitions.is_empty() {
            self.partitions = other.partitions.clone();
            return;
        }
        assert_eq!(
            self.partitions.len(),
            other.partitions.len(),
            "PdesReport::merge: partition count mismatch — refusing to zip \
             per-partition rows from different runs"
        );
        for (a, b) in self.partitions.iter_mut().zip(&other.partitions) {
            a.events += b.events;
            a.work_seconds += b.work_seconds;
            a.barrier_wait_seconds += b.barrier_wait_seconds;
            a.marshal_seconds += b.marshal_seconds;
            a.remote_events_sent += b.remote_events_sent;
            a.remote_bytes_sent += b.remote_bytes_sent;
            // A high-water mark, not a count: the run-total peak is the max
            // over chunks.
            a.fel_bytes_peak = a.fel_bytes_peak.max(b.fel_bytes_peak);
            a.next_time = b.next_time;
        }
    }
}

/// Per-partition wall-time and traffic breakdown from a PDES run.
///
/// Wall times are measured with monotonic clocks inside the partition
/// thread; they never feed back into simulated time, so collecting them
/// does not perturb determinism.
#[derive(Clone, Debug, Default)]
pub struct PartitionStats {
    /// Partition index.
    pub partition: usize,
    /// Events this partition executed.
    pub events: u64,
    /// Wall time spent executing local events.
    pub work_seconds: f64,
    /// Wall time spent parked on epoch barriers.
    pub barrier_wait_seconds: f64,
    /// Wall time spent marshalling cross-machine events.
    pub marshal_seconds: f64,
    /// Cross-partition events this partition sent.
    pub remote_events_sent: u64,
    /// Bytes this partition pushed through the marshalling path.
    pub remote_bytes_sent: u64,
    /// High-water mark of the partition scheduler's FEL resident bytes
    /// (queue structure plus bookkeeping sets, sampled once per epoch) —
    /// the per-partition share of the `bytes/host` memory budget.
    pub fel_bytes_peak: u64,
    /// Earliest event still pending when the partition thread exited —
    /// the key stall diagnostic: a stuck partition's clock freezes here.
    pub next_time: Option<SimTime>,
}

/// Drives a set of [`PartitionSim`]s in parallel, one OS thread each.
pub struct PdesRunner<W: PartitionWorld> {
    partitions: Vec<PartitionSim<W>>,
    config: PdesConfig,
}

/// Epoch decision computed by the planner (thread 0) between barriers.
struct EpochPlan {
    /// Per-partition execution bound: partition `r` executes local events
    /// strictly below `bounds[r]` this epoch.
    bounds: Vec<SimTime>,
    terminate: bool,
}

/// A partition's frontier snapshot, read by the planner.
struct Publish {
    /// Earliest pending local event after the partition's last work phase.
    peek: Option<SimTime>,
    /// Per-destination minimum delivery time among messages the partition
    /// posted into the exchange buffer receivers will drain next epoch.
    out_min: Vec<Option<SimTime>>,
}

/// Cache-line-padded slot whose cross-thread access is serialized by the
/// epoch-barrier protocol rather than a lock: each cell is written by
/// exactly one thread in one barrier phase and read only in a different
/// phase, with a barrier (which establishes happens-before) in between.
#[repr(align(64))]
struct PhaseCell<T>(UnsafeCell<T>);

// SAFETY: access is phase-exclusive per the barrier protocol documented on
// each call site; the barrier's atomics provide the happens-before edges.
unsafe impl<T: Send> Sync for PhaseCell<T> {}

impl<T> PhaseCell<T> {
    fn new(v: T) -> Self {
        PhaseCell(UnsafeCell::new(v))
    }

    /// # Safety
    /// The caller must be the cell's unique accessor in the current barrier
    /// phase.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self) -> &mut T {
        &mut *self.0.get()
    }

    /// # Safety
    /// No thread may mutate the cell in the current barrier phase.
    unsafe fn get_ref(&self) -> &T {
        &*self.0.get()
    }
}

/// Sense-reversing barrier tuned for the epoch loop: arrivals spin briefly
/// (epochs are often shorter than a park/unpark round trip) and then park
/// on a condvar. The generation counter is the sense; its release/acquire
/// pair also publishes every pre-barrier write to every post-barrier reader,
/// which is what makes the lock-free [`PhaseCell`] exchange sound.
struct EpochBarrier {
    n: usize,
    /// Spin iterations before parking; zero when the host has fewer cores
    /// than partitions, where spinning only steals the straggler's
    /// timeslice.
    spin: u32,
    arrived: AtomicUsize,
    generation: AtomicU64,
    lock: StdMutex<()>,
    cvar: Condvar,
}

impl EpochBarrier {
    fn new(n: usize) -> Self {
        let spin = match std::thread::available_parallelism() {
            Ok(cores) if cores.get() >= n => 4096,
            _ => 0,
        };
        EpochBarrier {
            n,
            spin,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            lock: StdMutex::new(()),
            cvar: Condvar::new(),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset the count for the next round (published by
            // the generation bump below), bump the generation under the lock
            // (so a peer between its generation check and its park cannot
            // miss the change), and wake everyone parked.
            self.arrived.store(0, Ordering::Relaxed);
            {
                // The guarded state is `()`: poisoning (a peer panicked while
                // holding the lock) carries no broken invariant, so recover
                // instead of cascading secondary panics through every thread
                // parked here. The original panic is surfaced exactly once,
                // as a structured error, by the abort protocol.
                let _g = self
                    .lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                self.generation.fetch_add(1, Ordering::Release);
            }
            self.cvar.notify_all();
            return;
        }
        for _ in 0..self.spin {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self
            .lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while self.generation.load(Ordering::Acquire) == gen {
            guard = self
                .cvar
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// One exchange cell: messages from one sender to one receiver, each
/// carrying its delivery time and the sender's send-seq tie-break key.
type Outbox<E> = Vec<(SimTime, u64, E)>;

struct Shared<E> {
    barrier: EpochBarrier,
    /// One frontier snapshot per partition: written by its owner at the end
    /// of its work phase, read by the planner between barriers.
    publish: Vec<PhaseCell<Publish>>,
    /// Written by the planner between the epoch-end and plan barriers; read
    /// by everyone after the plan barrier.
    plan: PhaseCell<EpochPlan>,
    /// Double-buffered exchange: `outboxes[b][sender * n + dst]`. During an
    /// epoch, senders append to their own row of buffer `1 - cur` while
    /// receivers drain their column of buffer `cur` — disjoint cells, no
    /// locks. The epoch barrier swaps the buffers.
    outboxes: [Vec<PhaseCell<Outbox<E>>>; 2],
    /// Per-partition breakdowns, written once by each thread as it exits.
    per_partition: Mutex<Vec<PartitionStats>>,
    epochs: AtomicU64,
    epochs_jumped: AtomicU64,
    events: AtomicU64,
    remote_msgs: AtomicU64,
    marshalled_msgs: AtomicU64,
    marshalled_bytes: AtomicU64,
    fault_dropped: AtomicU64,
    fault_duplicated: AtomicU64,
    fault_corrupted: AtomicU64,
    poisoned: AtomicBool,
    /// Set by any thread that observes a failure; the planner converts it
    /// into a terminating epoch plan at the next planning phase, so every
    /// thread exits through the normal barrier sequence instead of
    /// deadlocking.
    abort: AtomicBool,
    /// First failure observed (kept; later ones are dropped).
    failure: Mutex<Option<Failure>>,
    /// Wall-clock origin for timeline slices: all partition tracks share
    /// one zero so their epochs line up in the trace viewer.
    started: Instant,
}

impl<E> Shared<E> {
    fn record_failure(&self, failure: Failure) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(failure);
        }
        self.abort.store(true, Ordering::SeqCst);
    }
}

impl<W: PartitionWorld> PdesRunner<W> {
    /// Builds a runner. `config.machine_of` must have one entry per
    /// partition and `lookahead` must be positive.
    pub fn new(partitions: Vec<PartitionSim<W>>, config: PdesConfig) -> Self {
        assert!(!partitions.is_empty(), "need at least one partition");
        assert!(
            partitions.len() <= 1 << 16,
            "partition count exceeds the remote-lane sender field"
        );
        assert_eq!(
            config.machine_of.len(),
            partitions.len(),
            "machine_of must list every partition"
        );
        assert!(
            config.lookahead > SimDuration::ZERO,
            "lookahead must be positive"
        );
        PdesRunner { partitions, config }
    }

    /// Runs all partitions until every event with time ≤ `horizon` has been
    /// executed (or the model drains). Returns aggregate statistics, or a
    /// structured [`PdesError`] if the stall watchdog fired or a marshalled
    /// message failed to decode — in both cases the error carries the
    /// partial report for per-partition diagnostics.
    pub fn run_until(&mut self, horizon: SimTime) -> Result<PdesReport, PdesError> {
        let n = self.partitions.len();
        let shared: Shared<W::Event> = Shared {
            barrier: EpochBarrier::new(n),
            publish: (0..n)
                .map(|_| {
                    PhaseCell::new(Publish {
                        peek: None,
                        out_min: vec![None; n],
                    })
                })
                .collect(),
            plan: PhaseCell::new(EpochPlan {
                bounds: vec![SimTime::ZERO; n],
                terminate: false,
            }),
            outboxes: [
                (0..n * n).map(|_| PhaseCell::new(Vec::new())).collect(),
                (0..n * n).map(|_| PhaseCell::new(Vec::new())).collect(),
            ],
            per_partition: Mutex::new(
                (0..n)
                    .map(|partition| PartitionStats {
                        partition,
                        ..Default::default()
                    })
                    .collect(),
            ),
            epochs: AtomicU64::new(0),
            epochs_jumped: AtomicU64::new(0),
            events: AtomicU64::new(0),
            remote_msgs: AtomicU64::new(0),
            marshalled_msgs: AtomicU64::new(0),
            marshalled_bytes: AtomicU64::new(0),
            fault_dropped: AtomicU64::new(0),
            fault_duplicated: AtomicU64::new(0),
            fault_corrupted: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
            started: Instant::now(),
        };
        let config = &self.config;

        std::thread::scope(|scope| {
            for (id, part) in self.partitions.iter_mut().enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    partition_main(id, part, shared, config, horizon);
                });
            }
        });

        assert!(
            !shared.poisoned.load(Ordering::SeqCst),
            "a PDES partition thread panicked"
        );
        let report = PdesReport {
            epochs: shared.epochs.load(Ordering::Relaxed),
            epochs_jumped: shared.epochs_jumped.load(Ordering::Relaxed),
            events_executed: shared.events.load(Ordering::Relaxed),
            remote_messages: shared.remote_msgs.load(Ordering::Relaxed),
            marshalled_messages: shared.marshalled_msgs.load(Ordering::Relaxed),
            bytes_marshalled: shared.marshalled_bytes.load(Ordering::Relaxed),
            faults: FaultCounts {
                dropped: shared.fault_dropped.load(Ordering::Relaxed),
                duplicated: shared.fault_duplicated.load(Ordering::Relaxed),
                corrupted: shared.fault_corrupted.load(Ordering::Relaxed),
            },
            partitions: shared.per_partition.into_inner(),
        };
        publish_metrics(&report);
        match shared.failure.into_inner() {
            Some(Failure {
                partition,
                at,
                cause: FailureCause::Stalled { epochs },
            }) => Err(PdesError::Stalled {
                partition,
                at,
                epochs,
                report: Box::new(report),
            }),
            Some(Failure {
                partition,
                at,
                cause: FailureCause::Corrupt,
            }) => Err(PdesError::Corrupt {
                partition,
                at,
                report: Box::new(report),
            }),
            Some(Failure {
                partition,
                at,
                cause: FailureCause::Panicked { message },
            }) => Err(PdesError::Panicked {
                partition,
                at,
                message,
                report: Box::new(report),
            }),
            None => Ok(report),
        }
    }

    /// Consumes the runner, returning the partitions for inspection.
    pub fn into_partitions(self) -> Vec<PartitionSim<W>> {
        self.partitions
    }

    /// Immutable view of the partitions.
    pub fn partitions(&self) -> &[PartitionSim<W>] {
        &self.partitions
    }

    /// The epoch planning mode currently in effect.
    pub fn epoch_mode(&self) -> EpochMode {
        self.config.epoch_mode
    }

    /// Switches the epoch planning mode for subsequent `run_until` calls.
    ///
    /// Safe at any chunk boundary: cross-partition tie order is intrinsic
    /// (`(time, sender, send-seq)`), so results are bit-identical across
    /// epoch modes and the degradation ladder may drop from adaptive to
    /// fixed planning mid-run without perturbing the simulation.
    pub fn set_epoch_mode(&mut self, mode: EpochMode) {
        self.config.epoch_mode = mode;
    }
}

impl<W: PartitionWorld + Clone> PdesRunner<W>
where
    W::Event: Clone,
{
    /// Snapshots every partition (world, FEL, and cross-chunk fault/seq
    /// progress) at a quiescent chunk boundary. Call only between
    /// `run_until` chunks — the exchange is drained there, so the
    /// partitions' private state is the complete run state.
    pub fn checkpoint(&self) -> crate::checkpoint::PdesCheckpoint<W> {
        crate::checkpoint::PdesCheckpoint::capture(&self.partitions)
    }

    /// Rewinds the runner to a previously captured checkpoint. The next
    /// `run_until` resumes bit-identically to the run that was snapshotted.
    ///
    /// # Panics
    /// Panics if the checkpoint's partition count differs from the runner's.
    pub fn restore(&mut self, checkpoint: &crate::checkpoint::PdesCheckpoint<W>) {
        self.partitions = checkpoint.restore_partitions(self.partitions.len());
    }
}

/// Mirrors a finished run's statistics into the global metrics registry
/// (no-op while observability is disabled).
fn publish_metrics(report: &PdesReport) {
    if !elephant_obs::enabled() {
        return;
    }
    elephant_obs::counter("pdes/epoch/planned", "").add(report.epochs);
    elephant_obs::counter("pdes/epoch/jumped", "").add(report.epochs_jumped);
    elephant_obs::counter("pdes/remote/messages", "").add(report.remote_messages);
    elephant_obs::counter("pdes/marshal/messages", "").add(report.marshalled_messages);
    elephant_obs::counter("pdes/marshal/bytes", "").add(report.bytes_marshalled);
    if report.faults.total() > 0 {
        elephant_obs::counter("pdes/fault/dropped", "").add(report.faults.dropped);
        elephant_obs::counter("pdes/fault/duplicated", "").add(report.faults.duplicated);
        elephant_obs::counter("pdes/fault/corrupted", "").add(report.faults.corrupted);
    }
    for p in &report.partitions {
        let label = p.partition.to_string();
        elephant_obs::counter("pdes/partition/events", label.clone()).add(p.events);
        elephant_obs::counter("pdes/partition/remote_messages", label.clone())
            .add(p.remote_events_sent);
        elephant_obs::counter("pdes/partition/remote_bytes", label.clone())
            .add(p.remote_bytes_sent);
        elephant_obs::gauge("pdes/partition/fel_bytes_peak", label)
            .record_max(p.fel_bytes_peak as i64);
        // Barrier wait is no longer mirrored as an end-of-run counter: the
        // timeline records it per epoch (see `PartitionTimeline`), and the
        // aggregate lives in `PartitionStats::barrier_wait_seconds`.
    }
}

/// Per-partition timeline buffer: one wall-clock track per partition with
/// per-epoch `work` / `barrier_wait` / `marshal` slices. Records accumulate
/// locally (no lock traffic inside the epoch loop) and flush to the global
/// timeline in one batch when the partition thread exits. Constructed only
/// while the timeline is enabled; every call site is a cheap `Option` probe
/// otherwise.
struct PartitionTimeline {
    buf: Vec<TraceRecord>,
    origin: Instant,
    tid: u64,
    /// Records discarded past [`PARTITION_RECORD_CAP`]; surfaced at flush
    /// time as the `pdes/timeline/dropped_records` counter plus a log line,
    /// so a truncated trace is never mistaken for a complete one.
    dropped: u64,
}

/// Per-thread record bound so a long run cannot balloon memory; the global
/// timeline applies its own cap on top.
const PARTITION_RECORD_CAP: usize = 100_000;

impl PartitionTimeline {
    fn new(origin: Instant, id: PartitionId) -> Option<Self> {
        elephant_obs::timeline_enabled().then(|| PartitionTimeline {
            buf: Vec::new(),
            origin,
            tid: id as u64,
            dropped: 0,
        })
    }

    fn push(&mut self, record: TraceRecord) {
        if self.buf.len() < PARTITION_RECORD_CAP {
            self.buf.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// A slice on this partition's track from `from` to now.
    fn slice(&mut self, name: &'static str, from: Instant, epoch: u64) {
        let ts = from.duration_since(self.origin).as_secs_f64() * 1e6;
        let dur = from.elapsed().as_secs_f64() * 1e6;
        self.push(TraceRecord::complete(PID_PDES, self.tid, name, ts, dur).arg("epoch", epoch));
    }

    fn flush(self, stats: &PartitionStats) {
        let tl = elephant_obs::timeline();
        tl.name_process(PID_PDES, "pdes partitions (wall clock)");
        tl.name_track(
            PID_PDES,
            self.tid,
            format!("partition {} ({} events)", stats.partition, stats.events),
        );
        tl.record_batch(self.buf);
        if self.dropped > 0 {
            elephant_obs::counter("pdes/timeline/dropped_records", stats.partition.to_string())
                .add(self.dropped);
            eprintln!(
                "pdes: partition {} timeline truncated — {} records dropped past \
                 the {PARTITION_RECORD_CAP}-record cap",
                stats.partition, self.dropped
            );
        }
    }
}

/// Times one barrier crossing into the stats row and (if tracing) a
/// timeline slice.
fn timed_barrier(
    barrier: &EpochBarrier,
    stats: &mut PartitionStats,
    tl: Option<&mut PartitionTimeline>,
    epoch: u64,
) {
    let _s = elephant_obs::span("barrier_wait");
    let t0 = Instant::now();
    barrier.wait();
    stats.barrier_wait_seconds += t0.elapsed().as_secs_f64();
    if let Some(tl) = tl {
        tl.slice("barrier_wait", t0, epoch);
    }
}

/// Drains buffer `buf` of every sender's outbox addressed to `id` into the
/// local future event list, via the scheduler's remote lane so ties resolve
/// by `(time, sender, send-seq)`.
fn drain_inbox<E>(
    shared: &Shared<E>,
    buf: usize,
    id: PartitionId,
    n: usize,
    sched: &mut Scheduler<E>,
) {
    for sender in 0..n {
        // SAFETY: receivers have exclusive access to their own column of the
        // buffer being drained this phase; senders write the other buffer.
        let cell = unsafe { shared.outboxes[buf][sender * n + id].get_mut() };
        for (at, send_seq, ev) in cell.drain(..) {
            sched.schedule_remote(at, sender, send_seq, ev);
        }
    }
}

/// Body of each partition thread: the two-barrier epoch loop described in
/// the module docs. All threads execute this in lockstep:
///
/// ```text
/// publish initial frontier
/// BARRIER                        // frontier visible to the planner
/// loop {
///     thread 0 writes the plan
///     BARRIER                    // plan visible to everyone
///     terminate? drain in-flight mail, exit
///     work:    drain inbox (buffer cur), execute events < bounds[id]
///     post:    outbound mail into buffer 1-cur (marshal across machines)
///     publish: frontier snapshot (local peek + per-dst posted minima)
///     cur = 1 - cur
///     BARRIER                    // mail + frontier visible; buffers swap
/// }
/// ```
fn partition_main<W: PartitionWorld>(
    id: PartitionId,
    part: &mut PartitionSim<W>,
    shared: &Shared<W::Event>,
    config: &PdesConfig,
    horizon: SimTime,
) {
    // Poison-on-panic guard so that one panicking thread does not leave the
    // others parked on a barrier forever in tests: we mark poisoned and the
    // panic unwinds through `scope`, which propagates it after joining.
    struct Guard<'a>(&'a AtomicBool);
    impl Drop for Guard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::SeqCst);
            }
        }
    }
    let _guard = Guard(&shared.poisoned);

    let n = config.machine_of.len();
    let my_machine = config.machine_of[id];
    let mut remote = RemoteSink::new(id, config.lookahead);
    let mut send_seq = part.send_seq;
    let mut stats = PartitionStats {
        partition: id,
        ..Default::default()
    };
    let _pdes_span = elephant_obs::span("pdes");
    let mut tl = PartitionTimeline::new(shared.started, id);

    // Fault-injection state: deterministic per-partition RNG stream plus
    // the two partition-level faults, resolved once up front. The stream
    // position and the epoch counter resume from the partition's persisted
    // progress so chunked and checkpoint-restored runs roll the identical
    // fault sequence an uninterrupted run would.
    let mut fault_rng: Option<FaultRng> = part
        .fault_rng_state
        .map(FaultRng::from_state)
        .or_else(|| config.faults.as_ref().map(|f| f.rng_for(id)));
    let slow_here: Option<std::time::Duration> = config
        .faults
        .as_ref()
        .and_then(|f| f.slow_partition)
        .filter(|&(p, _)| p == id)
        .map(|(_, d)| d);
    let stall_after: Option<u64> = config
        .faults
        .as_ref()
        .and_then(|f| f.stall_partition)
        .filter(|&(p, _)| p == id)
        .map(|(_, k)| k);
    let mut my_epochs: u64 = part.epochs_run;

    // Planner state, used by thread 0 only.
    //
    // Watchdog: stagnation counts only when the frozen global minimum was
    // already covered by the previous epoch (`watch_cover`) — an adaptive
    // epoch always covers it by at least `L`, so this matches the historic
    // "must strictly advance" rule there, while fixed-mode epochs still
    // grinding toward a distant event are exempt.
    let mut watch_last: Option<SimTime> = None;
    let mut watch_stagnant: u64 = 0;
    let mut watch_cover: Option<SimTime> = None;
    // Fixed-mode frontier: next epoch ends here, advancing by exactly L.
    let mut fixed_next: Option<SimTime> = None;
    // Scratch: earliest executable time per partition (local peek or mail
    // in flight), rebuilt from the publish cells each planning phase.
    let mut next_exec: Vec<Option<SimTime>> = vec![None; if id == 0 { n } else { 0 }];

    // Per-epoch minimum posted delivery time per destination, reused.
    let mut out_mins: Vec<Option<SimTime>> = vec![None; n];

    // Exchange buffer the receivers drain this epoch; senders post into
    // `1 - cur`. Flipped at the epoch-end barrier.
    let mut cur = 0usize;

    // Publish the initial frontier so the planner can shape the first epoch.
    {
        // SAFETY: before the first barrier each partition touches only its
        // own publish cell; the barrier then hands them to the planner.
        let mine = unsafe { shared.publish[id].get_mut() };
        mine.peek = part.sched.peek_time();
        mine.out_min.iter_mut().for_each(|m| *m = None);
    }
    timed_barrier(&shared.barrier, &mut stats, tl.as_mut(), my_epochs);

    loop {
        let _epoch_span = elephant_obs::span("epoch");

        // Planning phase: thread 0 reads every partition's published
        // frontier and writes the epoch plan.
        if id == 0 {
            // SAFETY: between the epoch-end barrier and the plan barrier,
            // thread 0 is the only reader of the publish cells and the only
            // writer of the plan cell.
            unsafe {
                for (q, slot) in next_exec.iter_mut().enumerate() {
                    let mut m = shared.publish[q].get_ref().peek;
                    for s in 0..n {
                        if let Some(t) = shared.publish[s].get_ref().out_min[q] {
                            m = Some(m.map_or(t, |x| x.min(t)));
                        }
                    }
                    *slot = m;
                }
            }
            let global_min = next_exec.iter().flatten().min().copied();

            // Stall watchdog: if the covered minimum sits still for
            // `stall_epochs` consecutive epochs, name the partition holding
            // it and abort.
            if let Some(start) = global_min.filter(|&s| s <= horizon) {
                if watch_last == Some(start) {
                    if start < watch_cover.unwrap_or(SimTime::ZERO) {
                        watch_stagnant += 1;
                        if config.stall_epochs > 0 && watch_stagnant >= config.stall_epochs {
                            let stuck = next_exec
                                .iter()
                                .position(|t| *t == Some(start))
                                .unwrap_or_default();
                            shared.record_failure(Failure {
                                partition: stuck,
                                at: start,
                                cause: FailureCause::Stalled {
                                    epochs: watch_stagnant,
                                },
                            });
                        }
                    }
                } else {
                    watch_last = Some(start);
                    watch_stagnant = 0;
                }
            }

            let abort = shared.abort.load(Ordering::SeqCst);
            // SAFETY: sole writer of the plan cell in this phase.
            let plan = unsafe { shared.plan.get_mut() };
            match global_min {
                Some(start) if start <= horizon && !abort => {
                    plan.terminate = false;
                    let l = config.lookahead;
                    match config.epoch_mode {
                        EpochMode::Adaptive => {
                            if watch_cover.is_some_and(|c| start > c) {
                                shared.epochs_jumped.fetch_add(1, Ordering::Relaxed);
                            }
                            for (r, b) in plan.bounds.iter_mut().enumerate() {
                                let mut bound = SimTime::MAX;
                                for (q, t) in next_exec.iter().enumerate() {
                                    let Some(t) = *t else { continue };
                                    if q != r {
                                        bound = bound.min(t.saturating_add(l));
                                    } else if n > 1 {
                                        // Self-influence needs >= 2 hops
                                        // (remote self-sends are rejected).
                                        bound = bound.min(t.saturating_add(l).saturating_add(l));
                                    }
                                }
                                *b = bound;
                            }
                            watch_cover = Some(start.saturating_add(l));
                        }
                        EpochMode::Fixed => {
                            let end = fixed_next.unwrap_or_else(|| start.saturating_add(l));
                            fixed_next = Some(end.saturating_add(l));
                            plan.bounds.iter_mut().for_each(|b| *b = end);
                            watch_cover = Some(end);
                        }
                    }
                    shared.epochs.fetch_add(1, Ordering::Relaxed);
                }
                _ => plan.terminate = true,
            }
        }
        timed_barrier(&shared.barrier, &mut stats, tl.as_mut(), my_epochs);

        // SAFETY: the plan was written strictly between the two barriers
        // above; every thread only reads it in this phase.
        let plan = unsafe { shared.plan.get_ref() };
        if plan.terminate {
            // Deliver in-flight mail into the local FEL before exiting so a
            // chunked caller's next `run_until` resumes from exact state.
            drain_inbox(shared, cur, id, n, &mut part.sched);
            break;
        }
        let bound = plan.bounds[id];
        my_epochs += 1;
        let stalled = stall_after.is_some_and(|k| my_epochs > k);

        // Work phase: deliver inbound mail, then execute events < bound.
        let mut executed = 0u64;
        {
            let _s = elephant_obs::span("work");
            let t0 = Instant::now();
            if let Some(dur) = slow_here {
                // Injected slowdown: wall-clock only; the partition still
                // advances simulated time, so the watchdog must stay quiet.
                std::thread::sleep(dur);
            }
            drain_inbox(shared, cur, id, n, &mut part.sched);
            while let Some(t) = part.sched.peek_time() {
                if stalled || t >= bound || t > horizon {
                    break;
                }
                let (t, ev) = part.sched.pop().expect("peeked event vanished");
                remote.now = t;
                // Catch model panics at the handler boundary: record a
                // structured failure and keep following the barrier protocol
                // so every peer exits cleanly through the planner's
                // terminating plan. The world may hold broken invariants
                // after an unwind (hence AssertUnwindSafe) — callers must
                // discard or checkpoint-restore it, never resume it.
                let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    part.world.handle(ev, &mut part.sched, &mut remote);
                }));
                if let Err(payload) = unwound {
                    shared.record_failure(Failure {
                        partition: id,
                        at: t,
                        cause: FailureCause::Panicked {
                            message: panic_message(payload.as_ref()),
                        },
                    });
                    break;
                }
                executed += 1;
            }
            stats.work_seconds += t0.elapsed().as_secs_f64();
            if let Some(tl) = tl.as_mut() {
                let ts = t0.duration_since(tl.origin).as_secs_f64() * 1e6;
                let dur = t0.elapsed().as_secs_f64() * 1e6;
                tl.push(
                    TraceRecord::complete(PID_PDES, tl.tid, "work", ts, dur)
                        .arg("epoch", my_epochs)
                        .arg("events", executed)
                        .arg("bound_sim_us", bound.as_nanos() as f64 / 1e3),
                );
            }
        }
        stats.events += executed;
        if executed > 0 {
            shared.events.fetch_add(executed, Ordering::Relaxed);
        }
        // Sample the FEL's resident bytes once per epoch: a read-only probe
        // of container capacities, so it cannot perturb the simulation.
        stats.fel_bytes_peak = stats.fel_bytes_peak.max(part.sched.fel_bytes() as u64);

        // Post phase: outbound remote events into the next buffer,
        // marshalling across machines. No locks: each (sender, dst) cell is
        // exclusively ours this epoch.
        out_mins.iter_mut().for_each(|m| *m = None);
        if !remote.out.is_empty() {
            let mut marshalled = 0u64;
            let mut bytes_total = 0u64;
            let count = remote.out.len() as u64;
            let nxt = 1 - cur;
            let _s = elephant_obs::span("marshal");
            let t0 = Instant::now();
            for (dst, at, ev) in remote.out.drain(..) {
                assert!(dst < n, "remote event to unknown partition {dst}");
                if config.machine_of[dst] == my_machine {
                    // SAFETY: sender-exclusive cell of the buffer receivers
                    // will drain next epoch.
                    let cell = unsafe { shared.outboxes[nxt][id * n + dst].get_mut() };
                    cell.push((at, send_seq, ev));
                    send_seq += 1;
                    let slot = &mut out_mins[dst];
                    *slot = Some(slot.map_or(at, |m| m.min(at)));
                    continue;
                }

                // Cross-machine: roll the message-level faults (sender-side,
                // in execution order, so the sequence is deterministic and
                // plan-independent), then push the event through the
                // marshalled transport.
                let faults = config.faults.as_ref();
                let mut copies = 1usize;
                let mut corrupt = false;
                if let (Some(f), Some(rng)) = (faults, fault_rng.as_mut()) {
                    if rng.roll(f.drop_prob) {
                        shared.fault_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if rng.roll(f.dup_prob) {
                        copies = 2;
                        shared.fault_duplicated.fetch_add(1, Ordering::Relaxed);
                    }
                    if rng.roll(f.corrupt_prob) {
                        corrupt = true;
                        shared.fault_corrupted.fetch_add(1, Ordering::Relaxed);
                    }
                }

                let (evs, nbytes) = marshal_round_trip(ev, config.envelope_bytes, copies, corrupt);
                marshalled += copies as u64;
                bytes_total += nbytes;
                if evs.len() < copies {
                    // The far side could not decode the message: surface a
                    // structured transport error instead of panicking, and
                    // let the planner terminate every partition cleanly.
                    shared.record_failure(Failure {
                        partition: id,
                        at,
                        cause: FailureCause::Corrupt,
                    });
                }
                // SAFETY: as above — sender-exclusive cell.
                let cell = unsafe { shared.outboxes[nxt][id * n + dst].get_mut() };
                for ev in evs {
                    cell.push((at, send_seq, ev));
                    send_seq += 1;
                    let slot = &mut out_mins[dst];
                    *slot = Some(slot.map_or(at, |m| m.min(at)));
                }
            }
            stats.marshal_seconds += t0.elapsed().as_secs_f64();
            if let Some(tl) = tl.as_mut() {
                tl.slice("marshal", t0, my_epochs);
            }
            stats.remote_events_sent += count;
            stats.remote_bytes_sent += bytes_total;
            shared.remote_msgs.fetch_add(count, Ordering::Relaxed);
            if marshalled > 0 {
                shared
                    .marshalled_msgs
                    .fetch_add(marshalled, Ordering::Relaxed);
                shared
                    .marshalled_bytes
                    .fetch_add(bytes_total, Ordering::Relaxed);
            }
        }

        // Publish phase: snapshot the frontier for the next plan.
        {
            // SAFETY: each partition writes only its own publish cell
            // between its work phase and the epoch-end barrier below.
            let mine = unsafe { shared.publish[id].get_mut() };
            mine.peek = part.sched.peek_time();
            mine.out_min.copy_from_slice(&out_mins);
        }
        cur = 1 - cur;

        // Epoch-end barrier: mail is posted and frontiers are published
        // before the planner looks, and the exchange buffers swap.
        timed_barrier(&shared.barrier, &mut stats, tl.as_mut(), my_epochs);
    }

    part.send_seq = send_seq;
    part.fault_rng_state = fault_rng.as_ref().map(FaultRng::state);
    part.epochs_run = my_epochs;
    stats.next_time = part.sched.peek_time();
    if let Some(tl) = tl.take() {
        tl.flush(&stats);
    }
    shared.per_partition.lock()[id] = stats;
}

/// Renders a caught panic payload for [`PdesError::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pushes an event through the simulated machine boundary: encode, wrap in
/// an envelope, checksum (so the optimizer cannot elide the copies), decode.
///
/// `copies` decodes the wire bytes that many times (fault-injected
/// duplication); `corrupt` mangles the payload first (truncate the final
/// byte and flip a bit), modeling a torn write. Returns the reconstructed
/// events — possibly fewer than `copies` if a decode failed, which the
/// caller reports as [`PdesError::Corrupt`] — and the bytes moved.
fn marshal_round_trip<E: Transportable>(
    ev: E,
    envelope_bytes: usize,
    copies: usize,
    corrupt: bool,
) -> (Vec<E>, u64) {
    let mut buf = BytesMut::with_capacity(64 + envelope_bytes);
    buf.put_bytes(0xA5, envelope_bytes); // MPI-style envelope / copy cost
    ev.encode(&mut buf);
    if corrupt {
        if buf.len() > envelope_bytes {
            buf[envelope_bytes] ^= 0x40; // flip a bit in the first payload byte
        }
        // Tear off the last byte. `saturating_sub` so a zero-byte encoding
        // with no envelope cannot underflow; when only the envelope is
        // present the tear hits it and the decode below rejects the frame.
        buf.truncate(buf.len().saturating_sub(1));
    }
    let frozen = buf.freeze();
    // Touch every byte, as a real transport would while copying to a socket.
    let checksum: u64 = frozen
        .iter()
        .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64));
    std::hint::black_box(checksum);
    let nbytes = frozen.len() as u64 * copies as u64;
    let mut out = Vec::with_capacity(copies);
    for _ in 0..copies {
        let mut rd = frozen.clone();
        if rd.len() < envelope_bytes {
            break; // torn inside the envelope: undecodable, report corrupt
        }
        rd.advance(envelope_bytes);
        match E::decode(&mut rd) {
            Some(ev) => out.push(ev),
            None => break, // same bytes => every later copy fails identically
        }
    }
    (out, nbytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that flip process-global observability state
    /// (the timeline enable flag and the metrics registry).
    static OBS_TESTS: StdMutex<()> = StdMutex::new(());

    /// A token that hops between partitions `hops` times, incrementing a
    /// counter on each arrival. Cross-partition delay = LOOKAHEAD.
    const LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

    #[derive(Clone, Debug, PartialEq)]
    struct Token {
        hops_left: u32,
        value: u64,
    }

    impl Transportable for Token {
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u32(self.hops_left);
            buf.put_u64(self.value);
        }
        fn decode(buf: &mut Bytes) -> Option<Self> {
            if buf.remaining() < 12 {
                return None;
            }
            Some(Token {
                hops_left: buf.get_u32(),
                value: buf.get_u64(),
            })
        }
    }

    /// An event whose wire encoding is zero bytes — the degenerate case the
    /// corrupt path must survive.
    #[derive(Clone, Debug, PartialEq)]
    struct Empty;

    impl Transportable for Empty {
        fn encode(&self, _buf: &mut BytesMut) {}
        fn decode(_buf: &mut Bytes) -> Option<Self> {
            Some(Empty)
        }
    }

    /// Regression: corrupting a message whose buffer holds no payload bytes
    /// used to be able to underflow the tear (`truncate(len - 1)`); with no
    /// envelope either, the buffer is completely empty. Both degenerate
    /// shapes must come back as a clean decode failure (or a harmless
    /// no-op), never a panic.
    #[test]
    fn marshal_corrupt_survives_empty_payload() {
        // No payload, no envelope: nothing to tear, nothing to decode —
        // the zero-byte frame still "decodes" as the unit event.
        let (evs, nbytes) = marshal_round_trip(Empty, 0, 1, true);
        assert_eq!(nbytes, 0);
        assert_eq!(evs, vec![Empty]);

        // No payload but an envelope: the tear lands inside the envelope,
        // so the frame is undecodable and surfaces as a corrupt transport
        // failure — not an `advance` past the end of the buffer.
        let (evs, nbytes) = marshal_round_trip(Empty, 8, 2, true);
        assert_eq!(nbytes, 14); // 7 surviving bytes x 2 copies
        assert!(evs.is_empty(), "torn envelope must fail the decode");
    }

    /// The corrupt path's behavior on real payloads is unchanged: flip a
    /// bit, tear the final byte, and the decode rejects the frame.
    #[test]
    fn marshal_corrupt_nonempty_payload_fails_decode() {
        let tok = Token {
            hops_left: 3,
            value: 42,
        };
        let (evs, _) = marshal_round_trip(tok.clone(), 16, 2, true);
        assert!(evs.is_empty(), "torn payload must fail the decode");
        // And without corruption every copy round-trips intact.
        let (evs, nbytes) = marshal_round_trip(tok.clone(), 16, 2, false);
        assert_eq!(evs, vec![tok.clone(), tok]);
        assert_eq!(nbytes, (16 + 12) * 2);
    }

    #[derive(Clone)]
    struct Ring {
        id: PartitionId,
        n: usize,
        arrivals: u64,
        last_value: u64,
    }

    impl PartitionWorld for Ring {
        type Event = Token;
        fn handle(
            &mut self,
            ev: Token,
            sched: &mut Scheduler<Token>,
            remote: &mut RemoteSink<Token>,
        ) {
            self.arrivals += 1;
            self.last_value = ev.value;
            if ev.hops_left == 0 {
                return;
            }
            let next = Token {
                hops_left: ev.hops_left - 1,
                value: ev.value + 1,
            };
            let at = sched.now() + LOOKAHEAD;
            let dst = (self.id + 1) % self.n;
            if dst == self.id {
                sched.schedule_at(at, next);
            } else {
                remote.send(dst, at, next);
            }
        }
    }

    fn ring_run_mode(
        n: usize,
        hops: u32,
        machines: usize,
        envelope: usize,
        mode: EpochMode,
    ) -> (Vec<Ring>, PdesReport) {
        let mut parts: Vec<PartitionSim<Ring>> = (0..n)
            .map(|id| {
                PartitionSim::new(Ring {
                    id,
                    n,
                    arrivals: 0,
                    last_value: 0,
                })
            })
            .collect();
        parts[0].scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: hops,
                value: 0,
            },
        );
        let config =
            PdesConfig::round_robin(n, machines, LOOKAHEAD, envelope).with_epoch_mode(mode);
        let mut runner = PdesRunner::new(parts, config);
        let report = runner
            .run_until(SimTime::from_secs(10))
            .expect("healthy run");
        let worlds = runner
            .into_partitions()
            .into_iter()
            .map(|p| {
                let PartitionSim { world, .. } = p;
                world
            })
            .collect();
        (worlds, report)
    }

    fn ring_run(n: usize, hops: u32, machines: usize, envelope: usize) -> (Vec<Ring>, PdesReport) {
        ring_run_mode(n, hops, machines, envelope, EpochMode::Adaptive)
    }

    #[test]
    fn token_ring_single_machine() {
        let (worlds, report) = ring_run(4, 99, 1, 0);
        let total: u64 = worlds.iter().map(|w| w.arrivals).sum();
        assert_eq!(total, 100); // initial arrival + 99 hops
        assert_eq!(report.events_executed, 100);
        assert_eq!(report.remote_messages, 99);
        assert_eq!(
            report.marshalled_messages, 0,
            "same machine, no marshalling"
        );
        // The token's value counts hops; last arrival carries 99.
        let max_value = worlds.iter().map(|w| w.last_value).max().unwrap();
        assert_eq!(max_value, 99);
    }

    #[test]
    fn token_ring_cross_machine_marshals() {
        let (worlds, report) = ring_run(4, 99, 2, 32);
        let total: u64 = worlds.iter().map(|w| w.arrivals).sum();
        assert_eq!(total, 100);
        // Round-robin over 2 machines: every hop crosses machines
        // (0->1, 1->2, 2->3, 3->0 all change parity).
        assert_eq!(report.marshalled_messages, 99);
        assert_eq!(report.bytes_marshalled, 99 * (32 + 12));
    }

    #[test]
    fn pdes_matches_sequential_semantics() {
        // The same ring run sequentially: arrivals land at times 0, L, 2L, …
        // PDES must deliver identical per-partition arrival counts.
        let (worlds, _) = ring_run(3, 10, 1, 0);
        // Partition 0 sees arrivals at hop 0, 3, 6, 9 => 4 arrivals.
        assert_eq!(worlds[0].arrivals, 4);
        assert_eq!(worlds[1].arrivals, 4); // hops 1, 4, 7, 10
        assert_eq!(worlds[2].arrivals, 3); // hops 2, 5, 8
    }

    #[test]
    fn fixed_mode_matches_adaptive_on_the_ring() {
        let (aw, ar) = ring_run_mode(4, 99, 2, 32, EpochMode::Adaptive);
        let (fw, fr) = ring_run_mode(4, 99, 2, 32, EpochMode::Fixed);
        for (a, f) in aw.iter().zip(&fw) {
            assert_eq!(a.arrivals, f.arrivals);
            assert_eq!(a.last_value, f.last_value);
        }
        assert_eq!(ar.events_executed, fr.events_executed);
        assert_eq!(ar.remote_messages, fr.remote_messages);
        assert_eq!(ar.bytes_marshalled, fr.bytes_marshalled);
        assert_eq!(fr.epochs_jumped, 0, "fixed mode never jumps");
    }

    #[test]
    fn horizon_truncates() {
        // 99 hops of 1us each; horizon 10us lets hops 0..=10 land.
        let mut parts: Vec<PartitionSim<Ring>> = (0..2)
            .map(|id| {
                PartitionSim::new(Ring {
                    id,
                    n: 2,
                    arrivals: 0,
                    last_value: 0,
                })
            })
            .collect();
        parts[0].scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: 99,
                value: 0,
            },
        );
        let mut runner = PdesRunner::new(parts, PdesConfig::single_machine(2, LOOKAHEAD));
        let report = runner
            .run_until(SimTime::from_micros(10))
            .expect("healthy run");
        assert_eq!(report.events_executed, 11);
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let (worlds, report) = ring_run(1, 50, 1, 0);
        assert_eq!(worlds[0].arrivals, 51);
        assert_eq!(report.remote_messages, 0);
    }

    #[test]
    fn empty_model_terminates_immediately() {
        let parts: Vec<PartitionSim<Ring>> = (0..3)
            .map(|id| {
                PartitionSim::new(Ring {
                    id,
                    n: 3,
                    arrivals: 0,
                    last_value: 0,
                })
            })
            .collect();
        let mut runner = PdesRunner::new(parts, PdesConfig::single_machine(3, LOOKAHEAD));
        let report = runner
            .run_until(SimTime::from_secs(1))
            .expect("healthy run");
        assert_eq!(report.events_executed, 0);
        assert_eq!(report.epochs, 0);
    }

    #[test]
    fn merge_sums_chunked_reports() {
        let (_, a) = ring_run(4, 49, 2, 32);
        let (_, b) = ring_run(4, 49, 2, 32);
        let mut merged = PdesReport::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(
            merged.events_executed,
            a.events_executed + b.events_executed
        );
        assert_eq!(merged.epochs, a.epochs + b.epochs);
        assert_eq!(
            merged.bytes_marshalled,
            a.bytes_marshalled + b.bytes_marshalled
        );
        assert_eq!(merged.partitions.len(), 4);
        assert_eq!(
            merged.partitions[1].events,
            a.partitions[1].events + b.partitions[1].events
        );
    }

    #[test]
    #[should_panic(expected = "partition count mismatch")]
    fn merge_rejects_mismatched_partition_counts() {
        // Hard error in every build profile: zipping rows from runs with
        // different partition counts would silently truncate statistics.
        let (_, a) = ring_run(4, 9, 1, 0);
        let (_, b) = ring_run(2, 9, 1, 0);
        let mut merged = a.clone();
        merged.merge(&b);
    }

    #[test]
    fn timeline_gets_per_epoch_partition_slices() {
        // Process-global timeline: serialize against the other obs-flipping
        // test; restore and clear on the way out.
        let _obs = OBS_TESTS.lock().unwrap();
        elephant_obs::timeline().reset();
        elephant_obs::set_timeline_enabled(true);
        let (_, report) = ring_run(4, 99, 2, 32);
        elephant_obs::set_timeline_enabled(false);
        let json = elephant_obs::TimelineWriter::from_timeline(elephant_obs::timeline()).to_json();
        elephant_obs::timeline().reset();
        assert!(report.epochs > 0);
        for needle in ["barrier_wait", "\"work\"", "marshal", "partition 3"] {
            assert!(json.contains(needle), "trace JSON missing {needle}");
        }
    }

    #[test]
    fn timeline_cap_surfaces_dropped_records() {
        let _obs = OBS_TESTS.lock().unwrap();
        elephant_obs::set_enabled(true);
        elephant_obs::set_timeline_enabled(true);
        let mut tl = PartitionTimeline::new(Instant::now(), 7).expect("timeline enabled");
        for i in 0..(PARTITION_RECORD_CAP + 13) {
            tl.push(TraceRecord::complete(PID_PDES, 7, "work", i as f64, 1.0));
        }
        assert_eq!(tl.dropped, 13);
        let stats = PartitionStats {
            partition: 7,
            ..Default::default()
        };
        tl.flush(&stats);
        elephant_obs::set_timeline_enabled(false);
        elephant_obs::timeline().reset();
        let dropped = elephant_obs::counter("pdes/timeline/dropped_records", "7").get();
        elephant_obs::set_enabled(false);
        assert_eq!(dropped, 13);
    }

    #[test]
    fn idle_gaps_are_skipped_in_one_epoch() {
        // Two events 1 second apart with 1us lookahead: the next-event jump
        // must not grind through a million empty epochs.
        struct Sparse;
        impl PartitionWorld for Sparse {
            type Event = Token;
            fn handle(&mut self, _: Token, _: &mut Scheduler<Token>, _: &mut RemoteSink<Token>) {}
        }
        let mut part = PartitionSim::new(Sparse);
        part.scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: 0,
                value: 0,
            },
        );
        part.scheduler_mut().schedule_at(
            SimTime::from_secs(1),
            Token {
                hops_left: 0,
                value: 0,
            },
        );
        let mut runner = PdesRunner::new(vec![part], PdesConfig::single_machine(1, LOOKAHEAD));
        let report = runner
            .run_until(SimTime::from_secs(2))
            .expect("healthy run");
        assert_eq!(report.events_executed, 2);
        assert!(
            report.epochs <= 3,
            "expected a jump, got {} epochs",
            report.epochs
        );
    }

    /// Ignores every event; used to compare epoch accounting across modes.
    struct Inert;
    impl PartitionWorld for Inert {
        type Event = Token;
        fn handle(&mut self, _: Token, _: &mut Scheduler<Token>, _: &mut RemoteSink<Token>) {}
    }

    #[test]
    fn adaptive_jumps_where_fixed_grinds() {
        // Two events 300us apart on partition 0 (partition 1 idle, so this
        // exercises the multi-partition bounds, not the n=1 shortcut).
        let run = |mode: EpochMode| {
            let mut parts = vec![PartitionSim::new(Inert), PartitionSim::new(Inert)];
            for at in [SimTime::ZERO, SimTime::from_micros(300)] {
                parts[0].scheduler_mut().schedule_at(
                    at,
                    Token {
                        hops_left: 0,
                        value: 0,
                    },
                );
            }
            let config = PdesConfig::single_machine(2, LOOKAHEAD).with_epoch_mode(mode);
            PdesRunner::new(parts, config)
                .run_until(SimTime::from_millis(1))
                .expect("healthy run")
        };
        let adaptive = run(EpochMode::Adaptive);
        let fixed = run(EpochMode::Fixed);
        assert_eq!(adaptive.events_executed, 2);
        assert_eq!(fixed.events_executed, 2);
        assert!(
            adaptive.epochs <= 3,
            "adaptive should jump the gap, got {} epochs",
            adaptive.epochs
        );
        assert!(adaptive.epochs_jumped >= 1);
        assert!(
            fixed.epochs > 250,
            "fixed mode should grind the 300us gap in 1us steps, got {} epochs",
            fixed.epochs
        );
        assert_eq!(fixed.epochs_jumped, 0);
    }

    /// Partitions 1 and 2 tick locally every `L` and fire a message at the
    /// collector (partition 0) each round; both messages arrive at the same
    /// instant, manufacturing a cross-sender tie every round.
    struct TiePartition {
        id: PartitionId,
        rounds: u64,
        received: Vec<(u32, u64)>,
    }

    impl PartitionWorld for TiePartition {
        type Event = Token;
        fn handle(
            &mut self,
            ev: Token,
            sched: &mut Scheduler<Token>,
            remote: &mut RemoteSink<Token>,
        ) {
            if self.id == 0 {
                self.received.push((ev.hops_left, ev.value));
                return;
            }
            remote.send(
                0,
                sched.now() + LOOKAHEAD,
                Token {
                    hops_left: self.id as u32,
                    value: ev.value,
                },
            );
            if ev.value + 1 < self.rounds {
                sched.schedule_at(
                    sched.now() + LOOKAHEAD,
                    Token {
                        hops_left: 0,
                        value: ev.value + 1,
                    },
                );
            }
        }
    }

    fn tie_run(mode: EpochMode) -> Vec<(u32, u64)> {
        const ROUNDS: u64 = 40;
        let mut parts: Vec<PartitionSim<TiePartition>> = (0..3)
            .map(|id| {
                PartitionSim::new(TiePartition {
                    id,
                    rounds: ROUNDS,
                    received: Vec::new(),
                })
            })
            .collect();
        for sender in [1, 2] {
            parts[sender].scheduler_mut().schedule_at(
                SimTime::ZERO,
                Token {
                    hops_left: 0,
                    value: 0,
                },
            );
        }
        // Two machines so some ties also cross the marshalling path.
        let config = PdesConfig::round_robin(3, 2, LOOKAHEAD, 16).with_epoch_mode(mode);
        let mut runner = PdesRunner::new(parts, config);
        runner
            .run_until(SimTime::from_secs(1))
            .expect("healthy run");
        runner.into_partitions().remove(0).into_world().received
    }

    #[test]
    fn same_time_cross_sends_deliver_in_sender_order() {
        // Regression for the old mailbox exchange, whose same-timestamp
        // delivery order was lock-acquisition order: ties must resolve by
        // (time, sender, send-seq), identically in both epoch modes and on
        // repeat runs.
        let adaptive = tie_run(EpochMode::Adaptive);
        assert_eq!(adaptive.len(), 80);
        let expected: Vec<(u32, u64)> = (0..40).flat_map(|r| [(1, r), (2, r)]).collect();
        assert_eq!(adaptive, expected, "ties must deliver in sender order");
        assert_eq!(adaptive, tie_run(EpochMode::Adaptive), "repeat run differs");
        assert_eq!(adaptive, tie_run(EpochMode::Fixed), "fixed mode differs");
    }

    /// Ring runner prepared for chunked runs: token seeded on partition 0.
    fn ring_runner(n: usize, hops: u32, machines: usize, envelope: usize) -> PdesRunner<Ring> {
        let mut parts: Vec<PartitionSim<Ring>> = (0..n)
            .map(|id| {
                PartitionSim::new(Ring {
                    id,
                    n,
                    arrivals: 0,
                    last_value: 0,
                })
            })
            .collect();
        parts[0].scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: hops,
                value: 0,
            },
        );
        let config = PdesConfig::round_robin(n, machines, LOOKAHEAD, envelope);
        PdesRunner::new(parts, config)
    }

    fn ring_state(runner: &PdesRunner<Ring>) -> Vec<(u64, u64)> {
        runner
            .partitions()
            .iter()
            .map(|p| (p.world().arrivals, p.world().last_value))
            .collect()
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let horizon = SimTime::from_secs(10);
        let mid = SimTime::from_micros(40);

        // Uninterrupted reference run.
        let mut clean = ring_runner(4, 99, 2, 32);
        clean.run_until(horizon).expect("healthy run");
        let reference = ring_state(&clean);

        // Chunked run: checkpoint at the chunk boundary, finish, then rewind
        // and finish again — both continuations must match the reference.
        let mut runner = ring_runner(4, 99, 2, 32);
        runner.run_until(mid).expect("first chunk");
        let ck = runner.checkpoint();
        assert_eq!(ck.partitions(), 4);
        assert!(ck.at() >= mid);
        runner.run_until(horizon).expect("first continuation");
        assert_eq!(ring_state(&runner), reference);

        runner.restore(&ck);
        runner.run_until(horizon).expect("resumed continuation");
        assert_eq!(ring_state(&runner), reference, "restore diverged");
    }

    #[test]
    fn checkpoint_restore_replays_identical_fault_sequence() {
        let horizon = SimTime::from_secs(10);
        let mid = SimTime::from_micros(40);
        let plan = FaultPlan {
            seed: 7,
            drop_prob: 0.10,
            dup_prob: 0.10,
            ..Default::default()
        };

        let run_chunks = |restore_at_mid: bool| {
            let mut parts: Vec<PartitionSim<Ring>> = (0..4)
                .map(|id| {
                    PartitionSim::new(Ring {
                        id,
                        n: 4,
                        arrivals: 0,
                        last_value: 0,
                    })
                })
                .collect();
            parts[0].scheduler_mut().schedule_at(
                SimTime::ZERO,
                Token {
                    hops_left: 99,
                    value: 0,
                },
            );
            let config = PdesConfig::round_robin(4, 2, LOOKAHEAD, 32).with_faults(plan.clone());
            let mut runner = PdesRunner::new(parts, config);
            let mut report = runner.run_until(mid).expect("first chunk");
            let ck = runner.checkpoint();
            if restore_at_mid {
                // Burn some state past the boundary, then rewind: the fault
                // RNG position must rewind with it.
                runner.run_until(horizon).expect("burned continuation");
                runner.restore(&ck);
            }
            report.merge(&runner.run_until(horizon).expect("continuation"));
            (ring_state(&runner), report.faults)
        };

        let (state_a, faults_a) = run_chunks(false);
        let (state_b, faults_b) = run_chunks(true);
        assert!(
            faults_a.total() > 0,
            "fault plan was inert; test is vacuous"
        );
        assert_eq!(state_a, state_b, "fault-RNG state not restored");
        assert_eq!(faults_a, faults_b, "fault sequence diverged after restore");
    }

    /// Panics when handling any token whose value reaches `boom_at`.
    #[derive(Clone)]
    struct Grenade {
        id: PartitionId,
        n: usize,
        boom_at: u64,
    }

    impl PartitionWorld for Grenade {
        type Event = Token;
        fn handle(
            &mut self,
            ev: Token,
            sched: &mut Scheduler<Token>,
            remote: &mut RemoteSink<Token>,
        ) {
            assert!(ev.value < self.boom_at, "scripted model panic");
            if ev.hops_left == 0 {
                return;
            }
            let next = Token {
                hops_left: ev.hops_left - 1,
                value: ev.value + 1,
            };
            let at = sched.now() + LOOKAHEAD;
            let dst = (self.id + 1) % self.n;
            if dst == self.id {
                sched.schedule_at(at, next);
            } else {
                remote.send(dst, at, next);
            }
        }
    }

    #[test]
    fn worker_panic_surfaces_as_single_structured_error() {
        // Token value 7 first arrives on partition 7 % 3 == 1.
        let parts: Vec<PartitionSim<Grenade>> = (0..3)
            .map(|id| {
                PartitionSim::new(Grenade {
                    id,
                    n: 3,
                    boom_at: 7,
                })
            })
            .collect();
        let mut runner = PdesRunner::new(parts, PdesConfig::single_machine(3, LOOKAHEAD));
        runner.partitions[0].scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: 99,
                value: 0,
            },
        );
        let err = runner
            .run_until(SimTime::from_secs(1))
            .expect_err("grenade must fire");
        match err {
            PdesError::Panicked {
                partition,
                at,
                ref message,
                ref report,
            } => {
                assert_eq!(partition, 1);
                assert_eq!(at, SimTime::from_micros(7));
                assert!(message.contains("scripted model panic"), "got {message:?}");
                assert_eq!(report.events_executed, 7, "events before the panic");
            }
            other => panic!("expected Panicked, got {other}"),
        }
        // The barrier is not poisoned: the runner can restart after restore.
        let parts: Vec<PartitionSim<Grenade>> = (0..3)
            .map(|id| {
                PartitionSim::new(Grenade {
                    id,
                    n: 3,
                    boom_at: u64::MAX,
                })
            })
            .collect();
        let mut runner = PdesRunner::new(parts, PdesConfig::single_machine(3, LOOKAHEAD));
        runner.partitions[0].scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: 9,
                value: 0,
            },
        );
        runner
            .run_until(SimTime::from_secs(1))
            .expect("healthy rerun");
    }

    #[test]
    #[should_panic(expected = "may not remote-send to itself")]
    fn remote_self_send_is_rejected() {
        let mut sink: RemoteSink<Token> = RemoteSink::new(3, LOOKAHEAD);
        sink.send(
            3,
            SimTime::from_micros(5),
            Token {
                hops_left: 0,
                value: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn lookahead_violation_is_rejected() {
        let mut sink: RemoteSink<Token> = RemoteSink::new(0, LOOKAHEAD);
        sink.now = SimTime::from_micros(10);
        // Delivery half a lookahead after `now`: inside the window other
        // partitions may already have executed past.
        sink.send(
            1,
            SimTime::from_nanos(10_500),
            Token {
                hops_left: 0,
                value: 0,
            },
        );
    }
}
