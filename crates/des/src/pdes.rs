//! Conservative parallel discrete-event simulation (PDES).
//!
//! This engine reproduces the *kind* of parallelism OMNeT++'s MPI-based
//! PDES offers, which the paper's Figure 1 evaluates: the model is split
//! into partitions (logical processes), each with its own future event list,
//! and partitions may only exchange events whose delivery delay is at least
//! the **lookahead** `L` — in a network model, the minimum latency of any
//! cross-partition link.
//!
//! Synchronization is barrier-synchronous ("synchronous conservative"):
//! simulated time advances in epochs of length `L`. Within an epoch every
//! partition processes its local events independently; at the epoch barrier,
//! cross-partition events are exchanged and the next epoch begins at the
//! earliest pending event anywhere (so idle stretches are skipped in one
//! jump). Correctness follows from the lookahead guarantee: an event sent
//! at local time `s ∈ [T, T+L)` arrives at `s + delay ≥ T + L`, i.e. never
//! inside the epoch that produced it.
//!
//! ## Emulating multi-machine deployments
//!
//! The paper runs PDES across 1–4 physical machines over MPI. We emulate a
//! machine boundary faithfully at the transport level: partitions are
//! assigned to machines, and every event crossing a machine boundary is
//! marshalled through a byte buffer ([`Transportable`]), prepended with a
//! configurable envelope (modeling MPI headers and kernel copies), checksummed
//! (forcing the copies to actually happen), and unmarshalled on the far
//! side. Same-machine exchanges move the event by pointer. This gives the
//! distinctive Figure-1 behaviour — more machines means more per-message
//! overhead — without requiring actual remote hosts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use elephant_obs::{TraceRecord, PID_PDES};
use parking_lot::Mutex;

use crate::fault::{FaultCounts, FaultPlan, FaultRng};
use crate::sched::Scheduler;
use crate::time::{SimDuration, SimTime};

/// Default watchdog bound: abort if the global minimum event time fails to
/// advance for this many consecutive epochs. A healthy conservative model
/// *strictly* advances every epoch (all events in `[start, start+L)` execute
/// and new remote events land at `>= start+L`), so any stagnation at all is
/// a stall; the slack only exists to keep diagnostics unambiguous.
pub const DEFAULT_STALL_EPOCHS: u64 = 64;

/// Identifies a partition (logical process) in a PDES run.
pub type PartitionId = usize;

/// Events that can cross a (simulated) machine boundary.
///
/// `encode`/`decode` must round-trip exactly; the engine asserts nothing
/// about the wire format beyond that.
pub trait Transportable: Sized {
    /// Serializes `self` onto `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Deserializes one value, consuming its bytes. Returns `None` on a
    /// malformed buffer (treated as a fatal model error by the engine).
    fn decode(buf: &mut Bytes) -> Option<Self>;
}

/// A partitioned simulation model.
///
/// Like [`crate::World`], but the handler may also emit events destined for
/// other partitions through the [`RemoteSink`].
pub trait PartitionWorld: Send {
    /// The event alphabet, shared by all partitions of the model.
    type Event: Transportable + Send;

    /// Handles one local event. Remote events must respect the lookahead:
    /// their delivery time must be at least the end of the current epoch
    /// (the sink enforces this with an assertion).
    fn handle(
        &mut self,
        event: Self::Event,
        sched: &mut Scheduler<Self::Event>,
        remote: &mut RemoteSink<Self::Event>,
    );
}

/// Collects events addressed to other partitions during an epoch.
pub struct RemoteSink<E> {
    epoch_end: SimTime,
    out: Vec<(PartitionId, SimTime, E)>,
}

impl<E> RemoteSink<E> {
    fn new() -> Self {
        RemoteSink {
            epoch_end: SimTime::ZERO,
            out: Vec::new(),
        }
    }

    /// Sends `event` to `partition`, to be delivered at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` violates the lookahead guarantee (falls inside the
    /// current epoch); that is a causality bug in the model, not a
    /// recoverable condition.
    pub fn send(&mut self, partition: PartitionId, at: SimTime, event: E) {
        assert!(
            at >= self.epoch_end,
            "lookahead violation: remote event at {at} inside epoch ending {}",
            self.epoch_end
        );
        self.out.push((partition, at, event));
    }
}

/// One partition: its world plus its private future event list.
pub struct PartitionSim<W: PartitionWorld> {
    world: W,
    sched: Scheduler<W::Event>,
}

impl<W: PartitionWorld> PartitionSim<W> {
    /// Wraps a world with an empty scheduler.
    pub fn new(world: W) -> Self {
        PartitionSim {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Access the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the partition, returning its world (post-run statistics).
    pub fn into_world(self) -> W {
        self.world
    }
}

/// Static configuration of a PDES run.
#[derive(Clone, Debug)]
pub struct PdesConfig {
    /// The lookahead `L`: minimum cross-partition delivery delay. Must be
    /// positive; the model must never send a remote event sooner than `L`
    /// after the moment it is sent.
    pub lookahead: SimDuration,
    /// Machine assignment, one entry per partition. Events between
    /// partitions on different machines pay the marshalling cost.
    pub machine_of: Vec<usize>,
    /// Envelope bytes prepended to every cross-machine message, modeling
    /// MPI headers plus kernel copy overhead. 0 disables the envelope but
    /// marshalling still occurs.
    pub envelope_bytes: usize,
    /// Stall watchdog bound: if the global minimum pending event time fails
    /// to advance for this many consecutive epochs, the run aborts with
    /// [`PdesError::Stalled`] naming the stuck partition. `0` disables the
    /// watchdog (a stalled partition then hangs the barrier loop forever).
    pub stall_epochs: u64,
    /// Optional deterministic fault injection (see [`FaultPlan`]).
    pub faults: Option<FaultPlan>,
}

impl PdesConfig {
    /// All partitions on a single machine.
    pub fn single_machine(partitions: usize, lookahead: SimDuration) -> Self {
        PdesConfig {
            lookahead,
            machine_of: vec![0; partitions],
            envelope_bytes: 0,
            stall_epochs: DEFAULT_STALL_EPOCHS,
            faults: None,
        }
    }

    /// Partitions dealt round-robin across `machines` machines with the
    /// given envelope size.
    pub fn round_robin(
        partitions: usize,
        machines: usize,
        lookahead: SimDuration,
        envelope_bytes: usize,
    ) -> Self {
        assert!(machines >= 1);
        PdesConfig {
            lookahead,
            machine_of: (0..partitions).map(|p| p % machines).collect(),
            envelope_bytes,
            stall_epochs: DEFAULT_STALL_EPOCHS,
            faults: None,
        }
    }

    /// Returns `self` with the given fault plan installed.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Structured failure from a PDES run, replacing hangs and worker panics.
///
/// Both variants carry the partial [`PdesReport`] assembled at abort time,
/// so callers can inspect per-partition diagnostics (each partition's event
/// count and frozen [`PartitionStats::next_time`]) even for a failed run.
#[derive(Debug)]
pub enum PdesError {
    /// A partition stopped advancing: the global minimum pending event time
    /// sat at `at` for `epochs` consecutive epochs. Without the watchdog
    /// this is an infinite barrier loop.
    Stalled {
        /// The partition holding the frozen minimum event time.
        partition: PartitionId,
        /// The simulated time the run is stuck at.
        at: SimTime,
        /// Consecutive non-advancing epochs observed before aborting.
        epochs: u64,
        /// Partial statistics gathered up to the abort.
        report: PdesReport,
    },
    /// A marshalled cross-machine message failed to decode on the far side.
    Corrupt {
        /// The partition that sent the undecodable message.
        partition: PartitionId,
        /// Scheduled delivery time of the lost message.
        at: SimTime,
        /// Partial statistics gathered up to the abort.
        report: PdesReport,
    },
}

impl PdesError {
    /// The partial report assembled when the run aborted.
    pub fn report(&self) -> &PdesReport {
        match self {
            PdesError::Stalled { report, .. } | PdesError::Corrupt { report, .. } => report,
        }
    }
}

impl std::fmt::Display for PdesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdesError::Stalled {
                partition,
                at,
                epochs,
                ..
            } => write!(
                f,
                "PDES stalled: partition {partition} failed to advance past {at} \
                 for {epochs} consecutive epochs"
            ),
            PdesError::Corrupt { partition, at, .. } => write!(
                f,
                "PDES transport corruption: message from partition {partition} \
                 due at {at} failed to decode"
            ),
        }
    }
}

impl std::error::Error for PdesError {}

/// Which failure a worker thread observed; folded into [`PdesError`] with
/// the final report once all threads have drained.
#[derive(Clone, Copy, Debug)]
enum FailureCause {
    Stalled { epochs: u64 },
    Corrupt,
}

#[derive(Clone, Copy, Debug)]
struct Failure {
    partition: PartitionId,
    at: SimTime,
    cause: FailureCause,
}

/// Aggregate statistics from a PDES run.
#[derive(Clone, Debug, Default)]
pub struct PdesReport {
    /// Number of epoch barriers executed.
    pub epochs: u64,
    /// Total events executed across all partitions.
    pub events_executed: u64,
    /// Cross-partition messages delivered (marshalled or not).
    pub remote_messages: u64,
    /// Cross-machine messages, i.e. the subset that was marshalled.
    pub marshalled_messages: u64,
    /// Total bytes pushed through the marshalling path (payload + envelope).
    pub bytes_marshalled: u64,
    /// Faults injected by the configured [`FaultPlan`] (all zero without one).
    pub faults: FaultCounts,
    /// Wall-time and traffic breakdown, one row per partition.
    pub partitions: Vec<PartitionStats>,
}

impl PdesReport {
    /// Folds another report into this one, summing counts and wall times.
    ///
    /// Used by sampled drivers that advance a [`PdesRunner`] in chunks
    /// (one `run_until` per sampling tick) and want run-total statistics:
    /// each chunk's report covers only that chunk, so summation is exact.
    /// `next_time` takes the later report's value.
    pub fn merge(&mut self, other: &PdesReport) {
        self.epochs += other.epochs;
        self.events_executed += other.events_executed;
        self.remote_messages += other.remote_messages;
        self.marshalled_messages += other.marshalled_messages;
        self.bytes_marshalled += other.bytes_marshalled;
        self.faults.dropped += other.faults.dropped;
        self.faults.duplicated += other.faults.duplicated;
        self.faults.corrupted += other.faults.corrupted;
        if self.partitions.is_empty() {
            self.partitions = other.partitions.clone();
            return;
        }
        debug_assert_eq!(self.partitions.len(), other.partitions.len());
        for (a, b) in self.partitions.iter_mut().zip(&other.partitions) {
            a.events += b.events;
            a.work_seconds += b.work_seconds;
            a.barrier_wait_seconds += b.barrier_wait_seconds;
            a.marshal_seconds += b.marshal_seconds;
            a.remote_events_sent += b.remote_events_sent;
            a.remote_bytes_sent += b.remote_bytes_sent;
            a.next_time = b.next_time;
        }
    }
}

/// Per-partition wall-time and traffic breakdown from a PDES run.
///
/// Wall times are measured with monotonic clocks inside the partition
/// thread; they never feed back into simulated time, so collecting them
/// does not perturb determinism.
#[derive(Clone, Debug, Default)]
pub struct PartitionStats {
    /// Partition index.
    pub partition: usize,
    /// Events this partition executed.
    pub events: u64,
    /// Wall time spent executing local events.
    pub work_seconds: f64,
    /// Wall time spent parked on epoch barriers.
    pub barrier_wait_seconds: f64,
    /// Wall time spent marshalling cross-machine events.
    pub marshal_seconds: f64,
    /// Cross-partition events this partition sent.
    pub remote_events_sent: u64,
    /// Bytes this partition pushed through the marshalling path.
    pub remote_bytes_sent: u64,
    /// Earliest event still pending when the partition thread exited —
    /// the key stall diagnostic: a stuck partition's clock freezes here.
    pub next_time: Option<SimTime>,
}

/// Drives a set of [`PartitionSim`]s in parallel, one OS thread each.
pub struct PdesRunner<W: PartitionWorld> {
    partitions: Vec<PartitionSim<W>>,
    config: PdesConfig,
}

/// Epoch decision computed by thread 0 at each barrier.
#[derive(Clone, Copy)]
struct EpochPlan {
    end: SimTime,
    terminate: bool,
}

struct Shared<E> {
    barrier: Barrier,
    /// Earliest pending event time per partition (`None` = drained).
    next_times: Mutex<Vec<Option<SimTime>>>,
    plan: Mutex<EpochPlan>,
    /// Inbound mailboxes, one per partition.
    mailboxes: Vec<Mutex<Vec<(SimTime, E)>>>,
    /// Per-partition breakdowns, written once by each thread as it exits.
    per_partition: Mutex<Vec<PartitionStats>>,
    epochs: AtomicU64,
    events: AtomicU64,
    remote_msgs: AtomicU64,
    marshalled_msgs: AtomicU64,
    marshalled_bytes: AtomicU64,
    fault_dropped: AtomicU64,
    fault_duplicated: AtomicU64,
    fault_corrupted: AtomicU64,
    poisoned: AtomicBool,
    /// Set by any thread that observes a failure; thread 0 converts it into
    /// a terminating epoch plan at the next planning phase, so every thread
    /// exits through the normal barrier sequence instead of deadlocking.
    abort: AtomicBool,
    /// First failure observed (kept; later ones are dropped).
    failure: Mutex<Option<Failure>>,
    /// Wall-clock origin for timeline slices: all partition tracks share
    /// one zero so their epochs line up in the trace viewer.
    started: Instant,
}

impl<E> Shared<E> {
    fn record_failure(&self, failure: Failure) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(failure);
        }
        self.abort.store(true, Ordering::SeqCst);
    }
}

impl<W: PartitionWorld> PdesRunner<W> {
    /// Builds a runner. `config.machine_of` must have one entry per
    /// partition and `lookahead` must be positive.
    pub fn new(partitions: Vec<PartitionSim<W>>, config: PdesConfig) -> Self {
        assert!(!partitions.is_empty(), "need at least one partition");
        assert_eq!(
            config.machine_of.len(),
            partitions.len(),
            "machine_of must list every partition"
        );
        assert!(
            config.lookahead > SimDuration::ZERO,
            "lookahead must be positive"
        );
        PdesRunner { partitions, config }
    }

    /// Runs all partitions until every event with time ≤ `horizon` has been
    /// executed (or the model drains). Returns aggregate statistics, or a
    /// structured [`PdesError`] if the stall watchdog fired or a marshalled
    /// message failed to decode — in both cases the error carries the
    /// partial report for per-partition diagnostics.
    pub fn run_until(&mut self, horizon: SimTime) -> Result<PdesReport, PdesError> {
        let n = self.partitions.len();
        let shared: Shared<W::Event> = Shared {
            barrier: Barrier::new(n),
            next_times: Mutex::new(vec![None; n]),
            plan: Mutex::new(EpochPlan {
                end: SimTime::ZERO,
                terminate: false,
            }),
            mailboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            per_partition: Mutex::new(
                (0..n)
                    .map(|partition| PartitionStats {
                        partition,
                        ..Default::default()
                    })
                    .collect(),
            ),
            epochs: AtomicU64::new(0),
            events: AtomicU64::new(0),
            remote_msgs: AtomicU64::new(0),
            marshalled_msgs: AtomicU64::new(0),
            marshalled_bytes: AtomicU64::new(0),
            fault_dropped: AtomicU64::new(0),
            fault_duplicated: AtomicU64::new(0),
            fault_corrupted: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
            started: Instant::now(),
        };
        let config = &self.config;

        std::thread::scope(|scope| {
            for (id, part) in self.partitions.iter_mut().enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    partition_main(id, part, shared, config, horizon);
                });
            }
        });

        assert!(
            !shared.poisoned.load(Ordering::SeqCst),
            "a PDES partition thread panicked"
        );
        let report = PdesReport {
            epochs: shared.epochs.load(Ordering::Relaxed),
            events_executed: shared.events.load(Ordering::Relaxed),
            remote_messages: shared.remote_msgs.load(Ordering::Relaxed),
            marshalled_messages: shared.marshalled_msgs.load(Ordering::Relaxed),
            bytes_marshalled: shared.marshalled_bytes.load(Ordering::Relaxed),
            faults: FaultCounts {
                dropped: shared.fault_dropped.load(Ordering::Relaxed),
                duplicated: shared.fault_duplicated.load(Ordering::Relaxed),
                corrupted: shared.fault_corrupted.load(Ordering::Relaxed),
            },
            partitions: shared.per_partition.into_inner(),
        };
        publish_metrics(&report);
        match shared.failure.into_inner() {
            Some(Failure {
                partition,
                at,
                cause: FailureCause::Stalled { epochs },
            }) => Err(PdesError::Stalled {
                partition,
                at,
                epochs,
                report,
            }),
            Some(Failure {
                partition,
                at,
                cause: FailureCause::Corrupt,
            }) => Err(PdesError::Corrupt {
                partition,
                at,
                report,
            }),
            None => Ok(report),
        }
    }

    /// Consumes the runner, returning the partitions for inspection.
    pub fn into_partitions(self) -> Vec<PartitionSim<W>> {
        self.partitions
    }

    /// Immutable view of the partitions.
    pub fn partitions(&self) -> &[PartitionSim<W>] {
        &self.partitions
    }
}

/// Mirrors a finished run's statistics into the global metrics registry
/// (no-op while observability is disabled).
fn publish_metrics(report: &PdesReport) {
    if !elephant_obs::enabled() {
        return;
    }
    elephant_obs::counter("pdes/epoch/count", "").add(report.epochs);
    elephant_obs::counter("pdes/remote/messages", "").add(report.remote_messages);
    elephant_obs::counter("pdes/marshal/messages", "").add(report.marshalled_messages);
    elephant_obs::counter("pdes/marshal/bytes", "").add(report.bytes_marshalled);
    if report.faults.total() > 0 {
        elephant_obs::counter("pdes/fault/dropped", "").add(report.faults.dropped);
        elephant_obs::counter("pdes/fault/duplicated", "").add(report.faults.duplicated);
        elephant_obs::counter("pdes/fault/corrupted", "").add(report.faults.corrupted);
    }
    for p in &report.partitions {
        let label = p.partition.to_string();
        elephant_obs::counter("pdes/partition/events", label.clone()).add(p.events);
        elephant_obs::counter("pdes/partition/remote_messages", label.clone())
            .add(p.remote_events_sent);
        elephant_obs::counter("pdes/partition/remote_bytes", label).add(p.remote_bytes_sent);
        // Barrier wait is no longer mirrored as an end-of-run counter: the
        // timeline records it per epoch (see `PartitionTimeline`), and the
        // aggregate lives in `PartitionStats::barrier_wait_seconds`.
    }
}

/// Per-partition timeline buffer: one wall-clock track per partition with
/// per-epoch `work` / `barrier_wait` / `marshal` slices. Records accumulate
/// locally (no lock traffic inside the epoch loop) and flush to the global
/// timeline in one batch when the partition thread exits. Constructed only
/// while the timeline is enabled; every call site is a cheap `Option` probe
/// otherwise.
struct PartitionTimeline {
    buf: Vec<TraceRecord>,
    origin: Instant,
    tid: u64,
}

/// Per-thread record bound so a long run cannot balloon memory; the global
/// timeline applies its own cap on top.
const PARTITION_RECORD_CAP: usize = 100_000;

impl PartitionTimeline {
    fn new(origin: Instant, id: PartitionId) -> Option<Self> {
        elephant_obs::timeline_enabled().then(|| PartitionTimeline {
            buf: Vec::new(),
            origin,
            tid: id as u64,
        })
    }

    fn push(&mut self, record: TraceRecord) {
        if self.buf.len() < PARTITION_RECORD_CAP {
            self.buf.push(record);
        }
    }

    /// A slice on this partition's track from `from` to now.
    fn slice(&mut self, name: &'static str, from: Instant, epoch: u64) {
        let ts = from.duration_since(self.origin).as_secs_f64() * 1e6;
        let dur = from.elapsed().as_secs_f64() * 1e6;
        self.push(TraceRecord::complete(PID_PDES, self.tid, name, ts, dur).arg("epoch", epoch));
    }

    fn flush(self, stats: &PartitionStats) {
        let tl = elephant_obs::timeline();
        tl.name_process(PID_PDES, "pdes partitions (wall clock)");
        tl.name_track(
            PID_PDES,
            self.tid,
            format!("partition {} ({} events)", stats.partition, stats.events),
        );
        tl.record_batch(self.buf);
    }
}

/// Body of each partition thread: the epoch loop described in the module
/// docs. All threads execute this in lockstep, separated by barriers.
fn partition_main<W: PartitionWorld>(
    id: PartitionId,
    part: &mut PartitionSim<W>,
    shared: &Shared<W::Event>,
    config: &PdesConfig,
    horizon: SimTime,
) {
    // Poison-on-panic guard so that one panicking thread does not leave the
    // others parked on a barrier forever in tests: we mark poisoned and the
    // panic unwinds through `scope`, which propagates it after joining.
    struct Guard<'a>(&'a AtomicBool);
    impl Drop for Guard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::SeqCst);
            }
        }
    }
    let _guard = Guard(&shared.poisoned);

    let mut remote = RemoteSink::new();
    let my_machine = config.machine_of[id];
    let mut stats = PartitionStats {
        partition: id,
        ..Default::default()
    };
    let _pdes_span = elephant_obs::span("pdes");
    let mut tl = PartitionTimeline::new(shared.started, id);

    // Fault-injection state: deterministic per-partition RNG stream plus
    // the two partition-level faults, resolved once up front.
    let mut fault_rng: Option<FaultRng> = config.faults.as_ref().map(|f| f.rng_for(id));
    let slow_here: Option<std::time::Duration> = config
        .faults
        .as_ref()
        .and_then(|f| f.slow_partition)
        .filter(|&(p, _)| p == id)
        .map(|(_, d)| d);
    let stall_after: Option<u64> = config
        .faults
        .as_ref()
        .and_then(|f| f.stall_partition)
        .filter(|&(p, _)| p == id)
        .map(|(_, k)| k);
    let mut my_epochs: u64 = 0;

    // Stall-watchdog state, used by thread 0 only: the planning phase
    // tracks the global minimum event time across epochs; a healthy model
    // strictly advances it every epoch (see DEFAULT_STALL_EPOCHS).
    let mut watch_last: Option<SimTime> = None;
    let mut watch_stagnant: u64 = 0;

    loop {
        let _epoch_span = elephant_obs::span("epoch");
        // Phase 1: deliver inbound mail into the local FEL.
        {
            let mut mail = shared.mailboxes[id].lock();
            for (at, ev) in mail.drain(..) {
                part.sched.schedule_at(at, ev);
            }
        }

        // Phase 2: publish my earliest pending time.
        {
            let mut slots = shared.next_times.lock();
            slots[id] = part.sched.peek_time();
        }
        {
            let _s = elephant_obs::span("barrier_wait");
            let t0 = Instant::now();
            shared.barrier.wait();
            stats.barrier_wait_seconds += t0.elapsed().as_secs_f64();
            if let Some(tl) = tl.as_mut() {
                tl.slice("barrier_wait", t0, my_epochs);
            }
        }

        // Phase 3: thread 0 plans the epoch.
        if id == 0 {
            let slots = shared.next_times.lock();
            let global_min = slots.iter().flatten().min().copied();

            // Stall watchdog: the minimum must strictly advance while work
            // remains. If it sits still for `stall_epochs` consecutive
            // epochs, name the partition holding it and abort.
            if let Some(start) = global_min.filter(|&s| s <= horizon) {
                if watch_last == Some(start) {
                    watch_stagnant += 1;
                    if config.stall_epochs > 0 && watch_stagnant >= config.stall_epochs {
                        let stuck = slots
                            .iter()
                            .position(|t| *t == Some(start))
                            .unwrap_or_default();
                        shared.record_failure(Failure {
                            partition: stuck,
                            at: start,
                            cause: FailureCause::Stalled {
                                epochs: watch_stagnant,
                            },
                        });
                    }
                } else {
                    watch_last = Some(start);
                    watch_stagnant = 0;
                }
            }

            let abort = shared.abort.load(Ordering::SeqCst);
            let mut plan = shared.plan.lock();
            *plan = match global_min {
                Some(start) if start <= horizon && !abort => EpochPlan {
                    end: start.saturating_add(config.lookahead),
                    terminate: false,
                },
                _ => EpochPlan {
                    end: horizon,
                    terminate: true,
                },
            };
            if !plan.terminate {
                shared.epochs.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let _s = elephant_obs::span("barrier_wait");
            let t0 = Instant::now();
            shared.barrier.wait();
            stats.barrier_wait_seconds += t0.elapsed().as_secs_f64();
            if let Some(tl) = tl.as_mut() {
                tl.slice("barrier_wait", t0, my_epochs);
            }
        }

        let plan = *shared.plan.lock();
        if plan.terminate {
            break;
        }

        // Phase 4: execute local events in [start, end), capped by horizon.
        my_epochs += 1;
        let stalled = stall_after.is_some_and(|k| my_epochs > k);
        remote.epoch_end = plan.end;
        let mut executed = 0u64;
        {
            let _s = elephant_obs::span("work");
            let t0 = Instant::now();
            if let Some(dur) = slow_here {
                // Injected slowdown: wall-clock only; the partition still
                // advances simulated time, so the watchdog must stay quiet.
                std::thread::sleep(dur);
            }
            while let Some(t) = part.sched.peek_time() {
                if stalled || t >= plan.end || t > horizon {
                    break;
                }
                let (_, ev) = part.sched.pop().expect("peeked event vanished");
                part.world.handle(ev, &mut part.sched, &mut remote);
                executed += 1;
            }
            stats.work_seconds += t0.elapsed().as_secs_f64();
            if let Some(tl) = tl.as_mut() {
                let ts = t0.duration_since(tl.origin).as_secs_f64() * 1e6;
                let dur = t0.elapsed().as_secs_f64() * 1e6;
                tl.push(
                    TraceRecord::complete(PID_PDES, tl.tid, "work", ts, dur)
                        .arg("epoch", my_epochs)
                        .arg("events", executed)
                        .arg("epoch_end_sim_us", plan.end.as_nanos() as f64 / 1e3),
                );
            }
        }
        stats.events += executed;
        if executed > 0 {
            shared.events.fetch_add(executed, Ordering::Relaxed);
        }

        // Phase 5: post outbound remote events, marshalling across machines.
        if !remote.out.is_empty() {
            let mut marshalled = 0u64;
            let mut bytes_total = 0u64;
            let count = remote.out.len() as u64;
            let _s = elephant_obs::span("marshal");
            let t0 = Instant::now();
            for (dst, at, ev) in remote.out.drain(..) {
                assert!(
                    dst < config.machine_of.len(),
                    "remote event to unknown partition {dst}"
                );
                if config.machine_of[dst] == my_machine {
                    shared.mailboxes[dst].lock().push((at, ev));
                    continue;
                }

                // Cross-machine: roll the message-level faults (sender-side,
                // so the sequence is deterministic per partition), then push
                // the event through the marshalled transport.
                let faults = config.faults.as_ref();
                let mut copies = 1usize;
                let mut corrupt = false;
                if let (Some(f), Some(rng)) = (faults, fault_rng.as_mut()) {
                    if rng.roll(f.drop_prob) {
                        shared.fault_dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if rng.roll(f.dup_prob) {
                        copies = 2;
                        shared.fault_duplicated.fetch_add(1, Ordering::Relaxed);
                    }
                    if rng.roll(f.corrupt_prob) {
                        corrupt = true;
                        shared.fault_corrupted.fetch_add(1, Ordering::Relaxed);
                    }
                }

                let (evs, nbytes) = marshal_round_trip(ev, config.envelope_bytes, copies, corrupt);
                marshalled += copies as u64;
                bytes_total += nbytes;
                if evs.len() < copies {
                    // The far side could not decode the message: surface a
                    // structured transport error instead of panicking, and
                    // let thread 0 terminate every partition cleanly.
                    shared.record_failure(Failure {
                        partition: id,
                        at,
                        cause: FailureCause::Corrupt,
                    });
                }
                for ev in evs {
                    shared.mailboxes[dst].lock().push((at, ev));
                }
            }
            stats.marshal_seconds += t0.elapsed().as_secs_f64();
            if let Some(tl) = tl.as_mut() {
                tl.slice("marshal", t0, my_epochs);
            }
            stats.remote_events_sent += count;
            stats.remote_bytes_sent += bytes_total;
            shared.remote_msgs.fetch_add(count, Ordering::Relaxed);
            if marshalled > 0 {
                shared
                    .marshalled_msgs
                    .fetch_add(marshalled, Ordering::Relaxed);
                shared
                    .marshalled_bytes
                    .fetch_add(bytes_total, Ordering::Relaxed);
            }
        }

        // Phase 6: barrier ending the epoch; guarantees all mail is posted
        // before anyone starts phase 1 of the next epoch.
        let _s = elephant_obs::span("barrier_wait");
        let t0 = Instant::now();
        shared.barrier.wait();
        stats.barrier_wait_seconds += t0.elapsed().as_secs_f64();
        if let Some(tl) = tl.as_mut() {
            tl.slice("barrier_wait", t0, my_epochs);
        }
        drop(_s);
    }

    stats.next_time = part.sched.peek_time();
    if let Some(tl) = tl.take() {
        tl.flush(&stats);
    }
    shared.per_partition.lock()[id] = stats;
}

/// Pushes an event through the simulated machine boundary: encode, wrap in
/// an envelope, checksum (so the optimizer cannot elide the copies), decode.
///
/// `copies` decodes the wire bytes that many times (fault-injected
/// duplication); `corrupt` mangles the payload first (truncate the final
/// byte and flip a bit), modeling a torn write. Returns the reconstructed
/// events — possibly fewer than `copies` if a decode failed, which the
/// caller reports as [`PdesError::Corrupt`] — and the bytes moved.
fn marshal_round_trip<E: Transportable>(
    ev: E,
    envelope_bytes: usize,
    copies: usize,
    corrupt: bool,
) -> (Vec<E>, u64) {
    let mut buf = BytesMut::with_capacity(64 + envelope_bytes);
    buf.put_bytes(0xA5, envelope_bytes); // MPI-style envelope / copy cost
    ev.encode(&mut buf);
    if corrupt && buf.len() > envelope_bytes {
        buf[envelope_bytes] ^= 0x40; // flip a bit in the first payload byte
        buf.truncate(buf.len() - 1); // and tear off the last one
    }
    let frozen = buf.freeze();
    // Touch every byte, as a real transport would while copying to a socket.
    let checksum: u64 = frozen
        .iter()
        .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64));
    std::hint::black_box(checksum);
    let nbytes = frozen.len() as u64 * copies as u64;
    let mut out = Vec::with_capacity(copies);
    for _ in 0..copies {
        let mut rd = frozen.clone();
        rd.advance(envelope_bytes);
        match E::decode(&mut rd) {
            Some(ev) => out.push(ev),
            None => break, // same bytes => every later copy fails identically
        }
    }
    (out, nbytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token that hops between partitions `hops` times, incrementing a
    /// counter on each arrival. Cross-partition delay = LOOKAHEAD.
    const LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

    #[derive(Debug, PartialEq)]
    struct Token {
        hops_left: u32,
        value: u64,
    }

    impl Transportable for Token {
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u32(self.hops_left);
            buf.put_u64(self.value);
        }
        fn decode(buf: &mut Bytes) -> Option<Self> {
            if buf.remaining() < 12 {
                return None;
            }
            Some(Token {
                hops_left: buf.get_u32(),
                value: buf.get_u64(),
            })
        }
    }

    struct Ring {
        id: PartitionId,
        n: usize,
        arrivals: u64,
        last_value: u64,
    }

    impl PartitionWorld for Ring {
        type Event = Token;
        fn handle(
            &mut self,
            ev: Token,
            sched: &mut Scheduler<Token>,
            remote: &mut RemoteSink<Token>,
        ) {
            self.arrivals += 1;
            self.last_value = ev.value;
            if ev.hops_left == 0 {
                return;
            }
            let next = Token {
                hops_left: ev.hops_left - 1,
                value: ev.value + 1,
            };
            let at = sched.now() + LOOKAHEAD;
            let dst = (self.id + 1) % self.n;
            if dst == self.id {
                sched.schedule_at(at, next);
            } else {
                remote.send(dst, at, next);
            }
        }
    }

    fn ring_run(n: usize, hops: u32, machines: usize, envelope: usize) -> (Vec<Ring>, PdesReport) {
        let mut parts: Vec<PartitionSim<Ring>> = (0..n)
            .map(|id| {
                PartitionSim::new(Ring {
                    id,
                    n,
                    arrivals: 0,
                    last_value: 0,
                })
            })
            .collect();
        parts[0].scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: hops,
                value: 0,
            },
        );
        let config = PdesConfig::round_robin(n, machines, LOOKAHEAD, envelope);
        let mut runner = PdesRunner::new(parts, config);
        let report = runner
            .run_until(SimTime::from_secs(10))
            .expect("healthy run");
        let worlds = runner
            .into_partitions()
            .into_iter()
            .map(|p| {
                let PartitionSim { world, .. } = p;
                world
            })
            .collect();
        (worlds, report)
    }

    #[test]
    fn token_ring_single_machine() {
        let (worlds, report) = ring_run(4, 99, 1, 0);
        let total: u64 = worlds.iter().map(|w| w.arrivals).sum();
        assert_eq!(total, 100); // initial arrival + 99 hops
        assert_eq!(report.events_executed, 100);
        assert_eq!(report.remote_messages, 99);
        assert_eq!(
            report.marshalled_messages, 0,
            "same machine, no marshalling"
        );
        // The token's value counts hops; last arrival carries 99.
        let max_value = worlds.iter().map(|w| w.last_value).max().unwrap();
        assert_eq!(max_value, 99);
    }

    #[test]
    fn token_ring_cross_machine_marshals() {
        let (worlds, report) = ring_run(4, 99, 2, 32);
        let total: u64 = worlds.iter().map(|w| w.arrivals).sum();
        assert_eq!(total, 100);
        // Round-robin over 2 machines: every hop crosses machines
        // (0->1, 1->2, 2->3, 3->0 all change parity).
        assert_eq!(report.marshalled_messages, 99);
        assert_eq!(report.bytes_marshalled, 99 * (32 + 12));
    }

    #[test]
    fn pdes_matches_sequential_semantics() {
        // The same ring run sequentially: arrivals land at times 0, L, 2L, …
        // PDES must deliver identical per-partition arrival counts.
        let (worlds, _) = ring_run(3, 10, 1, 0);
        // Partition 0 sees arrivals at hop 0, 3, 6, 9 => 4 arrivals.
        assert_eq!(worlds[0].arrivals, 4);
        assert_eq!(worlds[1].arrivals, 4); // hops 1, 4, 7, 10
        assert_eq!(worlds[2].arrivals, 3); // hops 2, 5, 8
    }

    #[test]
    fn horizon_truncates() {
        // 99 hops of 1us each; horizon 10us lets hops 0..=10 land.
        let mut parts: Vec<PartitionSim<Ring>> = (0..2)
            .map(|id| {
                PartitionSim::new(Ring {
                    id,
                    n: 2,
                    arrivals: 0,
                    last_value: 0,
                })
            })
            .collect();
        parts[0].scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: 99,
                value: 0,
            },
        );
        let mut runner = PdesRunner::new(parts, PdesConfig::single_machine(2, LOOKAHEAD));
        let report = runner
            .run_until(SimTime::from_micros(10))
            .expect("healthy run");
        assert_eq!(report.events_executed, 11);
    }

    #[test]
    fn single_partition_degenerates_to_sequential() {
        let (worlds, report) = ring_run(1, 50, 1, 0);
        assert_eq!(worlds[0].arrivals, 51);
        assert_eq!(report.remote_messages, 0);
    }

    #[test]
    fn empty_model_terminates_immediately() {
        let parts: Vec<PartitionSim<Ring>> = (0..3)
            .map(|id| {
                PartitionSim::new(Ring {
                    id,
                    n: 3,
                    arrivals: 0,
                    last_value: 0,
                })
            })
            .collect();
        let mut runner = PdesRunner::new(parts, PdesConfig::single_machine(3, LOOKAHEAD));
        let report = runner
            .run_until(SimTime::from_secs(1))
            .expect("healthy run");
        assert_eq!(report.events_executed, 0);
        assert_eq!(report.epochs, 0);
    }

    #[test]
    fn merge_sums_chunked_reports() {
        let (_, a) = ring_run(4, 49, 2, 32);
        let (_, b) = ring_run(4, 49, 2, 32);
        let mut merged = PdesReport::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(
            merged.events_executed,
            a.events_executed + b.events_executed
        );
        assert_eq!(merged.epochs, a.epochs + b.epochs);
        assert_eq!(
            merged.bytes_marshalled,
            a.bytes_marshalled + b.bytes_marshalled
        );
        assert_eq!(merged.partitions.len(), 4);
        assert_eq!(
            merged.partitions[1].events,
            a.partitions[1].events + b.partitions[1].events
        );
    }

    #[test]
    fn timeline_gets_per_epoch_partition_slices() {
        // Process-global timeline: no other test in this crate enables it,
        // so flipping it here is safe; restore and clear on the way out.
        elephant_obs::timeline().reset();
        elephant_obs::set_timeline_enabled(true);
        let (_, report) = ring_run(4, 99, 2, 32);
        elephant_obs::set_timeline_enabled(false);
        let json = elephant_obs::TimelineWriter::from_timeline(elephant_obs::timeline()).to_json();
        elephant_obs::timeline().reset();
        assert!(report.epochs > 0);
        for needle in ["barrier_wait", "\"work\"", "marshal", "partition 3"] {
            assert!(json.contains(needle), "trace JSON missing {needle}");
        }
    }

    #[test]
    fn idle_gaps_are_skipped_in_one_epoch() {
        // Two events 1 second apart with 1us lookahead: the next-event jump
        // must not grind through a million empty epochs.
        struct Sparse;
        impl PartitionWorld for Sparse {
            type Event = Token;
            fn handle(&mut self, _: Token, _: &mut Scheduler<Token>, _: &mut RemoteSink<Token>) {}
        }
        let mut part = PartitionSim::new(Sparse);
        part.scheduler_mut().schedule_at(
            SimTime::ZERO,
            Token {
                hops_left: 0,
                value: 0,
            },
        );
        part.scheduler_mut().schedule_at(
            SimTime::from_secs(1),
            Token {
                hops_left: 0,
                value: 0,
            },
        );
        let mut runner = PdesRunner::new(vec![part], PdesConfig::single_machine(1, LOOKAHEAD));
        let report = runner
            .run_until(SimTime::from_secs(2))
            .expect("healthy run");
        assert_eq!(report.events_executed, 2);
        assert!(
            report.epochs <= 3,
            "expected a jump, got {} epochs",
            report.epochs
        );
    }
}
