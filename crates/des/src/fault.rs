//! Deterministic fault injection for the PDES engine.
//!
//! The conservative barrier engine in [`crate::pdes`] is only as robust as
//! its worst partition: a logical process that stops consuming events, or a
//! transport that mangles a marshalled message, turns into a silent hang or
//! a panic deep inside a worker thread. This module provides a *seeded,
//! reproducible* way to manufacture exactly those failures so the engine's
//! defenses (the stall watchdog, structured [`crate::PdesError`] returns)
//! can be exercised in tests and demos.
//!
//! All randomness derives from per-partition `splitmix64` streams keyed by
//! `(plan.seed, partition)`, so a given plan injects the identical fault
//! sequence on every run regardless of thread interleaving: each partition
//! rolls the dice for the messages *it* sends, in the order it sends them,
//! and that order is deterministic under the engine's epoch semantics.

use std::time::Duration;

use crate::pdes::PartitionId;
use crate::rng::splitmix64;

/// Declarative description of the faults to inject into a PDES run.
///
/// The default plan injects nothing. Message-level faults (drop, duplicate,
/// corrupt) apply only to events crossing a simulated *machine* boundary —
/// the marshalled path — mirroring where real deployments lose and mangle
/// traffic. Partition-level faults (slowdown, stall) model a sick worker.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-partition fault RNG streams.
    pub seed: u64,
    /// Probability that a cross-machine message is silently dropped.
    pub drop_prob: f64,
    /// Probability that a cross-machine message is delivered twice.
    pub dup_prob: f64,
    /// Probability that a cross-machine message is corrupted in flight
    /// (payload truncated and bit-flipped before the receive-side decode).
    pub corrupt_prob: f64,
    /// Sleep this long per epoch inside the named partition's execute
    /// phase: a slow-but-correct worker. Wall-clock only; simulated time
    /// and results are unaffected, and the watchdog must not trip.
    pub slow_partition: Option<(PartitionId, Duration)>,
    /// After the named partition has run this many epochs, it stops
    /// executing events entirely (its clock freezes). Without a watchdog
    /// the run would hang at the next barrier cycle forever.
    pub stall_partition: Option<(PartitionId, u64)>,
}

impl FaultPlan {
    /// True if any fault is configured.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.slow_partition.is_some()
            || self.stall_partition.is_some()
    }

    /// The deterministic fault stream for one partition.
    pub(crate) fn rng_for(&self, partition: PartitionId) -> FaultRng {
        FaultRng::new(splitmix64(
            self.seed ^ (partition as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// How many of each fault a run actually injected; part of
/// [`crate::PdesReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Cross-machine messages dropped by the fault plan.
    pub dropped: u64,
    /// Cross-machine messages delivered twice by the fault plan.
    pub duplicated: u64,
    /// Cross-machine messages corrupted in flight by the fault plan.
    pub corrupted: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.corrupted
    }
}

/// A tiny splitmix64-based uniform stream, private to one partition.
pub(crate) struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// The raw stream position, persisted across `run_until` chunks and
    /// checkpoints so a resumed run rolls the identical fault sequence.
    pub(crate) fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds the stream at a previously captured position.
    pub(crate) fn from_state(state: u64) -> Self {
        FaultRng { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Rolls one Bernoulli trial with probability `p`.
    pub(crate) fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert_eq!(FaultCounts::default().total(), 0);
    }

    #[test]
    fn rng_streams_are_deterministic_and_partition_local() {
        let plan = FaultPlan {
            seed: 42,
            drop_prob: 0.5,
            ..Default::default()
        };
        let mut a = plan.rng_for(0);
        let mut b = plan.rng_for(0);
        let seq_a: Vec<bool> = (0..64).map(|_| a.roll(0.5)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.roll(0.5)).collect();
        assert_eq!(seq_a, seq_b, "same (seed, partition) => same stream");

        let mut c = plan.rng_for(1);
        let seq_c: Vec<bool> = (0..64).map(|_| c.roll(0.5)).collect();
        assert_ne!(seq_a, seq_c, "partitions draw from distinct streams");
    }

    #[test]
    fn roll_respects_extremes() {
        let mut rng = FaultRng::new(7);
        assert!((0..100).all(|_| !rng.roll(0.0)));
        assert!((0..100).all(|_| rng.roll(1.0)));
    }
}
