//! Measurement primitives used by every experiment in the workspace.
//!
//! The simulator-agnostic kernels — [`Summary`], [`LogHistogram`],
//! [`EmpiricalCdf`] — live in `elephant-obs` (shared with the metrics
//! registry) and are re-exported here so existing imports keep working.
//! This module owns the accumulators that need simulation time:
//! [`TimeWeighted`] signals and the [`Ewma`] smoother that pairs with them.

pub use elephant_obs::{EmpiricalCdf, LogHistogram, Summary};

use crate::time::SimTime;

/// Exponentially weighted moving average.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in (0, 1]; larger means
    /// more weight on the newest observation.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Feeds one observation and returns the updated average.
    pub fn record(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current average, defaulting to 0 before any observation.
    pub fn value_or_zero(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

/// Time-weighted mean of a piecewise-constant signal (queue depth, bytes in
/// flight, link utilization).
///
/// Call [`TimeWeighted::set`] whenever the signal changes; each level is
/// weighted by how long it was held.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
    started: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking at time `start` with initial level `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            started: start,
            peak: initial,
        }
    }

    /// Records that the signal takes level `value` from time `now` on.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(
            now >= self.last_change,
            "time-weighted signal moved backwards"
        );
        let held = now.saturating_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.current * held;
        self.current = value;
        self.last_change = now;
        self.peak = self.peak.max(value);
    }

    /// Adjusts the signal by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// The current level.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The maximum level ever held.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, now]`. Returns the current level if
    /// no time has elapsed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.started).as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + self.current * tail) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        for _ in 0..200 {
            e.record(5.0);
        }
        assert!((e.value().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_sample_is_exact() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.record(7.5), 7.5);
    }

    #[test]
    fn time_weighted_mean_over_step_signal() {
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        let mut w = TimeWeighted::new(t(0), 0.0);
        w.set(t(10), 4.0); // level 0 for 10us
        w.set(t(30), 1.0); // level 4 for 20us
                           // level 1 for 10us => mean over 40us = (0*10 + 4*20 + 1*10)/40 = 2.25
        assert!((w.mean(t(40)) - 2.25).abs() < 1e-9);
        assert_eq!(w.peak(), 4.0);
        assert_eq!(w.current(), 1.0);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let t = |us| SimTime::ZERO + SimDuration::from_micros(us);
        let mut w = TimeWeighted::new(t(0), 0.0);
        w.add(t(5), 2.0);
        w.add(t(10), -1.0);
        assert_eq!(w.current(), 1.0);
        assert_eq!(w.peak(), 2.0);
    }

    #[test]
    fn moved_stats_types_remain_reachable() {
        // The histogram/CDF/summary kernels live in elephant-obs now; this
        // guards the re-export path downstream code depends on.
        let mut s = Summary::new();
        s.record(1.0);
        assert_eq!(s.count(), 1);
        let mut h = LogHistogram::for_latency_seconds();
        h.record(1e-3);
        assert_eq!(h.count(), 1);
        assert_eq!(EmpiricalCdf::from_samples(&[1.0]).len(), 1);
    }
}
