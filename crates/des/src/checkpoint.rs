//! Checkpoint/restore for crash-safe runs.
//!
//! A checkpoint is a *quiescent deep copy* of everything a resumed run needs
//! to be bit-identical to an uninterrupted one:
//!
//! * **Sequential** ([`SimCheckpoint`]): the world and the scheduler — FEL
//!   contents, clock, sequence counters, tombstones. Taken between
//!   [`crate::Simulator::run_until`] chunks, where the engine is parked.
//! * **PDES** ([`PdesCheckpoint`]): every partition's world, FEL, and
//!   cross-chunk progress — the `send-seq` tie-break counter, the fault-RNG
//!   stream position, and the epoch count a scripted stall measures against.
//!   Taken between [`crate::PdesRunner::run_until`] chunks, where the
//!   exchange is drained and the partitions' private state is the complete
//!   run state.
//!
//! Bit-equality holds by construction: the copies are `Clone`s of the exact
//! in-memory state, the remote tie-break key is intrinsic to each message
//! (so resumed epoch plans need not match the original's), and fault
//! progress is part of the snapshot. The deliberate exception is *global
//! observability* (metrics registry, timeline): counters are monotonic
//! run-telemetry and are not rolled back by a restore, so a retried run's
//! counters include the aborted attempt. Verdict caches ride along inside
//! the world when their oracle is cloneable; an uncloneable oracle must be
//! rebuilt cold by the caller (documented at the driver layer).
//!
//! [`CheckpointManifest`] is the durable side-channel: a versioned,
//! FNV-checksummed header (same discipline as the model file format) that
//! records a run's recovery provenance so CI and post-mortems can verify a
//! resumed run against the plan that produced it.

use std::path::Path;

use crate::pdes::{PartitionSim, PartitionWorld};
use crate::sched::Scheduler;
use crate::sim::World;
use crate::time::SimTime;

/// Magic line identifying a checkpoint manifest.
pub const CHECKPOINT_MAGIC: &str = "ELEPHANT-CHECKPOINT";
/// Current manifest format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string; the manifest's integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// A quiescent snapshot of a sequential simulation: world plus scheduler.
///
/// Captured by [`crate::Simulator::checkpoint`] and reapplied by
/// [`crate::Simulator::restore`]; resuming from it is bit-identical to never
/// having stopped.
pub struct SimCheckpoint<W: World> {
    pub(crate) world: W,
    pub(crate) sched: Scheduler<W::Event>,
}

impl<W: World> SimCheckpoint<W> {
    /// The simulated time the snapshot was taken at.
    pub fn at(&self) -> SimTime {
        self.sched.now()
    }
}

/// A quiescent snapshot of a PDES run: every partition's full state.
///
/// Captured by [`crate::PdesRunner::checkpoint`] and reapplied by
/// [`crate::PdesRunner::restore`].
pub struct PdesCheckpoint<W: PartitionWorld> {
    partitions: Vec<PartitionSim<W>>,
}

impl<W: PartitionWorld + Clone> PdesCheckpoint<W>
where
    W::Event: Clone,
{
    pub(crate) fn capture(partitions: &[PartitionSim<W>]) -> Self {
        PdesCheckpoint {
            partitions: partitions.to_vec(),
        }
    }

    pub(crate) fn restore_partitions(&self, expected: usize) -> Vec<PartitionSim<W>> {
        assert_eq!(
            self.partitions.len(),
            expected,
            "checkpoint partition count mismatch — snapshot from a different run"
        );
        self.partitions.clone()
    }

    /// Number of partitions in the snapshot.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The latest partition clock in the snapshot — the chunk boundary the
    /// checkpoint was taken at.
    pub fn at(&self) -> SimTime {
        self.partitions
            .iter()
            .map(|p| p.scheduler().now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Typed failure from manifest parsing or IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not a checkpoint manifest (bad magic) or a field is
    /// missing or unparsable.
    Malformed(String),
    /// The manifest's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload hash does not match the header (bit rot, truncation,
    /// or a torn write).
    ChecksumMismatch {
        /// Checksum the header claims.
        expected: u64,
        /// Checksum of the payload actually on disk.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint manifest IO error: {e}"),
            CheckpointError::Malformed(detail) => {
                write!(f, "malformed checkpoint manifest: {detail}")
            }
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint manifest version {v} (this build reads \
                 up to {CHECKPOINT_VERSION})"
            ),
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint manifest checksum mismatch: header says {expected:#018x}, \
                 payload hashes to {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Durable record of a run's recovery provenance.
///
/// The manifest does not carry simulation state (checkpoints are in-memory
/// deep copies); it records *which* run the snapshots belong to and how far
/// recovery progressed, in a tamper-evident envelope: a magic + version
/// header, an FNV-1a checksum of the payload, then `key value` lines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// Scenario or experiment name the run belongs to.
    pub scenario: String,
    /// The run's base seed.
    pub seed: u64,
    /// Driver rung the run finished on (e.g. `pdes-adaptive`, `sequential`).
    pub driver: String,
    /// Simulated time of the most recent checkpoint, in nanoseconds.
    pub sim_time_ns: u64,
    /// Checkpoints taken over the run.
    pub checkpoints_taken: u64,
    /// Restores performed over the run.
    pub restores: u64,
    /// Retry-ladder degradations performed over the run.
    pub degradations: u64,
}

impl CheckpointManifest {
    /// The `key value` payload the checksum covers.
    fn payload(&self) -> String {
        format!(
            "scenario {}\nseed {}\ndriver {}\nsim_time_ns {}\ncheckpoints_taken {}\n\
             restores {}\ndegradations {}\n",
            self.scenario,
            self.seed,
            self.driver,
            self.sim_time_ns,
            self.checkpoints_taken,
            self.restores,
            self.degradations,
        )
    }

    /// Serializes the manifest to its on-disk text form.
    pub fn to_string_form(&self) -> String {
        let payload = self.payload();
        format!(
            "{CHECKPOINT_MAGIC} v{CHECKPOINT_VERSION}\nchecksum {:#018x}\n{payload}",
            fnv1a(payload.as_bytes())
        )
    }

    /// Writes the manifest to `path`.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_string_form())?;
        Ok(())
    }

    /// Parses a manifest from its on-disk text form, validating magic,
    /// version, and checksum.
    pub fn from_string_form(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| CheckpointError::Malformed("empty file".into()))?;
        let version = header
            .strip_prefix(CHECKPOINT_MAGIC)
            .and_then(|rest| rest.trim().strip_prefix('v'))
            .ok_or_else(|| CheckpointError::Malformed(format!("bad magic line {header:?}")))?
            .parse::<u32>()
            .map_err(|_| CheckpointError::Malformed("unparsable version".into()))?;
        if version > CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let checksum_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Malformed("missing checksum line".into()))?;
        let expected = checksum_line
            .strip_prefix("checksum ")
            .and_then(|v| v.strip_prefix("0x"))
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| {
                CheckpointError::Malformed(format!("bad checksum line {checksum_line:?}"))
            })?;

        let mut manifest = CheckpointManifest::default();
        let mut payload = String::new();
        for line in lines {
            payload.push_str(line);
            payload.push('\n');
            let Some((key, value)) = line.split_once(' ') else {
                return Err(CheckpointError::Malformed(format!(
                    "expected `key value`, got {line:?}"
                )));
            };
            let parse_u64 = || {
                value
                    .parse::<u64>()
                    .map_err(|_| CheckpointError::Malformed(format!("bad {key} value {value:?}")))
            };
            match key {
                "scenario" => manifest.scenario = value.to_string(),
                "seed" => manifest.seed = parse_u64()?,
                "driver" => manifest.driver = value.to_string(),
                "sim_time_ns" => manifest.sim_time_ns = parse_u64()?,
                "checkpoints_taken" => manifest.checkpoints_taken = parse_u64()?,
                "restores" => manifest.restores = parse_u64()?,
                "degradations" => manifest.degradations = parse_u64()?,
                _ => {
                    return Err(CheckpointError::Malformed(format!(
                        "unknown manifest key {key:?}"
                    )))
                }
            }
        }
        let actual = fnv1a(payload.as_bytes());
        if actual != expected {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }
        Ok(manifest)
    }

    /// Reads and validates a manifest from `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_string_form(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointManifest {
        CheckpointManifest {
            scenario: "fault_drill".into(),
            seed: 42,
            driver: "pdes-adaptive".into(),
            sim_time_ns: 24_000_000,
            checkpoints_taken: 6,
            restores: 1,
            degradations: 2,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let text = m.to_string_form();
        assert!(text.starts_with("ELEPHANT-CHECKPOINT v1\n"));
        let back = CheckpointManifest::from_string_form(&text).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_detects_bit_rot() {
        let text = sample().to_string_form();
        // Flip one digit in the payload (the seed), leaving the header alone.
        let rotted = text.replace("seed 42", "seed 43");
        match CheckpointManifest::from_string_form(&rotted) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn manifest_rejects_future_versions_and_junk() {
        let future = sample()
            .to_string_form()
            .replace("ELEPHANT-CHECKPOINT v1", "ELEPHANT-CHECKPOINT v2");
        assert!(matches!(
            CheckpointManifest::from_string_form(&future),
            Err(CheckpointError::UnsupportedVersion(2))
        ));
        assert!(matches!(
            CheckpointManifest::from_string_form("not a manifest"),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn manifest_save_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("elephant-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.txt");
        let m = sample();
        m.save(&path).expect("save");
        assert_eq!(CheckpointManifest::load(&path).expect("load"), m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
