//! The future event list and scheduling interface.
//!
//! [`Scheduler`] owns the pending-event heap and the simulation clock. Event
//! handlers receive `&mut Scheduler<E>` and use it to post future events,
//! cancel timers, and read the current time.
//!
//! Ordering is total and deterministic: events fire in `(time, sequence)`
//! order, where `sequence` is the order in which they were scheduled. Two
//! events posted for the same instant therefore fire in posting order, which
//! makes single-threaded runs bit-reproducible.
//!
//! The PDES engine inserts cross-partition deliveries through a second
//! *remote lane* of the sequence space ([`Scheduler::schedule_remote`]): the
//! top bit marks a remote event and the remaining bits encode the sender
//! partition and the sender's own send counter. At equal timestamps remote
//! events therefore sort after every local event and among themselves by
//! `(sender, send-seq)` — an intrinsic key that does not depend on which
//! epoch (or which chunked `run_until` call) happened to deliver them, so
//! tie order is identical across epoch plans, partition counts held fixed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Keys are unique for the lifetime of a [`Scheduler`]; they are never
/// reused, so a stale key held after its event fired is harmless (cancelling
/// it is a no-op).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey(u64);

/// Top bit of the sequence space: set for remote-lane (cross-partition)
/// deliveries so they sort after all locally scheduled events at the same
/// instant.
const REMOTE_LANE: u64 = 1 << 63;
/// Bits reserved for the sender's send counter in a remote-lane sequence.
const SEND_SEQ_BITS: u32 = 47;
const SEND_SEQ_MASK: u64 = (1 << SEND_SEQ_BITS) - 1;
/// Sender partition ids must fit in the bits between the lane bit and the
/// send counter.
const MAX_SENDER: u64 = (1 << (63 - SEND_SEQ_BITS)) - 1;

/// Builds the remote-lane sequence number for a delivery from `sender` with
/// that sender's `send_seq`-th cross-partition message.
#[inline]
fn remote_seq(sender: usize, send_seq: u64) -> u64 {
    debug_assert!((sender as u64) <= MAX_SENDER, "sender id out of range");
    debug_assert!(send_seq <= SEND_SEQ_MASK, "send-seq counter overflow");
    REMOTE_LANE | ((sender as u64) << SEND_SEQ_BITS) | (send_seq & SEND_SEQ_MASK)
}

#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering for the max-heap wrapped in `Reverse`: earliest (time, seq) pops
// first. Only `time` and `seq` participate; the payload is irrelevant.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The future event list: a priority queue of `(time, event)` pairs plus the
/// simulation clock.
///
/// Cancellation uses lazy deletion: cancelled keys go into a tombstone set
/// and the event is discarded when it reaches the top of the heap. This keeps
/// `cancel` O(1) while the heap stays a plain binary heap.
/// Cloning a scheduler (possible whenever the event type is `Clone`) deep-
/// copies the heap, clock, and tombstone sets, so a clone is an independent
/// resumable snapshot — the substrate of [`crate::checkpoint`].
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    now: SimTime,
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    /// Seqs scheduled but neither fired nor cancelled yet.
    pending_keys: HashSet<u64>,
    cancelled: HashSet<u64>,
    scheduled_total: u64,
    executed_total: u64,
    cancelled_total: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending_keys: HashSet::new(),
            cancelled: HashSet::new(),
            scheduled_total: 0,
            executed_total: 0,
            cancelled_total: 0,
        }
    }

    /// The current simulated time (the timestamp of the event being handled,
    /// or zero before the first event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past: causality violations are programming
    /// errors, never recoverable conditions.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past ({at} < now {})",
            self.now
        );
        let seq = self.next_seq;
        debug_assert!(seq < REMOTE_LANE, "local sequence space exhausted");
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending_keys.insert(seq);
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
        EventKey(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` to fire at the current instant, after all events
    /// already scheduled for this instant.
    #[inline]
    pub fn schedule_now(&mut self, event: E) -> EventKey {
        self.schedule_at(self.now, event)
    }

    /// Schedules a cross-partition delivery on the remote lane.
    ///
    /// The event's tie-break key is `(at, sender, send_seq)` — intrinsic to
    /// the message, not to the insertion order — so a batch of same-timestamp
    /// deliveries from different senders fires in the same order no matter
    /// which epoch plan (or chunk boundary) carried them. Remote deliveries
    /// sort after all local events at the same instant.
    ///
    /// # Panics
    /// Panics if `at` is in the past, if `sender` does not fit in the
    /// remote-lane sender field, or (debug) on send-counter overflow.
    pub fn schedule_remote(&mut self, at: SimTime, sender: usize, send_seq: u64, event: E) {
        assert!(
            at >= self.now,
            "remote delivery violates causality ({at} < now {})",
            self.now
        );
        assert!(
            (sender as u64) <= MAX_SENDER,
            "sender partition id {sender} exceeds remote-lane capacity"
        );
        let seq = remote_seq(sender, send_seq);
        self.scheduled_total += 1;
        self.pending_keys.insert(seq);
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
    }

    /// Inserts a batch of remote deliveries, all from the same `sender`.
    ///
    /// Tie-break stability comes from the intrinsic `(sender, send_seq)` key,
    /// not from insertion order, so callers may hand over per-sender batches
    /// in any sender order and still get identical pop order.
    pub fn schedule_remote_batch(
        &mut self,
        sender: usize,
        batch: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) {
        for (at, send_seq, event) in batch {
            self.schedule_remote(at, sender, send_seq, event);
        }
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending, `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.pending_keys.remove(&key.0) {
            return false; // already fired, already cancelled, or never issued
        }
        self.cancelled.insert(key.0);
        self.cancelled_total += 1;
        true
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Reverse(s) = self.heap.pop()?;
            if self.cancelled.remove(&s.seq) {
                continue; // tombstoned
            }
            debug_assert!(s.time >= self.now, "heap yielded an event from the past");
            self.pending_keys.remove(&s.seq);
            self.now = s.time;
            self.executed_total += 1;
            return Some((s.time, s.event));
        }
    }

    /// Drops tombstoned entries sitting at the top of the heap so that
    /// `peek_time` reflects a live event.
    fn skim_cancelled(&mut self) {
        while let Some(Reverse(s)) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let Reverse(s) = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&s.seq);
            } else {
                break;
            }
        }
    }

    /// Number of events currently pending (excluding tombstones at the top
    /// of the heap; interior tombstones are counted until they surface —
    /// treat this as an upper bound).
    pub fn pending(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.skim_cancelled();
        self.heap.is_empty()
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events executed (popped and not tombstoned).
    pub fn executed_total(&self) -> u64 {
        self.executed_total
    }

    /// Total events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Forces the clock forward to `t` without executing anything.
    ///
    /// Used by the PDES engine at epoch barriers; panics if a pending event
    /// would be skipped or if `t` is in the past.
    pub fn advance_clock(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock may not move backwards");
        if let Some(head) = self.peek_time() {
            assert!(
                head >= t,
                "advance_clock({t}) would skip an event at {head}"
            );
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(30), "c");
        s.schedule_at(SimTime::from_nanos(10), "a");
        s.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_nanos(30));
    }

    #[test]
    fn ties_fire_in_posting_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            s.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let k = s.schedule_at(SimTime::from_nanos(10), "dead");
        s.schedule_at(SimTime::from_nanos(20), "alive");
        assert!(s.cancel(k));
        assert!(!s.cancel(k), "double-cancel reports false");
        let (_, e) = s.pop().unwrap();
        assert_eq!(e, "alive");
        assert!(s.pop().is_none());
        assert_eq!(s.cancelled_total(), 1);
        assert_eq!(s.executed_total(), 1);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let k = s.schedule_at(SimTime::from_nanos(10), "fired");
        s.pop();
        assert!(!s.cancel(k), "cancelling a fired event is a no-op");
        assert_eq!(s.cancelled_total(), 0);
        assert_eq!(
            s.scheduled_total(),
            s.executed_total() + s.cancelled_total()
        );
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut s: Scheduler<&str> = Scheduler::new();
        assert!(!s.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let k = s.schedule_at(SimTime::from_nanos(10), "dead");
        s.schedule_at(SimTime::from_nanos(20), "alive");
        s.cancel(k);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    #[should_panic]
    fn scheduling_in_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), ());
        s.pop();
        s.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn schedule_now_runs_after_current_instant_peers() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), "first");
        let (_, e) = s.pop().unwrap();
        assert_eq!(e, "first");
        s.schedule_now("second");
        let (t, e) = s.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(10), "second"));
    }

    #[test]
    fn remote_lane_sorts_after_locals_and_by_sender_seq() {
        let t = SimTime::from_nanos(7);
        // Insert remote deliveries in scrambled order; locals afterwards.
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_remote(t, 2, 0, "r2.0");
        s.schedule_remote(t, 1, 1, "r1.1");
        s.schedule_at(t, "local0");
        s.schedule_remote(t, 1, 0, "r1.0");
        s.schedule_at(t, "local1");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["local0", "local1", "r1.0", "r1.1", "r2.0"]);
    }

    #[test]
    fn remote_tie_order_is_insertion_order_independent() {
        let t = SimTime::from_nanos(3);
        let mut forward: Scheduler<u32> = Scheduler::new();
        let mut backward: Scheduler<u32> = Scheduler::new();
        let msgs = [(0usize, 0u64, 10u32), (1, 0, 20), (2, 0, 30), (1, 1, 21)];
        for &(sender, seq, v) in &msgs {
            forward.schedule_remote(t, sender, seq, v);
        }
        for &(sender, seq, v) in msgs.iter().rev() {
            backward.schedule_remote(t, sender, seq, v);
        }
        let f: Vec<_> = std::iter::from_fn(|| forward.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| backward.pop()).collect();
        assert_eq!(f, b);
        assert_eq!(
            f.into_iter().map(|(_, v)| v).collect::<Vec<_>>(),
            vec![10, 20, 21, 30]
        );
    }

    #[test]
    fn remote_batch_matches_singles() {
        let t = SimTime::from_nanos(9);
        let mut batched: Scheduler<u32> = Scheduler::new();
        batched.schedule_remote_batch(4, vec![(t, 0, 1u32), (t, 1, 2), (t, 2, 3)]);
        let mut singles: Scheduler<u32> = Scheduler::new();
        for (seq, v) in [(2u64, 3u32), (0, 1), (1, 2)] {
            singles.schedule_remote(t, 4, seq, v);
        }
        let a: Vec<_> = std::iter::from_fn(|| batched.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| singles.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn remote_delivery_in_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), ());
        s.pop();
        s.schedule_remote(SimTime::from_nanos(5), 0, 0, ());
    }

    #[test]
    fn advance_clock_moves_time_when_safe() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance_clock(SimTime::from_nanos(100));
        assert_eq!(s.now(), SimTime::from_nanos(100));
    }

    #[test]
    #[should_panic]
    fn advance_clock_refuses_to_skip_events() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(50), ());
        s.advance_clock(SimTime::from_nanos(100));
    }
}
