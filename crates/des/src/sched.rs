//! The future event list and scheduling interface.
//!
//! [`Scheduler`] owns the pending-event list and the simulation clock. Event
//! handlers receive `&mut Scheduler<E>` and use it to post future events,
//! cancel timers, and read the current time.
//!
//! Ordering is total and deterministic: events fire in `(time, sequence)`
//! order, where `sequence` is the order in which they were scheduled. Two
//! events posted for the same instant therefore fire in posting order, which
//! makes single-threaded runs bit-reproducible.
//!
//! The PDES engine inserts cross-partition deliveries through a second
//! *remote lane* of the sequence space ([`Scheduler::schedule_remote`]): the
//! top bit marks a remote event and the remaining bits encode the sender
//! partition and the sender's own send counter. At equal timestamps remote
//! events therefore sort after every local event and among themselves by
//! `(sender, send-seq)` — an intrinsic key that does not depend on which
//! epoch (or which chunked `run_until` call) happened to deliver them, so
//! tie order is identical across epoch plans, partition counts held fixed.
//!
//! ## FEL backends
//!
//! The queue structure is pluggable through the [`Fel`] trait, with two
//! implementations that produce bit-identical pop order:
//!
//! * [`CalendarFel`] (the default): a calendar queue — an array of time
//!   buckets, each `width` nanoseconds wide, scanned cyclically like the
//!   days of a desk calendar. Insert and pop are O(1) amortized versus the
//!   binary heap's O(log n), which is what keeps per-event cost flat at
//!   100k-host event densities (see the `pdes_scaling` density sweep).
//!   Event payloads live in a slab (`Vec<Option<E>>` plus a free list), so
//!   steady-state scheduling allocates nothing; buckets hold only the hot
//!   `(time, seq, slot)` fields as struct-of-arrays, so the min-scan touches
//!   dense `u64` arrays and never drags payload bytes through the cache.
//! * [`BinaryHeapFel`]: the classic binary-heap FEL this kernel used before
//!   the calendar queue. Kept as the differential-testing reference (see
//!   `crates/des/tests/proptests.rs`) and the "before" side of the
//!   `pdes_scaling` event-density sweep.
//!
//! Both backends use lazy cancellation: cancelled keys go into a tombstone
//! set owned by the [`Scheduler`] and entries are discarded when they reach
//! the front of the queue (or, for the calendar queue, when a resize
//! rehashes every entry anyway).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::marker::PhantomData;

use crate::time::{SimDuration, SimTime};

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Keys are unique for the lifetime of a [`Scheduler`]; they are never
/// reused, so a stale key held after its event fired is harmless (cancelling
/// it is a no-op).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey(u64);

/// Top bit of the sequence space: set for remote-lane (cross-partition)
/// deliveries so they sort after all locally scheduled events at the same
/// instant.
const REMOTE_LANE: u64 = 1 << 63;
/// Bits reserved for the sender's send counter in a remote-lane sequence.
const SEND_SEQ_BITS: u32 = 47;
const SEND_SEQ_MASK: u64 = (1 << SEND_SEQ_BITS) - 1;
/// Sender partition ids must fit in the bits between the lane bit and the
/// send counter.
const MAX_SENDER: u64 = (1 << (63 - SEND_SEQ_BITS)) - 1;

/// Builds the remote-lane sequence number for a delivery from `sender` with
/// that sender's `send_seq`-th cross-partition message.
#[inline]
fn remote_seq(sender: usize, send_seq: u64) -> u64 {
    debug_assert!((sender as u64) <= MAX_SENDER, "sender id out of range");
    debug_assert!(send_seq <= SEND_SEQ_MASK, "send-seq counter overflow");
    REMOTE_LANE | ((sender as u64) << SEND_SEQ_BITS) | (send_seq & SEND_SEQ_MASK)
}

/// Hasher for the pending/tombstone sequence sets: the splitmix64
/// finalizer (full avalanche in three multiplies) instead of SipHash.
/// Sequence numbers are internal trusted values, never attacker-chosen, so
/// DoS-resistant hashing buys nothing — and the set operations sit on the
/// schedule/pop hot path of every event.
#[derive(Clone, Default, Debug)]
pub struct SeqHasher(u64);

impl std::hash::Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the sets only ever hash u64 keys.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = crate::rng::splitmix64(x);
    }
}

/// The sequence-key set used for pending-event and tombstone membership.
pub type SeqSet = HashSet<u64, std::hash::BuildHasherDefault<SeqHasher>>;

/// A pluggable future-event-list structure.
///
/// A `Fel` stores `(time, seq, payload)` entries and yields them in strict
/// `(time, seq)` order. Tombstoned sequences (lazy cancellation) are passed
/// in by the owning [`Scheduler`]; an implementation discards a tombstoned
/// entry whenever it surfaces as the minimum — and may purge tombstones
/// opportunistically (e.g. while rehashing) — always removing the purged seq
/// from the set so conservation holds.
///
/// All implementations must produce **bit-identical pop order**: the
/// scheduler's determinism contract does not depend on which backend is
/// plugged in (proven by the differential proptest in
/// `crates/des/tests/proptests.rs`).
pub trait Fel<E> {
    /// An empty list.
    fn new() -> Self;

    /// Entries currently stored, *including* interior tombstones that have
    /// not been purged yet. Use [`Scheduler::pending`] for the exact live
    /// count.
    fn len(&self) -> usize;

    /// True when no entries (live or tombstoned) remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry. `tombs` is provided so implementations may purge
    /// stale entries while restructuring (the calendar queue drops
    /// tombstones during a resize rehash).
    fn push(&mut self, time: SimTime, seq: u64, event: E, tombs: &mut SeqSet);

    /// Removes and returns the minimum live `(time, seq)` entry, discarding
    /// any tombstoned entries encountered at the front (and removing their
    /// seqs from `tombs`).
    fn pop_min(&mut self, tombs: &mut SeqSet) -> Option<(SimTime, u64, E)>;

    /// Timestamp of the minimum live entry, discarding tombstoned entries
    /// that surface at the front (as `pop_min` would).
    fn peek_min_time(&mut self, tombs: &mut SeqSet) -> Option<SimTime>;

    /// Estimated resident bytes of the structure (allocated capacity, not
    /// just live entries) — the substrate of the `bytes/host` memory
    /// accounting surfaced through `elephant-obs`.
    fn approx_bytes(&self) -> usize;
}

#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering for the max-heap wrapped in `Reverse`: earliest (time, seq) pops
// first. Only `time` and `seq` participate; the payload is irrelevant.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The classic binary-heap FEL: O(log n) push/pop, payloads stored inline
/// in the heap entries.
///
/// This is the structure the kernel used before the calendar queue; it is
/// kept as the reference implementation for differential testing and as the
/// "before" side of the `pdes_scaling` event-density sweep.
#[derive(Debug, Clone)]
pub struct BinaryHeapFel<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
}

impl<E> Default for BinaryHeapFel<E> {
    fn default() -> Self {
        <Self as Fel<E>>::new()
    }
}

impl<E> Fel<E> for BinaryHeapFel<E> {
    fn new() -> Self {
        BinaryHeapFel {
            heap: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn push(&mut self, time: SimTime, seq: u64, event: E, _tombs: &mut SeqSet) {
        self.heap.push(Reverse(Scheduled { time, seq, event }));
    }

    fn pop_min(&mut self, tombs: &mut SeqSet) -> Option<(SimTime, u64, E)> {
        loop {
            let Reverse(s) = self.heap.pop()?;
            if tombs.remove(&s.seq) {
                continue; // tombstoned
            }
            return Some((s.time, s.seq, s.event));
        }
    }

    fn peek_min_time(&mut self, tombs: &mut SeqSet) -> Option<SimTime> {
        while let Some(Reverse(s)) = self.heap.peek() {
            if tombs.contains(&s.seq) {
                let Reverse(s) = self.heap.pop().expect("peeked entry vanished");
                tombs.remove(&s.seq);
            } else {
                return Some(s.time);
            }
        }
        None
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.heap.capacity() * std::mem::size_of::<Reverse<Scheduled<E>>>()
    }
}

/// Minimum bucket count; the queue never shrinks below this.
const MIN_BUCKETS: usize = 16;
/// Target average bucket occupancy after a resize.
const TARGET_OCCUPANCY: usize = 4;
/// Grow when average occupancy exceeds this.
const GROW_OCCUPANCY: usize = 8;
/// Head-sample size used to estimate inter-event spacing for the bucket
/// width (Brown's calendar-queue heuristic).
const WIDTH_SAMPLE: usize = 64;
/// Consecutive pops that fell through to a direct full search before the
/// queue concludes its bucket width no longer matches the event spacing and
/// rehashes with a freshly sampled width.
const DIRECT_STREAK_REHASH: u32 = 8;

/// One calendar bucket, struct-of-arrays: the min-scan reads `times`/`seqs`
/// only (dense `u64` lanes); `slots` joins in when an entry is removed.
/// The three vectors are always the same length.
#[derive(Debug, Clone, Default)]
struct Bucket {
    times: Vec<u64>,
    seqs: Vec<u64>,
    slots: Vec<u32>,
}

impl Bucket {
    #[inline]
    fn push(&mut self, time: u64, seq: u64, slot: u32) {
        self.times.push(time);
        self.seqs.push(seq);
        self.slots.push(slot);
    }

    /// Removes entry `i` (order within a bucket is irrelevant — scans
    /// recompute the minimum), returning its slab slot.
    #[inline]
    fn swap_remove(&mut self, i: usize) -> u32 {
        self.times.swap_remove(i);
        self.seqs.swap_remove(i);
        self.slots.swap_remove(i)
    }

    /// Index of the minimum `(time, seq)` entry with `time < top`, i.e. the
    /// entry belonging to the calendar year currently being scanned.
    fn min_eligible(&self, top: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, (&t, &s)) in self.times.iter().zip(&self.seqs).enumerate() {
            if t < top && best.is_none_or(|b| (t, s) < (self.times[b], self.seqs[b])) {
                best = Some(i);
            }
        }
        best
    }

    /// Index of the minimum `(time, seq)` entry regardless of year.
    fn min_any(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, (&t, &s)) in self.times.iter().zip(&self.seqs).enumerate() {
            if best.is_none_or(|b| (t, s) < (self.times[b], self.seqs[b])) {
                best = Some(i);
            }
        }
        best
    }

    fn capacity_bytes(&self) -> usize {
        self.times.capacity() * std::mem::size_of::<u64>()
            + self.seqs.capacity() * std::mem::size_of::<u64>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
    }
}

/// A calendar-queue FEL (Brown 1988): O(1) amortized push/pop with
/// slab-allocated payloads.
///
/// Time is divided into buckets of `width` nanoseconds; bucket `b` holds
/// every pending event whose timestamp falls in a window congruent to `b`
/// modulo the bucket count (the "year" wraps like a desk calendar). Popping
/// scans forward from the current position; a bucket's minimum `(time,
/// seq)` entry within the current year is the global minimum, so pop order
/// is exactly the total order the binary heap produced.
///
/// * **Slab payloads** — event payloads live in `slab` (`Vec<Option<E>>`
///   with a free list); buckets store a `u32` slot index next to the hot
///   `(time, seq)` fields. Steady-state churn allocates nothing and never
///   moves payload bytes through the min-scan.
/// * **Resize policy** — when average occupancy leaves the
///   [`TARGET_OCCUPANCY`]-centred band, every entry is rehashed into a new
///   power-of-two bucket array sized for occupancy ~4, with the width
///   re-sampled from the [`WIDTH_SAMPLE`] soonest entries (twice their mean
///   spacing). A streak of [`DIRECT_STREAK_REHASH`] direct full searches —
///   the symptom of a stale width — forces the same rehash.
/// * **Tombstones** — cancelled entries are dropped when they surface as
///   the scan minimum, and wholesale during resize rehashes.
/// * **Snapshots** — `Clone` deep-copies the slab, buckets, and scan
///   cursor, so a checkpointed scheduler resumes bit-identically.
#[derive(Debug, Clone)]
pub struct CalendarFel<E> {
    /// Payload slab; `None` slots are free and listed in `free`.
    slab: Vec<Option<E>>,
    /// Free slab slots, reused LIFO.
    free: Vec<u32>,
    /// The calendar proper. `buckets.len()` is always a power of two.
    buckets: Vec<Bucket>,
    /// `buckets.len() - 1`, for cheap modulo.
    mask: usize,
    /// Bucket width in nanoseconds. Always a power of two so the hot
    /// bucket/window math is shifts and masks, never a 64-bit division.
    width: u64,
    /// Entries across all buckets, including unpurged tombstones.
    len: usize,
    /// Bucket the next scan resumes from.
    scan_bucket: usize,
    /// Exclusive upper time bound of `scan_bucket`'s window in the year
    /// being scanned.
    scan_top: u64,
    /// Scanning is guaranteed not to have passed this time: every live
    /// entry has `time >= scan_floor`. A push below it rewinds the cursor.
    scan_floor: u64,
    /// Consecutive pops that needed a direct full search.
    direct_streak: u32,
}

impl<E> Default for CalendarFel<E> {
    fn default() -> Self {
        <Self as Fel<E>>::new()
    }
}

impl<E> CalendarFel<E> {
    /// Initial bucket width: 1.024us, a typical event spacing for a lightly
    /// loaded network partition. The first resize replaces it with a
    /// sampled value.
    const INITIAL_WIDTH: u64 = 1 << 10;

    #[inline]
    fn bucket_of(&self, time: u64) -> usize {
        // width is a power of two: divide via shift.
        (time >> self.width.trailing_zeros()) as usize & self.mask
    }

    /// Exclusive upper bound of the bucket window containing `time`.
    #[inline]
    fn top_of(&self, time: u64) -> u64 {
        (time & !(self.width - 1)).saturating_add(self.width)
    }

    fn alloc_slot(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(event);
                slot
            }
            None => {
                assert!(
                    self.slab.len() < u32::MAX as usize,
                    "calendar-queue slab exhausted (2^32 concurrent events)"
                );
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn release_slot(&mut self, slot: u32) -> E {
        let event = self.slab[slot as usize]
            .take()
            .expect("calendar-queue slot already free");
        self.free.push(slot);
        event
    }

    /// Power-of-two bucket count targeting [`TARGET_OCCUPANCY`] entries per
    /// bucket.
    fn target_buckets(len: usize) -> usize {
        (len / TARGET_OCCUPANCY)
            .next_power_of_two()
            .max(MIN_BUCKETS)
    }

    /// Estimates a bucket width from the spacing of the `WIDTH_SAMPLE`
    /// soonest entries: twice their mean gap, rounded up to a power of two
    /// (the hot-path math requires it; being up to 2x wide just packs a
    /// couple more entries per bucket). Returns `None` (keep the current
    /// width) with fewer than two entries.
    fn sampled_width(entries: &mut [(u64, u64, u32)]) -> Option<u64> {
        if entries.len() < 2 {
            return None;
        }
        let k = entries.len().min(WIDTH_SAMPLE);
        entries.select_nth_unstable_by_key(k - 1, |&(t, s, _)| (t, s));
        let head = &entries[..k];
        let lo = head.iter().map(|e| e.0).min().expect("nonempty sample");
        let hi = head.iter().map(|e| e.0).max().expect("nonempty sample");
        let mean_gap = (hi - lo) / (k as u64 - 1);
        // Cap below the top bit so next_power_of_two cannot wrap to zero.
        let w = mean_gap.saturating_mul(2).clamp(1, 1 << 62);
        Some(w.next_power_of_two())
    }

    /// Rebuilds the bucket array at the size/width appropriate for the
    /// current population, dropping tombstones for good along the way, and
    /// rewinds the scan cursor to the earliest live entry.
    fn rehash(&mut self, tombs: &mut SeqSet) {
        let mut entries: Vec<(u64, u64, u32)> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            for i in 0..bucket.times.len() {
                entries.push((bucket.times[i], bucket.seqs[i], bucket.slots[i]));
            }
            bucket.times.clear();
            bucket.seqs.clear();
            bucket.slots.clear();
        }
        // Every entry is in hand: purge tombstones wholesale.
        entries.retain(|&(_, seq, slot)| {
            if tombs.remove(&seq) {
                self.slab[slot as usize] = None;
                self.free.push(slot);
                false
            } else {
                true
            }
        });
        self.len = entries.len();
        if let Some(w) = Self::sampled_width(&mut entries) {
            self.width = w;
        }
        let target = Self::target_buckets(self.len);
        if target != self.buckets.len() {
            self.buckets = vec![Bucket::default(); target];
            self.mask = target - 1;
        }
        let mut floor: Option<u64> = None;
        for &(time, seq, slot) in &entries {
            let b = self.bucket_of(time);
            self.buckets[b].push(time, seq, slot);
            floor = Some(floor.map_or(time, |f| f.min(time)));
        }
        // Rewind the cursor to the earliest live entry (or keep the old
        // floor when empty — pushes at or above it still land ahead of the
        // cursor, and pushes below it rewind the cursor anyway).
        let floor = floor.unwrap_or(self.scan_floor);
        self.scan_floor = floor;
        self.scan_bucket = self.bucket_of(floor);
        self.scan_top = self.top_of(floor);
        self.direct_streak = 0;
    }

    fn maybe_resize(&mut self, tombs: &mut SeqSet) {
        let n = self.buckets.len();
        if self.len > n * GROW_OCCUPANCY || (n > MIN_BUCKETS && self.len < n / 2) {
            self.rehash(tombs);
        }
    }

    /// Positions the scan cursor on the minimum live entry and returns its
    /// `(bucket, index)`. Tombstoned entries that surface as the minimum
    /// are purged and the search continues. Returns `None` when the queue
    /// holds no entries at all.
    fn locate(&mut self, tombs: &mut SeqSet) -> Option<(usize, usize)> {
        loop {
            if self.len == 0 {
                return None;
            }
            // Scan one calendar year starting at the cursor. Bucket windows
            // below `scan_floor` hold nothing (invariant), so the first
            // bucket with an entry inside the year's window holds the
            // global minimum.
            let mut b = self.scan_bucket;
            let mut top = self.scan_top;
            let mut hit: Option<(usize, usize)> = None;
            for _ in 0..self.buckets.len() {
                if let Some(i) = self.buckets[b].min_eligible(top) {
                    hit = Some((b, i));
                    break;
                }
                b = (b + 1) & self.mask;
                top = top.saturating_add(self.width);
            }
            let (b, i) = match hit {
                Some((b, i)) => {
                    self.scan_bucket = b;
                    self.scan_top = top;
                    self.direct_streak = 0;
                    (b, i)
                }
                None => {
                    // A whole year of buckets held nothing eligible: the
                    // next event is over a year ahead. Find it directly and
                    // jump the cursor there.
                    let mut best: Option<(u64, u64, usize, usize)> = None;
                    for (bi, bucket) in self.buckets.iter().enumerate() {
                        if let Some(i) = bucket.min_any() {
                            let cand = (bucket.times[i], bucket.seqs[i], bi, i);
                            if best.is_none_or(|x| (cand.0, cand.1) < (x.0, x.1)) {
                                best = Some(cand);
                            }
                        }
                    }
                    let (t, _seq, bi, i) = best.expect("len > 0 but no entry found");
                    self.scan_bucket = bi;
                    self.scan_top = self.top_of(t);
                    self.direct_streak += 1;
                    (bi, i)
                }
            };
            let time = self.buckets[b].times[i];
            let seq = self.buckets[b].seqs[i];
            // The located entry is the global minimum (live or tombstoned),
            // so every remaining entry is at or above its time: raise the
            // floor *before* the tombstone check. Raising it only on live
            // hits would leave a purge-advanced cursor with a stale floor —
            // a later push between floor and cursor would not rewind and
            // the scan would miss it.
            self.scan_floor = time;
            if tombs.remove(&seq) {
                let slot = self.buckets[b].swap_remove(i);
                self.release_slot(slot);
                self.len -= 1;
                // Purges shrink the population too: without this check a
                // heavily-cancelled queue would drain to empty while the
                // bucket array stayed at its high-water size.
                self.maybe_resize(tombs);
                continue;
            }
            if self.direct_streak >= DIRECT_STREAK_REHASH {
                // The width no longer matches the event spacing (every pop
                // is falling through to a full search): re-sample it.
                self.rehash(tombs);
                continue;
            }
            return Some((b, i));
        }
    }
}

impl<E> Fel<E> for CalendarFel<E> {
    fn new() -> Self {
        CalendarFel {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: vec![Bucket::default(); MIN_BUCKETS],
            mask: MIN_BUCKETS - 1,
            width: Self::INITIAL_WIDTH,
            len: 0,
            scan_bucket: 0,
            scan_top: Self::INITIAL_WIDTH,
            scan_floor: 0,
            direct_streak: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, time: SimTime, seq: u64, event: E, tombs: &mut SeqSet) {
        let t = time.as_nanos();
        let slot = self.alloc_slot(event);
        let b = self.bucket_of(t);
        self.buckets[b].push(t, seq, slot);
        self.len += 1;
        if t < self.scan_floor {
            // The cursor had advanced past this instant (e.g. a peek jumped
            // a sparse stretch): rewind it so the scan cannot miss the new
            // entry.
            self.scan_floor = t;
            self.scan_bucket = b;
            self.scan_top = self.top_of(t);
        }
        self.maybe_resize(tombs);
    }

    fn pop_min(&mut self, tombs: &mut SeqSet) -> Option<(SimTime, u64, E)> {
        let (b, i) = self.locate(tombs)?;
        let time = self.buckets[b].times[i];
        let seq = self.buckets[b].seqs[i];
        let slot = self.buckets[b].swap_remove(i);
        let event = self.release_slot(slot);
        self.len -= 1;
        self.maybe_resize(tombs);
        Some((SimTime::from_nanos(time), seq, event))
    }

    fn peek_min_time(&mut self, tombs: &mut SeqSet) -> Option<SimTime> {
        self.locate(tombs)
            .map(|(b, i)| SimTime::from_nanos(self.buckets[b].times[i]))
    }

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slab.capacity() * std::mem::size_of::<Option<E>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + self
                .buckets
                .iter()
                .map(Bucket::capacity_bytes)
                .sum::<usize>()
    }
}

/// The future event list: a priority queue of `(time, event)` pairs plus the
/// simulation clock.
///
/// The queue structure is pluggable ([`Fel`]); the default is the
/// [`CalendarFel`] calendar queue, with [`BinaryHeapFel`] available as the
/// differential-testing reference (`HeapScheduler` alias). Both yield the
/// identical `(time, seq)` total order.
///
/// Cancellation uses lazy deletion: cancelled keys go into a tombstone set
/// and the entry is discarded when it surfaces at the front of the queue
/// (the calendar queue additionally purges tombstones while resizing). This
/// keeps `cancel` O(1).
/// Cloning a scheduler (possible whenever the event type is `Clone`) deep-
/// copies the queue, clock, and tombstone sets, so a clone is an independent
/// resumable snapshot — the substrate of [`crate::checkpoint`].
#[derive(Debug, Clone)]
pub struct Scheduler<E, F: Fel<E> = CalendarFel<E>> {
    now: SimTime,
    fel: F,
    next_seq: u64,
    /// Seqs scheduled but neither fired nor cancelled yet.
    pending_keys: SeqSet,
    cancelled: SeqSet,
    scheduled_total: u64,
    executed_total: u64,
    cancelled_total: u64,
    _event: PhantomData<E>,
}

/// A scheduler running on the legacy binary-heap FEL, for differential
/// testing and before/after benchmarking against the calendar queue.
pub type HeapScheduler<E> = Scheduler<E, BinaryHeapFel<E>>;

impl<E, F: Fel<E>> Default for Scheduler<E, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, F: Fel<E>> Scheduler<E, F> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            fel: F::new(),
            next_seq: 0,
            pending_keys: SeqSet::default(),
            cancelled: SeqSet::default(),
            scheduled_total: 0,
            executed_total: 0,
            cancelled_total: 0,
            _event: PhantomData,
        }
    }

    /// The current simulated time (the timestamp of the event being handled,
    /// or zero before the first event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (causality violations are programming
    /// errors, never recoverable conditions) or if the local sequence space
    /// is exhausted — an exhausted local lane would silently collide into
    /// the remote lane and corrupt tie-break order, so the check is always
    /// on, not debug-only.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "attempted to schedule an event in the past ({at} < now {})",
            self.now
        );
        let seq = self.next_seq;
        assert!(
            seq < REMOTE_LANE,
            "local sequence space exhausted: seq would enter the remote lane \
             and corrupt tie-break order"
        );
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending_keys.insert(seq);
        self.fel.push(at, seq, event, &mut self.cancelled);
        EventKey(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` to fire at the current instant, after all events
    /// already scheduled for this instant.
    #[inline]
    pub fn schedule_now(&mut self, event: E) -> EventKey {
        self.schedule_at(self.now, event)
    }

    /// Schedules a cross-partition delivery on the remote lane.
    ///
    /// The event's tie-break key is `(at, sender, send_seq)` — intrinsic to
    /// the message, not to the insertion order — so a batch of same-timestamp
    /// deliveries from different senders fires in the same order no matter
    /// which epoch plan (or chunk boundary) carried them. Remote deliveries
    /// sort after all local events at the same instant.
    ///
    /// # Panics
    /// Panics if `at` is in the past, if `sender` does not fit in the
    /// remote-lane sender field, or (debug) on send-counter overflow.
    pub fn schedule_remote(&mut self, at: SimTime, sender: usize, send_seq: u64, event: E) {
        assert!(
            at >= self.now,
            "remote delivery violates causality ({at} < now {})",
            self.now
        );
        assert!(
            (sender as u64) <= MAX_SENDER,
            "sender partition id {sender} exceeds remote-lane capacity"
        );
        let seq = remote_seq(sender, send_seq);
        self.scheduled_total += 1;
        self.pending_keys.insert(seq);
        self.fel.push(at, seq, event, &mut self.cancelled);
    }

    /// Inserts a batch of remote deliveries, all from the same `sender`.
    ///
    /// Tie-break stability comes from the intrinsic `(sender, send_seq)` key,
    /// not from insertion order, so callers may hand over per-sender batches
    /// in any sender order and still get identical pop order.
    pub fn schedule_remote_batch(
        &mut self,
        sender: usize,
        batch: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) {
        for (at, send_seq, event) in batch {
            self.schedule_remote(at, sender, send_seq, event);
        }
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending, `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.pending_keys.remove(&key.0) {
            return false; // already fired, already cancelled, or never issued
        }
        self.cancelled.insert(key.0);
        self.cancelled_total += 1;
        true
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.fel.peek_min_time(&mut self.cancelled)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, seq, event) = self.fel.pop_min(&mut self.cancelled)?;
        debug_assert!(time >= self.now, "FEL yielded an event from the past");
        self.pending_keys.remove(&seq);
        self.now = time;
        self.executed_total += 1;
        Some((time, event))
    }

    /// Number of events currently pending. Exact: tombstoned (cancelled but
    /// not yet purged) entries are not counted.
    pub fn pending(&self) -> usize {
        self.pending_keys.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending_keys.is_empty()
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events executed (popped and not tombstoned).
    pub fn executed_total(&self) -> u64 {
        self.executed_total
    }

    /// Total events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Estimated resident bytes of the FEL and its bookkeeping (allocated
    /// capacity, not just live entries): the queue structure itself plus
    /// the pending-key and tombstone sets. The per-slot constant for the
    /// hash sets approximates hashbrown's 8-byte key + control byte at its
    /// steady-state load factor.
    ///
    /// The estimate is computed from container capacities, so for a fixed
    /// operation sequence it is deterministic across hosts — which is what
    /// lets the `pdes_scaling` bytes/host gate use a committed baseline.
    pub fn fel_bytes(&self) -> usize {
        const HASH_SLOT_BYTES: usize = 10;
        self.fel.approx_bytes()
            + (self.pending_keys.capacity() + self.cancelled.capacity()) * HASH_SLOT_BYTES
    }

    /// Forces the clock forward to `t` without executing anything.
    ///
    /// Used by the PDES engine at epoch barriers; panics if a pending event
    /// would be skipped or if `t` is in the past.
    pub fn advance_clock(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock may not move backwards");
        if let Some(head) = self.peek_time() {
            assert!(
                head >= t,
                "advance_clock({t}) would skip an event at {head}"
            );
        }
        self.now = t;
    }

    /// Test-only override of the local sequence counter, for exercising the
    /// sequence-space exhaustion check.
    #[cfg(test)]
    fn set_next_seq_for_test(&mut self, seq: u64) {
        self.next_seq = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(30), "c");
        s.schedule_at(SimTime::from_nanos(10), "a");
        s.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_nanos(30));
    }

    #[test]
    fn ties_fire_in_posting_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            s.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let k = s.schedule_at(SimTime::from_nanos(10), "dead");
        s.schedule_at(SimTime::from_nanos(20), "alive");
        assert!(s.cancel(k));
        assert!(!s.cancel(k), "double-cancel reports false");
        let (_, e) = s.pop().unwrap();
        assert_eq!(e, "alive");
        assert!(s.pop().is_none());
        assert_eq!(s.cancelled_total(), 1);
        assert_eq!(s.executed_total(), 1);
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let k = s.schedule_at(SimTime::from_nanos(10), "fired");
        s.pop();
        assert!(!s.cancel(k), "cancelling a fired event is a no-op");
        assert_eq!(s.cancelled_total(), 0);
        assert_eq!(
            s.scheduled_total(),
            s.executed_total() + s.cancelled_total()
        );
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut s: Scheduler<&str> = Scheduler::new();
        assert!(!s.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let k = s.schedule_at(SimTime::from_nanos(10), "dead");
        s.schedule_at(SimTime::from_nanos(20), "alive");
        s.cancel(k);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(20)));
    }

    /// Regression (scheduler accounting): `pending()` used to return a
    /// `len - tombstones` upper bound that still counted interior
    /// tombstones, inflating the kernel queue-depth metric. It now returns
    /// the exact live count.
    #[test]
    fn pending_excludes_interior_tombstones() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), 0);
        let dead = s.schedule_at(SimTime::from_nanos(20), 1);
        s.schedule_at(SimTime::from_nanos(30), 2);
        assert_eq!(s.pending(), 3);
        s.cancel(dead);
        // The tombstone sits in the interior of the queue, unpurged; the
        // count must not include it.
        assert_eq!(s.pending(), 2);
        s.pop();
        assert_eq!(s.pending(), 1);
        s.pop();
        assert_eq!(s.pending(), 0);
        assert!(s.is_empty());
    }

    /// Regression: the sequence-space exhaustion check must hold in release
    /// builds too — a local seq entering the remote lane would corrupt
    /// tie-break order silently.
    #[test]
    fn local_sequence_space_exhaustion_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.set_next_seq_for_test(REMOTE_LANE);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.schedule_at(SimTime::from_nanos(1), ());
        }));
        assert!(r.is_err(), "exhausted local lane must panic, not collide");
    }

    #[test]
    #[should_panic]
    fn scheduling_in_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), ());
        s.pop();
        s.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn schedule_now_runs_after_current_instant_peers() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), "first");
        let (_, e) = s.pop().unwrap();
        assert_eq!(e, "first");
        s.schedule_now("second");
        let (t, e) = s.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(10), "second"));
    }

    #[test]
    fn remote_lane_sorts_after_locals_and_by_sender_seq() {
        let t = SimTime::from_nanos(7);
        // Insert remote deliveries in scrambled order; locals afterwards.
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_remote(t, 2, 0, "r2.0");
        s.schedule_remote(t, 1, 1, "r1.1");
        s.schedule_at(t, "local0");
        s.schedule_remote(t, 1, 0, "r1.0");
        s.schedule_at(t, "local1");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["local0", "local1", "r1.0", "r1.1", "r2.0"]);
    }

    #[test]
    fn remote_tie_order_is_insertion_order_independent() {
        let t = SimTime::from_nanos(3);
        let mut forward: Scheduler<u32> = Scheduler::new();
        let mut backward: Scheduler<u32> = Scheduler::new();
        let msgs = [(0usize, 0u64, 10u32), (1, 0, 20), (2, 0, 30), (1, 1, 21)];
        for &(sender, seq, v) in &msgs {
            forward.schedule_remote(t, sender, seq, v);
        }
        for &(sender, seq, v) in msgs.iter().rev() {
            backward.schedule_remote(t, sender, seq, v);
        }
        let f: Vec<_> = std::iter::from_fn(|| forward.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| backward.pop()).collect();
        assert_eq!(f, b);
        assert_eq!(
            f.into_iter().map(|(_, v)| v).collect::<Vec<_>>(),
            vec![10, 20, 21, 30]
        );
    }

    #[test]
    fn remote_batch_matches_singles() {
        let t = SimTime::from_nanos(9);
        let mut batched: Scheduler<u32> = Scheduler::new();
        batched.schedule_remote_batch(4, vec![(t, 0, 1u32), (t, 1, 2), (t, 2, 3)]);
        let mut singles: Scheduler<u32> = Scheduler::new();
        for (seq, v) in [(2u64, 3u32), (0, 1), (1, 2)] {
            singles.schedule_remote(t, 4, seq, v);
        }
        let a: Vec<_> = std::iter::from_fn(|| batched.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| singles.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn remote_delivery_in_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), ());
        s.pop();
        s.schedule_remote(SimTime::from_nanos(5), 0, 0, ());
    }

    #[test]
    fn advance_clock_moves_time_when_safe() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance_clock(SimTime::from_nanos(100));
        assert_eq!(s.now(), SimTime::from_nanos(100));
    }

    #[test]
    #[should_panic]
    fn advance_clock_refuses_to_skip_events() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(50), ());
        s.advance_clock(SimTime::from_nanos(100));
    }

    // ---- calendar-queue specifics ----

    /// Deterministic pseudo-random offsets for structure-exercising tests.
    fn mix(state: &mut u64) -> u64 {
        *state = crate::rng::splitmix64(*state);
        *state
    }

    #[test]
    fn calendar_grows_and_drains_in_order() {
        let mut s: Scheduler<u64> = Scheduler::new();
        let mut st = 7u64;
        for i in 0..10_000u64 {
            s.schedule_at(SimTime::from_nanos(mix(&mut st) % 50_000_000), i);
        }
        let mut prev = (SimTime::ZERO, 0u64);
        let mut popped = 0u64;
        while let Some((t, v)) = s.pop() {
            assert!(t >= prev.0, "pop order must be time-monotone");
            if t == prev.0 && popped > 0 {
                assert!(v > prev.1, "ties must fire in posting order");
            }
            prev = (t, v);
            popped += 1;
        }
        assert_eq!(popped, 10_000);
        assert_eq!(s.executed_total(), 10_000);
    }

    #[test]
    fn calendar_handles_sparse_jumps_and_bursts() {
        let mut s: Scheduler<u64> = Scheduler::new();
        // Dense burst at t=0..100, then a lone event a full second later,
        // then another burst: exercises the direct-search jump and the
        // push-below-cursor rewind after a peek.
        for i in 0..64u64 {
            s.schedule_at(SimTime::from_nanos(i), i);
        }
        s.schedule_at(SimTime::from_secs(1), 1000);
        for _ in 0..64 {
            s.pop().unwrap();
        }
        // Peek jumps the cursor a year ahead...
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(1)));
        // ...then a push below the peeked instant must still pop first.
        s.schedule_at(SimTime::from_nanos(200), 2000);
        assert_eq!(s.pop().unwrap(), (SimTime::from_nanos(200), 2000));
        assert_eq!(s.pop().unwrap(), (SimTime::from_secs(1), 1000));
        assert!(s.pop().is_none());
    }

    #[test]
    fn calendar_shrinks_after_heavy_cancellation() {
        let mut s: Scheduler<u64> = Scheduler::new();
        let keys: Vec<_> = (0..4096u64)
            .map(|i| s.schedule_at(SimTime::from_nanos(i * 10), i))
            .collect();
        for k in &keys[64..] {
            s.cancel(*k);
        }
        let grown = s.fel_bytes();
        // Drain the survivors; resize rehashes purge the tombstones and the
        // bucket array shrinks back toward its floor.
        let mut seen = 0;
        while s.pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 64);
        assert_eq!(
            s.scheduled_total(),
            s.executed_total() + s.cancelled_total()
        );
        assert!(
            s.fel_bytes() <= grown,
            "drained queue must not keep growing"
        );
    }

    /// Checkpoint/restore: a deep clone of a populated calendar queue
    /// (interior tombstones, remote-lane entries, mid-scan cursor) drains
    /// bit-identically to the original.
    #[test]
    fn calendar_clone_is_a_faithful_snapshot() {
        let mut s: Scheduler<u64> = Scheduler::new();
        let mut st = 11u64;
        let keys: Vec<_> = (0..2000u64)
            .map(|i| s.schedule_at(SimTime::from_nanos(mix(&mut st) % 1_000_000), i))
            .collect();
        for k in keys.iter().step_by(3) {
            s.cancel(*k);
        }
        s.schedule_remote(SimTime::from_millis(2), 3, 0, 9999);
        for _ in 0..500 {
            s.pop();
        }
        let mut snapshot = s.clone();
        let rest_original: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
        let rest_snapshot: Vec<_> = std::iter::from_fn(|| snapshot.pop()).collect();
        assert_eq!(rest_original, rest_snapshot);
        assert_eq!(s.executed_total(), snapshot.executed_total());
        assert_eq!(s.pending(), 0);
    }
}
