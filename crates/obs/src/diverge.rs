//! Accuracy-divergence metrics between a ground-truth run and an
//! approximate (hybrid) run of the same workload.
//!
//! The paper trades packet-level fidelity for speed and argues the trade
//! at the distribution level (§6.1): per-packet comparisons are
//! meaningless once TCP reacts to imperfect predictions, but drop rates
//! and latency CDFs must stay close. This module holds the statistical
//! kernels (two-sample Kolmogorov–Smirnov and 1-Wasserstein distances,
//! previously duplicated in the test suite) plus the serializable
//! [`DivergenceReport`] the audit driver produces and the ledger embeds.
//! The numeric default bounds mirror the differential suite in
//! `tests/oracle_cache.rs`, so "audit passes" and "the accuracy tests
//! pass" mean the same thing.

use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;

/// Two-sample Kolmogorov–Smirnov distance over raw (unsorted) samples:
/// the maximum absolute gap between the two empirical CDFs. 0 means
/// identical, 1 means disjoint supports; either side empty reports 1.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let a = crate::hist::EmpiricalCdf::from_samples(a);
    let b = crate::hist::EmpiricalCdf::from_samples(b);
    a.ks_distance(&b)
}

/// 1-Wasserstein (earth-mover) distance over raw samples, computed as the
/// integral of |F_a − F_b| over the value axis. Unlike KS it weights mass
/// shifts by how far the value actually moved, which makes it the sharper
/// bound for near-atomic latency distributions. Either side empty
/// reports +inf.
pub fn wasserstein1(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let mut xs: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    xs.sort_by(f64::total_cmp);
    let cdf = |v: &[f64], x: f64| v.partition_point(|&s| s <= x) as f64 / v.len() as f64;
    xs.windows(2)
        .map(|w| (cdf(&a, w[0]) - cdf(&b, w[0])).abs() * (w[1] - w[0]))
        .sum()
}

/// Acceptable divergence between a ground-truth and an approximate run.
///
/// Defaults match the differential accuracy suite (`tests/oracle_cache.rs`):
/// drop rate within 1% absolute, latency KS below 0.35, mean-normalized
/// 1-Wasserstein distance below 0.05.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DivergenceBounds {
    /// Maximum |drop_rate_truth − drop_rate_approx| (absolute).
    pub max_drop_rate_error: f64,
    /// Maximum latency-CDF Kolmogorov–Smirnov distance.
    pub max_ks: f64,
    /// Maximum W1 distance normalized by the ground-truth mean.
    pub max_w1_ratio: f64,
}

impl Default for DivergenceBounds {
    fn default() -> Self {
        DivergenceBounds {
            max_drop_rate_error: 0.01,
            max_ks: 0.35,
            max_w1_ratio: 0.05,
        }
    }
}

/// One attribution row: a quantity observed in both runs, keyed by the
/// axis it is attributed to (macro regime, topology layer, or oracle
/// subsystem).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftRow {
    /// Attribution axis: `"regime"`, `"layer"`, or `"oracle"`.
    pub axis: String,
    /// Key within the axis (e.g. `"tor_drops"`, `"regime2"`, `"cache_hits"`).
    pub key: String,
    /// The ground-truth run's value (NaN when the axis only exists on the
    /// approximate side, e.g. oracle cache counters).
    pub truth: f64,
    /// The approximate run's value.
    pub approx: f64,
}

impl DriftRow {
    /// Absolute difference, 0 when the truth side is absent (NaN).
    pub fn abs_error(&self) -> f64 {
        if self.truth.is_nan() {
            0.0
        } else {
            (self.approx - self.truth).abs()
        }
    }
}

/// A compact, serializable histogram summary (quantiles + mean + count)
/// for embedding in ledgers without shipping raw bucket arrays.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LogHistogram) -> Self {
        HistSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
        }
    }
}

/// The audit driver's verdict: how far an approximate run diverged from
/// ground truth on the same compiled scenario and seed, and where.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Completed flows in the ground-truth run (restricted to the
    /// audited cluster's traffic).
    pub flows_truth: u64,
    /// Completed flows in the approximate run.
    pub flows_approx: u64,
    /// Flows completed by both runs (joined on flow id).
    pub flows_matched: u64,
    /// Ground-truth packet drop fraction (drops / (drops + deliveries)).
    pub drop_rate_truth: f64,
    /// Approximate-run packet drop fraction.
    pub drop_rate_approx: f64,
    /// KS distance between the matched flows' FCT distributions.
    pub fct_ks: f64,
    /// 1-Wasserstein distance between the FCT distributions, seconds.
    pub fct_w1_seconds: f64,
    /// Ground-truth mean FCT over matched flows, seconds (W1 normalizer).
    pub fct_mean_truth_seconds: f64,
    /// KS distance between the in-scope RTT sample distributions.
    pub rtt_ks: f64,
    /// Per-flow |relative FCT error| distribution over matched flows.
    pub abs_rel_error: HistSummary,
    /// Signed mean relative FCT error (positive = approximate runs slow).
    pub signed_mean_rel_error: f64,
    /// Attribution rows along the regime / layer / oracle axes.
    pub slices: Vec<DriftRow>,
    /// The bounds this report was gated against.
    pub bounds: DivergenceBounds,
}

impl DivergenceReport {
    /// Absolute drop-rate error.
    pub fn drop_rate_error(&self) -> f64 {
        (self.drop_rate_approx - self.drop_rate_truth).abs()
    }

    /// Mean-normalized 1-Wasserstein distance.
    pub fn w1_ratio(&self) -> f64 {
        if self.fct_mean_truth_seconds <= 0.0 {
            if self.fct_w1_seconds == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.fct_w1_seconds / self.fct_mean_truth_seconds
        }
    }

    /// Every bound this report breaches, as human-readable diagnostics.
    pub fn breaches(&self) -> Vec<String> {
        let mut out = Vec::new();
        let b = &self.bounds;
        if self.flows_matched == 0 {
            out.push("no matched flows between truth and approximate runs".to_string());
        }
        if self.drop_rate_error() > b.max_drop_rate_error {
            out.push(format!(
                "drop-rate error {:.4} exceeds bound {:.4}",
                self.drop_rate_error(),
                b.max_drop_rate_error
            ));
        }
        if self.fct_ks > b.max_ks {
            out.push(format!(
                "FCT KS distance {:.3} exceeds bound {:.3}",
                self.fct_ks, b.max_ks
            ));
        }
        if self.w1_ratio() > b.max_w1_ratio {
            out.push(format!(
                "normalized W1 distance {:.4} exceeds bound {:.4}",
                self.w1_ratio(),
                b.max_w1_ratio
            ));
        }
        out
    }

    /// True when every divergence metric sits within bounds.
    pub fn within_bounds(&self) -> bool {
        self.breaches().is_empty()
    }

    /// Renders the terminal divergence table.
    pub fn to_table(&self) -> String {
        let b = &self.bounds;
        let mut out = String::new();
        out.push_str("== divergence: ground truth vs approximate ==\n");
        out.push_str(&format!(
            "flows            truth {:>8}  approx {:>8}  matched {:>8}\n",
            self.flows_truth, self.flows_approx, self.flows_matched
        ));
        out.push_str(&format!(
            "drop rate        truth {:>8.5}  approx {:>8.5}  |err| {:.5} (bound {:.5})\n",
            self.drop_rate_truth,
            self.drop_rate_approx,
            self.drop_rate_error(),
            b.max_drop_rate_error
        ));
        out.push_str(&format!(
            "fct KS           {:.4} (bound {:.4})\n",
            self.fct_ks, b.max_ks
        ));
        out.push_str(&format!(
            "fct W1 / mean    {:.4} (bound {:.4})   [W1 {:.3e}s, mean {:.3e}s]\n",
            self.w1_ratio(),
            b.max_w1_ratio,
            self.fct_w1_seconds,
            self.fct_mean_truth_seconds
        ));
        out.push_str(&format!("rtt KS           {:.4}\n", self.rtt_ks));
        let e = &self.abs_rel_error;
        out.push_str(&format!(
            "|rel fct err|    p50 {:.4}  p90 {:.4}  p99 {:.4}  mean {:.4}  bias {:+.4}\n",
            e.p50, e.p90, e.p99, e.mean, self.signed_mean_rel_error
        ));
        if !self.slices.is_empty() {
            out.push_str("-- attribution --\n");
            out.push_str(&format!(
                "{:<8} {:<24} {:>14} {:>14}\n",
                "axis", "key", "truth", "approx"
            ));
            for s in &self.slices {
                let truth = if s.truth.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.6}", s.truth)
                };
                out.push_str(&format!(
                    "{:<8} {:<24} {:>14} {:>14.6}\n",
                    s.axis, s.key, truth, s.approx
                ));
            }
        }
        let breaches = self.breaches();
        if breaches.is_empty() {
            out.push_str("verdict          within bounds\n");
        } else {
            for br in &breaches {
                out.push_str(&format!("BREACH           {br}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_and_w1_agree_with_known_values() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [3.0, 4.0, 5.0, 6.0];
        assert!((ks_distance(&a, &b) - 0.5).abs() < 1e-12);
        // Uniform shift by 2 → W1 = 2.
        assert!((wasserstein1(&a, &b) - 2.0).abs() < 1e-12);
        assert_eq!(ks_distance(&a, &a), 0.0);
        assert_eq!(wasserstein1(&a, &a), 0.0);
    }

    #[test]
    fn empty_samples_degrade_not_panic() {
        assert_eq!(ks_distance(&[], &[1.0]), 1.0);
        assert!(wasserstein1(&[], &[1.0]).is_infinite());
    }

    #[test]
    fn report_gates_on_bounds() {
        let mut r = DivergenceReport {
            flows_matched: 10,
            flows_truth: 10,
            flows_approx: 10,
            drop_rate_truth: 0.010,
            drop_rate_approx: 0.012,
            fct_ks: 0.1,
            fct_w1_seconds: 1e-5,
            fct_mean_truth_seconds: 1e-3,
            rtt_ks: 0.1,
            ..Default::default()
        };
        assert!(r.within_bounds(), "breaches: {:?}", r.breaches());
        r.fct_ks = 0.9;
        assert!(!r.within_bounds());
        assert!(r.breaches().iter().any(|b| b.contains("KS")));
        r.fct_ks = 0.1;
        r.drop_rate_approx = 0.5;
        assert!(r.breaches().iter().any(|b| b.contains("drop-rate")));
    }

    #[test]
    fn zero_matched_flows_is_a_breach() {
        let r = DivergenceReport::default();
        assert!(!r.within_bounds());
        assert!(r.breaches().iter().any(|b| b.contains("no matched flows")));
    }

    #[test]
    fn table_mentions_key_figures() {
        let mut r = DivergenceReport {
            flows_matched: 3,
            flows_truth: 3,
            flows_approx: 3,
            fct_mean_truth_seconds: 1e-3,
            ..Default::default()
        };
        r.slices.push(DriftRow {
            axis: "layer".into(),
            key: "tor_drops".into(),
            truth: 5.0,
            approx: 6.0,
        });
        r.slices.push(DriftRow {
            axis: "oracle".into(),
            key: "cache_hits".into(),
            truth: f64::NAN,
            approx: 100.0,
        });
        let t = r.to_table();
        assert!(t.contains("drop rate"));
        assert!(t.contains("tor_drops"));
        assert!(t.contains("cache_hits"));
        assert!(t.contains("within bounds"));
    }

    #[test]
    fn report_serde_round_trips() {
        let r = DivergenceReport {
            flows_matched: 7,
            fct_ks: 0.25,
            slices: vec![DriftRow {
                axis: "regime".into(),
                key: "calm".into(),
                truth: 1.0,
                approx: 2.0,
            }],
            ..Default::default()
        };
        let json = serde_json::to_string(&r).expect("serializes");
        let back: DivergenceReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.flows_matched, 7);
        assert_eq!(back.slices.len(), 1);
        assert!((back.fct_ks - 0.25).abs() < 1e-12);
        assert_eq!(back.bounds, r.bounds);
    }
}
