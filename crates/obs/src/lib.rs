//! Observability for the elephant workspace: a global low-overhead
//! metrics registry, a hierarchical phase profiler, shared statistics
//! kernels (histograms / CDFs / running summaries), and exportable run
//! reports.
//!
//! This crate is a dependency root (alongside `elephant-des`): every other
//! crate may depend on it, and it depends only on the serde shims. Metric
//! names follow the `subsystem/area/metric` convention documented in
//! DESIGN.md — e.g. `des/kernel/events_executed`,
//! `pdes/epoch/barrier_wait`, `net/port/drops`, `hybrid/oracle/infer`.

pub mod diverge;
pub mod hist;
pub mod profile;
pub mod registry;
pub mod report;
pub mod timeline;

pub use diverge::{
    ks_distance, wasserstein1, DivergenceBounds, DivergenceReport, DriftRow, HistSummary,
};
pub use hist::{EmpiricalCdf, LogHistogram, Summary};
pub use profile::{profiler, render_tree, span, tree_from_rows, ProfileNode, Profiler, SpanGuard};
pub use registry::{
    counter, enabled, gauge, histogram, registry, set_enabled, Counter, Gauge, HistogramHandle,
    Registry,
};
pub use report::{MetricRow, PartitionRow, ProfileRow, RunReport};
pub use timeline::{
    set_timeline_enabled, timeline, timeline_enabled, ArgValue, Timeline, TimelineWriter,
    TracePhase, TraceRecord, MAX_TIMELINE_RECORDS, PID_FLOWS, PID_PDES, PID_RECOVERY, PID_SAMPLES,
};

#[cfg(test)]
pub(crate) mod testutil {
    //! The global enabled flag is process-wide state; unit tests that flip
    //! it serialize on one mutex and restore the previous value on drop.
    use std::sync::{Mutex, MutexGuard};

    static FLAG_LOCK: Mutex<()> = Mutex::new(());

    pub struct EnableScope(bool, #[allow(dead_code)] MutexGuard<'static, ()>);

    impl EnableScope {
        pub fn with(on: bool) -> Self {
            let guard = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let prev = crate::registry::enabled();
            crate::registry::set_enabled(on);
            EnableScope(prev, guard)
        }

        pub fn new() -> Self {
            Self::with(true)
        }
    }

    impl Drop for EnableScope {
        fn drop(&mut self) {
            crate::registry::set_enabled(self.0);
        }
    }
}
