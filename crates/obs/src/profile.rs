//! Scoped wall-time profiling with hierarchical aggregation.
//!
//! [`span`] returns an RAII guard; while it lives, further spans on the
//! same thread nest under it. On drop, the elapsed wall time is added to a
//! global aggregate keyed by the `/`-joined path of active span names —
//! e.g. `pdes/epoch/barrier_wait` — so repeated scopes accumulate counts
//! and totals rather than producing a trace. Collection follows the global
//! observability switch ([`crate::set_enabled`]); a disabled span is a
//! no-op guard.
//!
//! Span names should be short static segments (`epoch`, `infer`,
//! `backward`); the subsystem prefix comes from the outermost span.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::registry::enabled;
use crate::report::ProfileRow;

#[derive(Clone, Copy, Debug, Default)]
struct Agg {
    count: u64,
    total_ns: u128,
}

/// Global accumulator of span timings, keyed by hierarchical path.
#[derive(Default)]
pub struct Profiler {
    paths: Mutex<BTreeMap<String, Agg>>,
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

impl Profiler {
    fn add(&self, path: String, elapsed_ns: u128) {
        let mut map = self.paths.lock().expect("profiler lock");
        let agg = map.entry(path).or_default();
        agg.count += 1;
        agg.total_ns += elapsed_ns;
    }

    /// Discards all aggregated timings.
    pub fn reset(&self) {
        self.paths.lock().expect("profiler lock").clear();
    }

    /// Flat rows sorted by path (parents sort before children).
    pub fn snapshot(&self) -> Vec<ProfileRow> {
        self.paths
            .lock()
            .expect("profiler lock")
            .iter()
            .map(|(path, agg)| ProfileRow {
                path: path.clone(),
                count: agg.count,
                seconds: agg.total_ns as f64 * 1e-9,
            })
            .collect()
    }

    /// The aggregate tree, children ordered by path.
    pub fn tree(&self) -> Vec<ProfileNode> {
        tree_from_rows(&self.snapshot())
    }
}

/// The process-wide profiler.
pub fn profiler() -> &'static Profiler {
    static PROFILER: OnceLock<Profiler> = OnceLock::new();
    PROFILER.get_or_init(Profiler::default)
}

/// An active profiling scope; dropping it records the elapsed time.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanGuard {
    /// `None` when profiling was disabled at entry (no-op guard).
    armed: Option<(String, Instant)>,
    /// Ties the guard to its thread: the span stack is thread-local.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` nested under the thread's active spans.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            armed: None,
            _not_send: PhantomData,
        };
    }
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join("/")
    });
    SpanGuard {
        armed: Some((path, Instant::now())),
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((path, start)) = self.armed.take() {
            let elapsed = start.elapsed().as_nanos();
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
            profiler().add(path, elapsed);
        }
    }
}

/// One node of the aggregated span tree.
#[derive(Clone, Debug)]
pub struct ProfileNode {
    /// Last path segment (span name).
    pub name: String,
    /// Times this exact path was entered.
    pub count: u64,
    /// Total wall time spent in this path (including children).
    pub seconds: f64,
    /// Nested spans.
    pub children: Vec<ProfileNode>,
}

/// Rebuilds the span tree from flat rows (as stored in a [`crate::RunReport`]).
pub fn tree_from_rows(rows: &[ProfileRow]) -> Vec<ProfileNode> {
    let mut roots: Vec<ProfileNode> = Vec::new();
    for row in rows {
        let mut level = &mut roots;
        let segments: Vec<&str> = row.path.split('/').collect();
        for (depth, seg) in segments.iter().enumerate() {
            let pos = match level.iter().position(|n| n.name == *seg) {
                Some(p) => p,
                None => {
                    level.push(ProfileNode {
                        name: (*seg).to_string(),
                        count: 0,
                        seconds: 0.0,
                        children: Vec::new(),
                    });
                    level.len() - 1
                }
            };
            if depth == segments.len() - 1 {
                level[pos].count = row.count;
                level[pos].seconds = row.seconds;
            }
            level = &mut level[pos].children;
        }
    }
    roots
}

/// Renders the tree as an indented table (name, count, total, share of
/// parent), suitable for terminal output.
pub fn render_tree(nodes: &[ProfileNode]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>10} {:>12} {:>7}\n",
        "span", "count", "total", "share"
    ));
    fn walk(nodes: &[ProfileNode], depth: usize, parent_secs: Option<f64>, out: &mut String) {
        for n in nodes {
            let label = format!("{}{}", "  ".repeat(depth), n.name);
            let share = match parent_secs {
                Some(p) if p > 0.0 => format!("{:.1}%", 100.0 * n.seconds / p),
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<40} {:>10} {:>12} {:>7}\n",
                label,
                n.count,
                format_secs(n.seconds),
                share
            ));
            walk(&n.children, depth + 1, Some(n.seconds), out);
        }
    }
    walk(nodes, 0, None, &mut out);
    out
}

fn format_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::EnableScope;

    #[test]
    fn nested_spans_aggregate_by_path() {
        let _on = EnableScope::new();
        profiler().reset();
        {
            let _outer = span("outer_agg");
            for _ in 0..3 {
                let _inner = span("inner");
                std::hint::black_box(0u64);
            }
        }
        let rows = profiler().snapshot();
        let outer = rows
            .iter()
            .find(|r| r.path == "outer_agg")
            .expect("outer row");
        let inner = rows
            .iter()
            .find(|r| r.path == "outer_agg/inner")
            .expect("inner row");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(outer.seconds >= inner.seconds, "parent includes child time");

        let tree = profiler().tree();
        let node = tree
            .iter()
            .find(|n| n.name == "outer_agg")
            .expect("tree root");
        assert_eq!(node.children.len(), 1);
        assert_eq!(node.children[0].name, "inner");
        assert_eq!(node.children[0].count, 3);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _off = EnableScope::with(false);
        profiler().reset();
        {
            let _s = span("disabled_root");
        }
        assert!(profiler()
            .snapshot()
            .iter()
            .all(|r| r.path != "disabled_root"));
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let _on = EnableScope::new();
        profiler().reset();
        {
            let _a = span("sib_a");
        }
        {
            let _b = span("sib_b");
        }
        let rows = profiler().snapshot();
        assert!(rows.iter().any(|r| r.path == "sib_a"));
        assert!(rows.iter().any(|r| r.path == "sib_b"));
        assert!(rows.iter().all(|r| r.path != "sib_a/sib_b"));
    }

    #[test]
    fn render_tree_mentions_every_span() {
        let _on = EnableScope::new();
        profiler().reset();
        {
            let _a = span("render_root");
            let _b = span("child");
        }
        let text = render_tree(&profiler().tree());
        assert!(text.contains("render_root"));
        assert!(text.contains("  child"));
    }
}
