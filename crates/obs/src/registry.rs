//! A global, cheap, thread-safe metrics registry.
//!
//! Metrics are addressed by a static name (following the
//! `subsystem/area/metric` convention) plus a free-form label (e.g. a
//! partition index, a switch tier). Handles are cheap clones of shared
//! atomics; the hot-path record operations check one relaxed global flag
//! and are no-ops while observability is disabled (the default), so
//! instrumented code costs a load+branch per site in normal runs.
//!
//! ```
//! let events = elephant_obs::counter("des/kernel/events_executed", "");
//! elephant_obs::set_enabled(true);
//! events.inc();
//! assert_eq!(events.get(), 1);
//! elephant_obs::set_enabled(false);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::LogHistogram;
use crate::report::MetricRow;

/// Global observability switch shared by the registry and the profiler.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off globally (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1 (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous-level handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level (no-op while disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (no-op while disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Records `v` only if it exceeds the current level (high-watermark).
    #[inline]
    pub fn record_max(&self, v: i64) {
        if enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram handle (mutex-guarded; keep off per-event
/// fast paths — record into it at batch boundaries where possible).
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Mutex<LogHistogram>>);

impl HistogramHandle {
    /// Records one observation (no-op while disabled). A poisoned lock —
    /// another thread panicked mid-record — drops the sample and bumps
    /// `obs/hist/poisoned` instead of propagating the panic: one crashed
    /// worker must not take the whole metrics pipeline down with it.
    #[inline]
    pub fn record(&self, x: f64) {
        if enabled() {
            match self.0.lock() {
                Ok(mut h) => h.record(x),
                Err(_) => counter("obs/hist/poisoned", "").inc(),
            }
        }
    }

    /// A point-in-time copy of the underlying histogram. A poisoned lock
    /// yields the histogram as the panicking thread left it (bucket counts
    /// are updated atomically enough for reporting — each `record` is a
    /// single-threaded mutation under the lock).
    pub fn snapshot(&self) -> LogHistogram {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

type Key = (&'static str, String);

/// The process-wide metric store behind [`counter`]/[`gauge`]/[`histogram`].
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<Key, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Mutex<LogHistogram>>>>,
}

impl Registry {
    /// The counter registered under `(name, label)`, created on first use.
    pub fn counter(&self, name: &'static str, label: impl Into<String>) -> Counter {
        let mut map = self.counters.lock().expect("registry lock");
        Counter(Arc::clone(map.entry((name, label.into())).or_default()))
    }

    /// The gauge registered under `(name, label)`, created on first use.
    pub fn gauge(&self, name: &'static str, label: impl Into<String>) -> Gauge {
        let mut map = self.gauges.lock().expect("registry lock");
        Gauge(Arc::clone(map.entry((name, label.into())).or_default()))
    }

    /// The histogram registered under `(name, label)`, created on first use
    /// with latency-in-seconds geometry (10 ns .. 100 s).
    pub fn histogram(&self, name: &'static str, label: impl Into<String>) -> HistogramHandle {
        let mut map = self.histograms.lock().expect("registry lock");
        HistogramHandle(Arc::clone(map.entry((name, label.into())).or_insert_with(
            || Arc::new(Mutex::new(LogHistogram::for_latency_seconds())),
        )))
    }

    /// Zeroes every counter/gauge and empties every histogram, keeping
    /// registrations (existing handles stay valid).
    pub fn reset(&self) {
        for c in self.counters.lock().expect("registry lock").values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().expect("registry lock").values() {
            g.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.lock().expect("registry lock").values() {
            *h.lock().unwrap_or_else(|p| p.into_inner()) = LogHistogram::for_latency_seconds();
        }
    }

    /// All metrics as report rows, sorted by (name, label); empty metrics
    /// (zero counters, empty histograms) are skipped.
    pub fn snapshot(&self) -> Vec<MetricRow> {
        let mut rows = Vec::new();
        for ((name, label), c) in self.counters.lock().expect("registry lock").iter() {
            let v = c.load(Ordering::Relaxed);
            if v != 0 {
                rows.push(MetricRow::counter(name, label, v));
            }
        }
        for ((name, label), g) in self.gauges.lock().expect("registry lock").iter() {
            let v = g.load(Ordering::Relaxed);
            if v != 0 {
                rows.push(MetricRow::gauge(name, label, v));
            }
        }
        for ((name, label), h) in self.histograms.lock().expect("registry lock").iter() {
            let h = h.lock().unwrap_or_else(|p| p.into_inner());
            if h.count() != 0 {
                rows.push(MetricRow::histogram(name, label, &h));
            }
        }
        rows.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        rows
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand for `registry().counter(..)`.
pub fn counter(name: &'static str, label: impl Into<String>) -> Counter {
    registry().counter(name, label)
}

/// Shorthand for `registry().gauge(..)`.
pub fn gauge(name: &'static str, label: impl Into<String>) -> Gauge {
    registry().gauge(name, label)
}

/// Shorthand for `registry().histogram(..)`.
pub fn histogram(name: &'static str, label: impl Into<String>) -> HistogramHandle {
    registry().histogram(name, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::EnableScope;

    #[test]
    fn disabled_metrics_record_nothing() {
        let _off = EnableScope::with(false);
        let reg = Registry::default();
        let c = reg.counter("test/disabled/counter", "");
        let h = reg.histogram("test/disabled/hist", "");
        c.add(100);
        h.record(1e-3);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn same_key_shares_storage() {
        let _on = EnableScope::new();
        let reg = Registry::default();
        let a = reg.counter("test/shared/counter", "x");
        let b = reg.counter("test/shared/counter", "x");
        let other = reg.counter("test/shared/counter", "y");
        a.inc();
        b.inc();
        other.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn gauge_tracks_levels_and_high_watermark() {
        let _on = EnableScope::new();
        let reg = Registry::default();
        let g = reg.gauge("test/gauge/level", "");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn snapshot_rows_are_sorted_and_typed() {
        let _on = EnableScope::new();
        let reg = Registry::default();
        reg.counter("test/b", "").inc();
        reg.counter("test/a", "1").add(3);
        reg.histogram("test/c", "").record(1e-3);
        let rows = reg.snapshot();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "test/a");
        assert_eq!(rows[1].name, "test/b");
        assert_eq!(rows[2].kind, "histogram");
        assert_eq!(rows[2].count, 1);
        assert!(rows[2].p50 > 0.0);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _on = EnableScope::new();
        let reg = Registry::default();
        let c = reg.counter("test/reset/counter", "");
        c.add(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn poisoned_histogram_degrades_instead_of_panicking() {
        let _on = EnableScope::new();
        let reg = Registry::default();
        let h = reg.histogram("test/poisoned/hist", "");
        h.record(1e-3);
        // Poison the lock: a thread panics while holding it.
        let h2 = h.clone();
        let _ = std::thread::spawn(move || {
            let _guard = h2.0.lock().expect("not yet poisoned");
            panic!("poison the histogram lock");
        })
        .join();
        let before = crate::registry::counter("obs/hist/poisoned", "").get();
        // record: sample dropped, counter bumped, no panic.
        h.record(2e-3);
        let after = crate::registry::counter("obs/hist/poisoned", "").get();
        assert_eq!(after, before + 1, "dropped sample counted");
        // snapshot: recovers the pre-poison contents, no panic.
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1, "poisoned record dropped, earlier kept");
        // The registry-wide snapshot path tolerates the poisoned lock too.
        let rows = reg.snapshot();
        assert!(rows
            .iter()
            .any(|r| r.name == "test/poisoned/hist" && r.count == 1));
        reg.reset();
        assert_eq!(h.snapshot().count(), 0, "reset survives poisoning");
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let _on = EnableScope::new();
        let reg = Registry::default();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = reg.counter("test/concurrent/counter", "");
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(
            reg.counter("test/concurrent/counter", "").get(),
            threads * per_thread
        );
    }
}
