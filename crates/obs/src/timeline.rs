//! Causal timeline recorder with Chrome-trace/Perfetto export.
//!
//! The registry (`registry.rs`) answers "how much, in total"; this module
//! answers "when". Subsystems record [`TraceRecord`]s — complete slices,
//! instant events, and counter samples — onto one process-wide
//! [`Timeline`], and [`TimelineWriter`] serializes the result as a Chrome
//! trace-event JSON file loadable in `chrome://tracing` or
//! [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! Two clock domains coexist in one export, kept apart as separate trace
//! *processes* (`pid`s):
//!
//! * **wall time** ([`PID_PDES`]): PDES partition tracks, one `tid` per
//!   partition, timestamped in microseconds since the runner started.
//!   Slices show each epoch's `work` / `barrier_wait` / `marshal` phases.
//! * **sim time** ([`PID_FLOWS`], [`PID_SAMPLES`]): flow spans, drop and
//!   oracle-verdict instants, and periodic sampler counter tracks,
//!   timestamped in simulated microseconds.
//!
//! The recorder follows the workspace's zero-cost-when-disabled
//! discipline: its enabled flag is independent of the metrics registry's
//! (so either can be exercised alone), record sites are expected to
//! branch on [`timeline_enabled`] (a relaxed atomic load) before building
//! a record, and hot loops batch locally and flush once via
//! [`Timeline::record_batch`]. Wall-clock stamps never feed back into
//! simulated time, so recording cannot perturb simulation results.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Trace process id for wall-clock PDES partition tracks.
pub const PID_PDES: u32 = 1;
/// Trace process id for sim-time flow spans and drop/oracle/guard instants.
pub const PID_FLOWS: u32 = 2;
/// Trace process id for sim-time sampler counter tracks.
pub const PID_SAMPLES: u32 = 3;
/// Trace process id for recovery-driver instants (checkpoints taken,
/// restores, degradation-ladder transitions), stamped in sim time.
pub const PID_RECOVERY: u32 = 4;

/// Hard cap on retained records; further records are counted as dropped.
/// Generous for real runs (a record is ~100 bytes) while bounding memory
/// if a caller leaves the timeline enabled across many runs.
pub const MAX_TIMELINE_RECORDS: usize = 1 << 22;

static TIMELINE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns timeline recording on or off process-wide.
pub fn set_timeline_enabled(on: bool) {
    TIMELINE_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the timeline is recording. A relaxed load so record sites can
/// branch on it in hot paths for effectively zero disabled cost.
#[inline]
pub fn timeline_enabled() -> bool {
    TIMELINE_ENABLED.load(Ordering::Relaxed)
}

/// The Chrome trace-event phase of a record.
#[derive(Clone, Debug, PartialEq)]
pub enum TracePhase {
    /// A slice with a duration (`ph: "X"`).
    Complete {
        /// Slice duration in microseconds.
        dur_us: f64,
    },
    /// A zero-duration marker (`ph: "i"`, thread scope).
    Instant,
    /// A counter sample (`ph: "C"`); series come from the record's args.
    Counter,
}

/// An argument value attached to a trace record.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument (non-finite values serialize as 0).
    F64(f64),
    /// String argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// One timeline event: a slice, instant, or counter sample on a
/// (`pid`, `tid`) track, timestamped in microseconds of its process's
/// clock domain (wall or sim — see the module docs).
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Event name (slice label, instant label, or counter track name).
    pub name: Cow<'static, str>,
    /// Category tag (Chrome trace `cat`), used for filtering in the UI.
    pub cat: &'static str,
    /// Trace process id — selects the clock domain and track group.
    pub pid: u32,
    /// Track id within the process (partition index, flow slot, ...).
    pub tid: u64,
    /// Timestamp in microseconds (wall or sim, per `pid`).
    pub ts_us: f64,
    /// Phase: complete slice, instant, or counter.
    pub phase: TracePhase,
    /// Named arguments; for counters, each arg is one plotted series.
    pub args: Vec<(Cow<'static, str>, ArgValue)>,
}

impl TraceRecord {
    /// A complete slice of `dur_us` microseconds starting at `ts_us`.
    pub fn complete(
        pid: u32,
        tid: u64,
        name: impl Into<Cow<'static, str>>,
        ts_us: f64,
        dur_us: f64,
    ) -> Self {
        TraceRecord {
            name: name.into(),
            cat: "span",
            pid,
            tid,
            ts_us,
            phase: TracePhase::Complete { dur_us },
            args: Vec::new(),
        }
    }

    /// A zero-duration instant marker at `ts_us`.
    pub fn instant(pid: u32, tid: u64, name: impl Into<Cow<'static, str>>, ts_us: f64) -> Self {
        TraceRecord {
            name: name.into(),
            cat: "instant",
            pid,
            tid,
            ts_us,
            phase: TracePhase::Instant,
            args: Vec::new(),
        }
    }

    /// A counter sample at `ts_us`; add one arg per plotted series.
    pub fn counter(pid: u32, name: impl Into<Cow<'static, str>>, ts_us: f64) -> Self {
        TraceRecord {
            name: name.into(),
            cat: "counter",
            pid,
            tid: 0,
            ts_us,
            phase: TracePhase::Counter,
            args: Vec::new(),
        }
    }

    /// Overrides the category tag.
    pub fn category(mut self, cat: &'static str) -> Self {
        self.cat = cat;
        self
    }

    /// Attaches a named argument (builder style).
    pub fn arg(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }
}

#[derive(Default)]
struct TimelineInner {
    records: Vec<TraceRecord>,
    processes: BTreeMap<u32, String>,
    tracks: BTreeMap<(u32, u64), String>,
    dropped: u64,
}

/// The process-wide timeline: a bounded record store plus process/track
/// display names. Obtain it via [`timeline`].
#[derive(Default)]
pub struct Timeline {
    inner: Mutex<TimelineInner>,
}

impl Timeline {
    fn lock(&self) -> std::sync::MutexGuard<'_, TimelineInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one event if the timeline is enabled.
    pub fn record(&self, record: TraceRecord) {
        if !timeline_enabled() {
            return;
        }
        let mut inner = self.lock();
        if inner.records.len() < MAX_TIMELINE_RECORDS {
            inner.records.push(record);
        } else {
            inner.dropped += 1;
        }
    }

    /// Records a batch under one lock acquisition. Hot loops (PDES
    /// partition threads, samplers) accumulate locally and flush here.
    pub fn record_batch(&self, records: Vec<TraceRecord>) {
        if !timeline_enabled() || records.is_empty() {
            return;
        }
        let mut inner = self.lock();
        let room = MAX_TIMELINE_RECORDS.saturating_sub(inner.records.len());
        let take = records.len().min(room);
        inner.dropped += (records.len() - take) as u64;
        inner.records.extend(records.into_iter().take(take));
    }

    /// Sets the display name for a trace process (track group).
    pub fn name_process(&self, pid: u32, name: impl Into<String>) {
        self.lock().processes.insert(pid, name.into());
    }

    /// Sets the display name for a track within a process.
    pub fn name_track(&self, pid: u32, tid: u64, name: impl Into<String>) {
        self.lock().tracks.insert((pid, tid), name.into());
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// True when no records have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records rejected because the [`MAX_TIMELINE_RECORDS`] cap was hit.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Clears all records, names, and the dropped count.
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = TimelineInner::default();
    }
}

/// The global timeline instance.
pub fn timeline() -> &'static Timeline {
    static GLOBAL: OnceLock<Timeline> = OnceLock::new();
    GLOBAL.get_or_init(Timeline::default)
}

/// Serializes a [`Timeline`] snapshot as Chrome trace-event JSON.
///
/// The export is the "JSON object format": `{"displayTimeUnit": "ms",
/// "traceEvents": [...]}` with `process_name` / `thread_name` metadata
/// events first, then the records. Load it in `chrome://tracing` or drop
/// it onto [ui.perfetto.dev](https://ui.perfetto.dev).
pub struct TimelineWriter {
    records: Vec<TraceRecord>,
    processes: BTreeMap<u32, String>,
    tracks: BTreeMap<(u32, u64), String>,
}

impl TimelineWriter {
    /// Snapshots `t`'s current contents (the timeline keeps recording).
    pub fn from_timeline(t: &Timeline) -> Self {
        let inner = t.lock();
        TimelineWriter {
            records: inner.records.clone(),
            processes: inner.processes.clone(),
            tracks: inner.tracks.clone(),
        }
    }

    /// Number of (non-metadata) events that will be written.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no events to write.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the full trace as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        for (pid, name) in &self.processes {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
            // Keep the wall/sim process groups in a stable UI order.
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"sort_index\":{pid}}}}}"
            ));
        }
        for ((pid, tid), name) in &self.tracks {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }
        for r in &self.records {
            sep(&mut out);
            write_record(&mut out, r);
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON to `w`.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_json().as_bytes())
    }

    /// Writes the JSON to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn write_record(out: &mut String, r: &TraceRecord) {
    let ph = match r.phase {
        TracePhase::Complete { .. } => "X",
        TracePhase::Instant => "i",
        TracePhase::Counter => "C",
    };
    out.push('{');
    out.push_str(&format!(
        "\"name\":{},\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"ts\":{}",
        json_string(&r.name),
        r.cat,
        r.pid,
        r.tid,
        json_f64(r.ts_us)
    ));
    match r.phase {
        TracePhase::Complete { dur_us } => {
            out.push_str(&format!(",\"dur\":{}", json_f64(dur_us)));
        }
        TracePhase::Instant => out.push_str(",\"s\":\"t\""),
        TracePhase::Counter => {}
    }
    if !r.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in r.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push(':');
            match v {
                ArgValue::U64(u) => out.push_str(&u.to_string()),
                ArgValue::F64(f) => out.push_str(&json_f64(*f)),
                ArgValue::Str(s) => out.push_str(&json_string(s)),
            }
        }
        out.push('}');
    }
    out.push('}');
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` emits the shortest decimal that round-trips.
        format!("{x:?}")
    } else {
        "0".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;
    use std::sync::{Mutex, MutexGuard};

    // The global timeline and its enabled flag are process-wide; tests
    // that touch them serialize on one lock and restore the flag.
    static TIMELINE_LOCK: Mutex<()> = Mutex::new(());

    struct TimelineScope(bool, #[allow(dead_code)] MutexGuard<'static, ()>);

    impl TimelineScope {
        fn with(on: bool) -> Self {
            let guard = TIMELINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let prev = timeline_enabled();
            set_timeline_enabled(on);
            timeline().reset();
            TimelineScope(prev, guard)
        }
    }

    impl Drop for TimelineScope {
        fn drop(&mut self) {
            timeline().reset();
            set_timeline_enabled(self.0);
        }
    }

    fn events(json: &str) -> Vec<Value> {
        let v: Value = serde_json::from_str(json).expect("trace JSON parses");
        match &v {
            Value::Map(entries) => {
                let ev = entries
                    .iter()
                    .find(|(k, _)| k == "traceEvents")
                    .expect("traceEvents key")
                    .1
                    .clone();
                match ev {
                    Value::Seq(items) => items,
                    other => panic!("traceEvents is not an array: {other:?}"),
                }
            }
            other => panic!("trace is not an object: {other:?}"),
        }
    }

    fn field<'a>(ev: &'a Value, key: &str) -> &'a Value {
        match ev {
            Value::Map(entries) => {
                &entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("missing field {key}"))
                    .1
            }
            other => panic!("event is not an object: {other:?}"),
        }
    }

    fn str_of(v: &Value) -> &str {
        match v {
            Value::Str(s) => s,
            other => panic!("not a string: {other:?}"),
        }
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let _scope = TimelineScope::with(false);
        timeline().record(TraceRecord::instant(PID_FLOWS, 0, "drop", 1.0));
        timeline().record_batch(vec![TraceRecord::counter(PID_SAMPLES, "queue_bytes", 2.0)]);
        assert!(timeline().is_empty());
        assert_eq!(timeline().dropped(), 0);
    }

    #[test]
    fn records_slices_instants_and_counters() {
        let _scope = TimelineScope::with(true);
        timeline().name_process(PID_PDES, "pdes partitions (wall clock)");
        timeline().name_track(PID_PDES, 3, "partition 3");
        timeline().record(
            TraceRecord::complete(PID_PDES, 3, "work", 10.0, 5.5)
                .arg("epoch", 7u64)
                .arg("events", 120u64),
        );
        timeline().record(TraceRecord::instant(PID_FLOWS, 1, "drop", 42.25).arg("node", "tor3"));
        timeline().record_batch(vec![TraceRecord::counter(
            PID_SAMPLES,
            "queue_bytes",
            100.0,
        )
        .arg("tor", 1500.0)
        .arg("core", 0.0)]);
        assert_eq!(timeline().len(), 3);

        let json = TimelineWriter::from_timeline(timeline()).to_json();
        let evs = events(&json);
        // 2 process-metadata + 1 thread-metadata + 3 records.
        assert_eq!(evs.len(), 6);
        let slice = evs
            .iter()
            .find(|e| str_of(field(e, "ph")) == "X")
            .expect("complete slice present");
        assert_eq!(str_of(field(slice, "name")), "work");
        assert_eq!(field(slice, "dur"), &Value::Float(5.5));
        let instant = evs
            .iter()
            .find(|e| str_of(field(e, "ph")) == "i")
            .expect("instant present");
        assert_eq!(str_of(field(instant, "s")), "t");
        let counter = evs
            .iter()
            .find(|e| str_of(field(e, "ph")) == "C")
            .expect("counter present");
        assert_eq!(field(field(counter, "args"), "tor"), &Value::Float(1500.0));
        let thread_meta = evs
            .iter()
            .find(|e| str_of(field(e, "ph")) == "M" && str_of(field(e, "name")) == "thread_name")
            .expect("thread_name metadata present");
        assert_eq!(
            str_of(field(field(thread_meta, "args"), "name")),
            "partition 3"
        );
    }

    #[test]
    fn json_escapes_awkward_names() {
        let _scope = TimelineScope::with(true);
        timeline().record(TraceRecord::instant(
            PID_FLOWS,
            0,
            "a \"b\"\\\n\tc".to_string(),
            0.0,
        ));
        let json = TimelineWriter::from_timeline(timeline()).to_json();
        let evs = events(&json);
        assert_eq!(str_of(field(&evs[0], "name")), "a \"b\"\\\n\tc");
    }

    #[test]
    fn cap_counts_dropped_records() {
        let _scope = TimelineScope::with(true);
        // Exercise the batch clamp without allocating MAX records: fill to
        // just below the cap is infeasible in a unit test, so check the
        // arithmetic on the record path via a tiny shim instead.
        let t = Timeline::default();
        for i in 0..10 {
            t.record(TraceRecord::instant(PID_FLOWS, 0, "x", i as f64));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let _scope = TimelineScope::with(true);
        timeline().record(TraceRecord::instant(PID_FLOWS, 0, "x", 0.0));
        timeline().name_process(PID_FLOWS, "flows");
        timeline().reset();
        assert!(timeline().is_empty());
        assert!(TimelineWriter::from_timeline(timeline()).is_empty());
    }
}
