//! Simulator-agnostic statistics kernels: streaming summaries, log-bucketed
//! histograms, and exact empirical CDFs.
//!
//! These types originated in `elephant-des::stats` and moved here so that
//! every crate (net metrics, the hybrid engine, the metrics registry) shares
//! one histogram implementation. `elephant-des` re-exports them, so
//! downstream code may keep importing from either crate.

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Numerically stable for long runs; one pass, O(1) memory.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or +inf if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -inf if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Logarithmically bucketed histogram for latency-like positive quantities.
///
/// Buckets are spaced evenly in log10 between `lo` and `hi`, with underflow
/// and overflow bins at the ends. Quantile queries interpolate within the
/// winning bucket, giving ~`(hi/lo)^(1/buckets)` relative error — ample for
/// plotting CDFs over five decades of RTT.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    lo_log: f64,
    hi_log: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl LogHistogram {
    /// Creates a histogram covering `[lo, hi]` with `buckets` log-spaced
    /// bins (plus hidden under/overflow bins).
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && buckets >= 1, "bad histogram bounds");
        LogHistogram {
            lo_log: lo.log10(),
            hi_log: hi.log10(),
            counts: vec![0; buckets + 2],
            total: 0,
            sum: 0.0,
        }
    }

    /// A histogram suitable for RTT/latency in seconds: 10 ns to 100 s,
    /// 50 buckets per decade.
    pub fn for_latency_seconds() -> Self {
        LogHistogram::new(1e-8, 1e2, 500)
    }

    fn bucket_of(&self, x: f64) -> usize {
        let n = self.counts.len() - 2;
        if x.is_nan() || x <= 0.0 || x.log10() < self.lo_log {
            return 0; // underflow (also catches NaN / non-positive)
        }
        let frac = (x.log10() - self.lo_log) / (self.hi_log - self.lo_log);
        if frac >= 1.0 {
            n + 1 // overflow
        } else {
            1 + (frac * n as f64) as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let b = self.bucket_of(x);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += x;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of raw observations (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0,1]`, interpolated within the bucket.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).max(1.0);
        let mut seen = 0u64;
        let n = self.counts.len() - 2;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 >= target {
                let within = (target - seen as f64) / c as f64;
                return self.bucket_value(i, within, n);
            }
            seen += c;
        }
        self.bucket_value(self.counts.len() - 1, 1.0, n)
    }

    fn bucket_value(&self, i: usize, within: f64, n: usize) -> f64 {
        let width = (self.hi_log - self.lo_log) / n as f64;
        match i {
            0 => 10f64.powf(self.lo_log),               // underflow: clamp at lo
            i if i == n + 1 => 10f64.powf(self.hi_log), // overflow: clamp at hi
            _ => {
                let left = self.lo_log + (i - 1) as f64 * width;
                10f64.powf(left + within * width)
            }
        }
    }

    /// Extracts `(value, cumulative_fraction)` points, one per non-empty
    /// bucket, suitable for plotting an empirical CDF.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let n = self.counts.len() - 2;
        let mut pts = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            pts.push((
                self.bucket_value(i, 1.0, n),
                seen as f64 / self.total as f64,
            ));
        }
        pts
    }

    /// Merges another histogram with identical geometry.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram geometry mismatch"
        );
        assert_eq!(self.lo_log, other.lo_log);
        assert_eq!(self.hi_log, other.hi_log);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// An exact empirical distribution built from retained samples.
///
/// Unlike [`LogHistogram`] this keeps every sample, so use it where sample
/// counts are bounded (per-flow FCTs, held-out evaluation sets).
#[derive(Clone, Debug, Default)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from raw samples (copied and sorted; NaNs rejected).
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample in CDF");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN ensured above"));
        EmpiricalCdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples ≤ x.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` in `[0,1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Two-sample Kolmogorov–Smirnov distance: the maximum absolute gap
    /// between the two empirical CDFs. 0 = identical, 1 = disjoint supports.
    pub fn ks_distance(&self, other: &EmpiricalCdf) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 1.0;
        }
        let mut max_gap: f64 = 0.0;
        let (a, b) = (&self.sorted, &other.sorted);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            // Advance past the smaller value; on ties advance both sides
            // over the whole tied run so both CDFs jump together.
            if a[i] < b[j] {
                i += 1;
            } else if b[j] < a[i] {
                j += 1;
            } else {
                let v = a[i];
                while i < a.len() && a[i] == v {
                    i += 1;
                }
                while j < b.len() && b[j] == v {
                    j += 1;
                }
            }
            let fa = i as f64 / a.len() as f64;
            let fb = j as f64 / b.len() as f64;
            max_gap = max_gap.max((fa - fb).abs());
        }
        // The exhausted side's CDF is 1 from here on; the other side's
        // current level gives the final candidate gap.
        if i == a.len() {
            max_gap = max_gap.max(1.0 - j as f64 / b.len() as f64);
        }
        if j == b.len() {
            max_gap = max_gap.max(1.0 - i as f64 / a.len() as f64);
        }
        max_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_closed_form() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; unbiased sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut left = Summary::new();
        let mut right = Summary::new();
        data[..33].iter().for_each(|&x| left.record(x));
        data[33..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn log_histogram_quantiles_are_close() {
        let mut h = LogHistogram::for_latency_seconds();
        // 1000 samples uniform in [1ms, 2ms].
        for i in 0..1000 {
            h.record(1e-3 + (i as f64 / 1000.0) * 1e-3);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 1.5e-3).abs() / 1.5e-3 < 0.05, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 1.99e-3).abs() / 1.99e-3 < 0.05, "p99 = {p99}");
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 1.4995e-3).abs() < 1e-6);
    }

    #[test]
    fn log_histogram_clamps_out_of_range() {
        let mut h = LogHistogram::new(1e-3, 1.0, 10);
        h.record(1e-9); // underflow
        h.record(1e9); // overflow
        assert_eq!(h.count(), 2);
        assert!((h.quantile(0.25) - 1e-3).abs() < 1e-9);
        assert!((h.quantile(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_histogram_cdf_points_monotone() {
        let mut h = LogHistogram::for_latency_seconds();
        for i in 1..100 {
            h.record(i as f64 * 1e-4);
        }
        let pts = h.cdf_points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0, "x not sorted");
            assert!(w[0].1 <= w[1].1, "F not monotone");
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new(1e-6, 1.0, 60);
        let mut b = LogHistogram::new(1e-6, 1.0, 60);
        for i in 1..=50 {
            a.record(i as f64 * 1e-3);
            b.record(i as f64 * 2e-3);
        }
        let mean_a = a.mean();
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert!(a.mean() > mean_a);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LogHistogram::for_latency_seconds();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "empty histogram at q={q}");
        }
        assert_eq!(h.mean(), 0.0);
        assert!(h.cdf_points().is_empty());
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LogHistogram::for_latency_seconds();
        h.record(3.7e-4);
        // Every quantile lands in the one occupied bucket; the bucket's
        // relative width bounds the error.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(
                (v - 3.7e-4).abs() / 3.7e-4 < 0.05,
                "q={q} gave {v}, expected ~3.7e-4"
            );
        }
        assert!((h.mean() - 3.7e-4).abs() < 1e-18);
    }

    #[test]
    fn saturated_single_bucket_interpolates_within_it() {
        // Hammer one value: all mass in one bucket. Quantiles interpolate
        // inside that bucket, so they stay within its bounds and are
        // monotone in q.
        let mut h = LogHistogram::new(1e-3, 1.0, 30);
        for _ in 0..100_000 {
            h.record(0.05);
        }
        assert_eq!(h.count(), 100_000);
        let lo = h.quantile(0.001);
        let hi = h.quantile(1.0);
        assert!(lo <= hi, "bucket interpolation monotone: {lo} vs {hi}");
        let width = (1.0f64 / 1e-3).powf(1.0 / 30.0);
        assert!(hi / lo <= width * 1.0001, "spread within one bucket");
        assert!((0.05 / width..=0.05 * width).contains(&lo));
    }

    #[test]
    fn underflow_and_overflow_saturation_clamps() {
        let mut h = LogHistogram::new(1e-3, 1.0, 8);
        for _ in 0..1000 {
            h.record(1e-12); // all underflow
        }
        assert!((h.quantile(0.5) - 1e-3).abs() < 1e-12, "clamped at lo");
        let mut h = LogHistogram::new(1e-3, 1.0, 8);
        for _ in 0..1000 {
            h.record(1e12); // all overflow
        }
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-12, "clamped at hi");
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// Quantiles are monotone in q for arbitrary sample sets (spanning
        /// under/overflow), and every quantile stays within the histogram's
        /// clamped geometry.
        #[test]
        fn quantiles_monotone_in_q(
            samples in proptest::collection::vec(1e-10f64..1e4, 1..200),
        ) {
            let mut h = LogHistogram::for_latency_seconds();
            for &s in &samples {
                h.record(s);
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
            let vals: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
            for w in vals.windows(2) {
                proptest::prop_assert!(
                    w[0] <= w[1] * (1.0 + 1e-12),
                    "quantiles not monotone: {:?}", vals
                );
            }
            // Clamped to [lo, hi] up to powf round-trip noise.
            for &v in &vals {
                proptest::prop_assert!(
                    (1e-8 * 0.999..=1e2 * 1.001).contains(&v),
                    "quantile {v} outside histogram geometry"
                );
            }
        }
    }

    #[test]
    fn empirical_cdf_basics() {
        let c = EmpiricalCdf::from_samples(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.cdf(0.5), 0.0);
        assert_eq!(c.cdf(2.0), 0.5);
        assert_eq!(c.cdf(10.0), 1.0);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.quantile(0.0), 1.0);
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = EmpiricalCdf::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.ks_distance(&a), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = EmpiricalCdf::from_samples(&[1.0, 2.0]);
        let b = EmpiricalCdf::from_samples(&[10.0, 20.0]);
        assert!((a.ks_distance(&b) - 1.0).abs() < 1e-12);
        assert!((b.ks_distance(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_known_value() {
        // a = {1,2,3,4}, b = {3,4,5,6}: max gap is 0.5 at x in [2,3).
        let a = EmpiricalCdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let b = EmpiricalCdf::from_samples(&[3.0, 4.0, 5.0, 6.0]);
        assert!((a.ks_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_is_one() {
        let a = EmpiricalCdf::from_samples(&[]);
        let b = EmpiricalCdf::from_samples(&[1.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }
}
