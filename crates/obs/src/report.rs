//! Exportable run reports: one serializable struct capturing a run's
//! throughput figures, registry metrics, per-partition timing, and
//! profiler breakdown, with human-table / JSON / JSON-lines / CSV
//! renderers. Bench binaries emit these as `BENCH_<name>.json`.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;
use crate::profile::{profiler, render_tree, tree_from_rows};
use crate::registry::registry;

/// One exported metric (counter, gauge, or histogram summary).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricRow {
    /// Metric name (`subsystem/area/metric`).
    pub name: String,
    /// Instance label ("" when unlabelled).
    pub label: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: f64,
    /// Observation count (histograms; equals `value` for counters).
    pub count: u64,
    /// Mean observation (histograms only, else 0).
    pub mean: f64,
    /// 50th percentile (histograms only, else 0).
    pub p50: f64,
    /// 90th percentile (histograms only, else 0).
    pub p90: f64,
    /// 99th percentile (histograms only, else 0).
    pub p99: f64,
}

impl MetricRow {
    /// Row for a counter value.
    pub fn counter(name: &str, label: &str, value: u64) -> Self {
        MetricRow {
            name: name.to_string(),
            label: label.to_string(),
            kind: "counter".to_string(),
            value: value as f64,
            count: value,
            ..Default::default()
        }
    }

    /// Row for a gauge level.
    pub fn gauge(name: &str, label: &str, value: i64) -> Self {
        MetricRow {
            name: name.to_string(),
            label: label.to_string(),
            kind: "gauge".to_string(),
            value: value as f64,
            ..Default::default()
        }
    }

    /// Row summarizing a histogram.
    pub fn histogram(name: &str, label: &str, h: &LogHistogram) -> Self {
        MetricRow {
            name: name.to_string(),
            label: label.to_string(),
            kind: "histogram".to_string(),
            value: h.count() as f64,
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
        }
    }
}

/// One aggregated profiler path.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProfileRow {
    /// `/`-joined span path, e.g. `pdes/epoch/barrier_wait`.
    pub path: String,
    /// Times the path was entered.
    pub count: u64,
    /// Total wall seconds spent (including nested spans).
    pub seconds: f64,
}

/// Per-partition timing breakdown of a parallel (PDES) run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PartitionRow {
    /// Partition index.
    pub partition: usize,
    /// Events executed by this partition.
    pub events: u64,
    /// Wall seconds spent executing events.
    pub work_seconds: f64,
    /// Wall seconds spent blocked on epoch barriers.
    pub barrier_wait_seconds: f64,
    /// `barrier_wait / (barrier_wait + work + marshal)`, in [0,1].
    pub barrier_wait_share: f64,
    /// Wall seconds spent marshalling cross-partition events.
    pub marshal_seconds: f64,
    /// Cross-partition events sent.
    pub remote_events_sent: u64,
    /// Cross-partition bytes sent (encoded envelope payloads).
    pub remote_bytes_sent: u64,
}

impl PartitionRow {
    /// Fills in `barrier_wait_share` from the timing fields.
    pub fn finish(mut self) -> Self {
        let busy = self.work_seconds + self.barrier_wait_seconds + self.marshal_seconds;
        self.barrier_wait_share = if busy > 0.0 {
            self.barrier_wait_seconds / busy
        } else {
            0.0
        };
        self
    }
}

/// A complete, serializable description of one run's performance.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Short machine-friendly run name (used in `BENCH_<name>.json`).
    pub name: String,
    /// Human description of the scenario/configuration.
    pub scenario: String,
    /// Wall-clock duration of the measured run.
    pub wall_seconds: f64,
    /// Simulated time covered.
    pub sim_seconds: f64,
    /// Events executed.
    pub events: u64,
    /// Events per wall second.
    pub events_per_second: f64,
    /// Simulated seconds per wall second (the paper's speed metric).
    pub sim_seconds_per_second: f64,
    /// Named scalar results (loss, accuracy, overhead fractions, ...).
    pub scalars: BTreeMap<String, f64>,
    /// Per-partition breakdown (one zero-wait row for sequential runs).
    pub partitions: Vec<PartitionRow>,
    /// Registry snapshot.
    pub metrics: Vec<MetricRow>,
    /// Profiler snapshot.
    pub profile: Vec<ProfileRow>,
}

fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl RunReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>, scenario: impl Into<String>) -> Self {
        RunReport {
            name: name.into(),
            scenario: scenario.into(),
            ..Default::default()
        }
    }

    /// Sets the throughput figures, deriving the rates.
    pub fn set_run(&mut self, wall_seconds: f64, events: u64, sim_seconds: f64) {
        self.wall_seconds = wall_seconds;
        self.events = events;
        self.sim_seconds = sim_seconds;
        self.events_per_second = finite(events as f64 / wall_seconds);
        self.sim_seconds_per_second = finite(sim_seconds / wall_seconds);
    }

    /// Records a named scalar result.
    pub fn scalar(&mut self, key: impl Into<String>, value: f64) {
        self.scalars.insert(key.into(), finite(value));
    }

    /// Captures the current global registry and profiler contents.
    pub fn gather(&mut self) {
        self.metrics = registry().snapshot();
        self.profile = profiler().snapshot();
    }

    /// Renders a human-readable table (run line, scalars, partitions,
    /// metrics, profile tree).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.name));
        if !self.scenario.is_empty() {
            out.push_str(&format!("{}\n", self.scenario));
        }
        if self.wall_seconds > 0.0 {
            out.push_str(&format!(
                "wall {:.3}s  sim {:.3}s  events {}  {:.0} events/s  {:.2} sim-s/s\n",
                self.wall_seconds,
                self.sim_seconds,
                self.events,
                self.events_per_second,
                self.sim_seconds_per_second,
            ));
        }
        if !self.scalars.is_empty() {
            out.push_str("-- scalars --\n");
            for (k, v) in &self.scalars {
                out.push_str(&format!("{k:<44} {v:.6}\n"));
            }
        }
        if !self.partitions.is_empty() {
            out.push_str("-- partitions --\n");
            out.push_str(&format!(
                "{:>4} {:>12} {:>10} {:>12} {:>8} {:>10} {:>12} {:>12}\n",
                "part",
                "events",
                "work",
                "barrier",
                "share",
                "marshal",
                "remote_evts",
                "remote_bytes"
            ));
            for p in &self.partitions {
                out.push_str(&format!(
                    "{:>4} {:>12} {:>9.3}s {:>11.3}s {:>7.1}% {:>9.3}s {:>12} {:>12}\n",
                    p.partition,
                    p.events,
                    p.work_seconds,
                    p.barrier_wait_seconds,
                    p.barrier_wait_share * 100.0,
                    p.marshal_seconds,
                    p.remote_events_sent,
                    p.remote_bytes_sent,
                ));
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("-- metrics --\n");
            out.push_str(&format!(
                "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "kind", "value", "p50", "p90", "p99"
            ));
            for m in &self.metrics {
                let name = if m.label.is_empty() {
                    m.name.clone()
                } else {
                    format!("{}[{}]", m.name, m.label)
                };
                if m.kind == "histogram" {
                    out.push_str(&format!(
                        "{:<44} {:>10} {:>12} {:>12.3e} {:>12.3e} {:>12.3e}\n",
                        name, m.kind, m.count, m.p50, m.p90, m.p99
                    ));
                } else {
                    out.push_str(&format!(
                        "{:<44} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
                        name, m.kind, m.value as i64, "-", "-", "-"
                    ));
                }
            }
        }
        if !self.profile.is_empty() {
            out.push_str("-- profile --\n");
            out.push_str(&render_tree(&tree_from_rows(&self.profile)));
        }
        out
    }

    /// Compact single-line JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Indented JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// JSON-lines: a `run` record, then one record per metric and profile
    /// row — friendly to `grep`/`jq -c` pipelines over many runs.
    pub fn to_jsonl(&self) -> String {
        #[derive(Serialize)]
        struct RunLine {
            record: String,
            name: String,
            scenario: String,
            wall_seconds: f64,
            sim_seconds: f64,
            events: u64,
            events_per_second: f64,
            sim_seconds_per_second: f64,
        }
        #[derive(Serialize)]
        struct MetricLine {
            record: String,
            run: String,
            name: String,
            label: String,
            kind: String,
            value: f64,
            mean: f64,
            p50: f64,
            p90: f64,
            p99: f64,
        }
        #[derive(Serialize)]
        struct ProfileLine {
            record: String,
            run: String,
            path: String,
            count: u64,
            seconds: f64,
        }
        let mut out = String::new();
        let run = RunLine {
            record: "run".into(),
            name: self.name.clone(),
            scenario: self.scenario.clone(),
            wall_seconds: self.wall_seconds,
            sim_seconds: self.sim_seconds,
            events: self.events,
            events_per_second: self.events_per_second,
            sim_seconds_per_second: self.sim_seconds_per_second,
        };
        out.push_str(&serde_json::to_string(&run).expect("run line"));
        out.push('\n');
        for m in &self.metrics {
            let line = MetricLine {
                record: "metric".into(),
                run: self.name.clone(),
                name: m.name.clone(),
                label: m.label.clone(),
                kind: m.kind.clone(),
                value: m.value,
                mean: m.mean,
                p50: m.p50,
                p90: m.p90,
                p99: m.p99,
            };
            out.push_str(&serde_json::to_string(&line).expect("metric line"));
            out.push('\n');
        }
        for p in &self.profile {
            let line = ProfileLine {
                record: "profile".into(),
                run: self.name.clone(),
                path: p.path.clone(),
                count: p.count,
                seconds: p.seconds,
            };
            out.push_str(&serde_json::to_string(&line).expect("profile line"));
            out.push('\n');
        }
        out
    }

    /// CSV over the metric rows (header + one line per metric).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,label,kind,value,count,mean,p50,p90,p99\n");
        for m in &self.metrics {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                csv_field(&m.name),
                csv_field(&m.label),
                csv_field(&m.kind),
                m.value,
                m.count,
                m.mean,
                m.p50,
                m.p90,
                m.p99
            ));
        }
        out
    }

    /// Writes the pretty JSON to `path`.
    ///
    /// Note: runs that produce a durable artifact should wrap the report
    /// in a checksummed `RunLedger` (elephant-core) instead of saving the
    /// bare report — this raw form carries no schema version or seal.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json_pretty())
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("unit", "2 clusters, 10ms");
        r.set_run(2.0, 10_000, 0.5);
        r.scalar("overhead_fraction", 0.013);
        let mut h = LogHistogram::for_latency_seconds();
        for i in 1..=100 {
            h.record(i as f64 * 1e-5);
        }
        r.metrics = vec![
            MetricRow::counter("net/port/drops", "tor", 17),
            MetricRow::histogram("hybrid/oracle/infer", "", &h),
        ];
        r.profile = vec![
            ProfileRow {
                path: "run".into(),
                count: 1,
                seconds: 2.0,
            },
            ProfileRow {
                path: "run/epoch".into(),
                count: 10,
                seconds: 1.5,
            },
        ];
        r.partitions = vec![PartitionRow {
            partition: 0,
            events: 10_000,
            work_seconds: 1.2,
            barrier_wait_seconds: 0.4,
            marshal_seconds: 0.4,
            remote_events_sent: 55,
            remote_bytes_sent: 3520,
            ..Default::default()
        }
        .finish()];
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let back: RunReport = serde_json::from_str(&r.to_json()).expect("parses");
        assert_eq!(back.name, "unit");
        assert_eq!(back.events, 10_000);
        assert_eq!(back.metrics.len(), 2);
        assert_eq!(back.metrics[0].count, 17);
        assert!((back.metrics[1].p50 - r.metrics[1].p50).abs() < 1e-12);
        assert_eq!(back.partitions[0].remote_events_sent, 55);
        assert!((back.partitions[0].barrier_wait_share - 0.2).abs() < 1e-12);
        assert!((back.scalars["overhead_fraction"] - 0.013).abs() < 1e-12);
        let pretty: RunReport = serde_json::from_str(&r.to_json_pretty()).expect("parses");
        assert_eq!(pretty.profile.len(), 2);
    }

    #[test]
    fn table_mentions_key_figures() {
        let t = sample_report().to_table();
        assert!(t.contains("== unit =="));
        assert!(t.contains("net/port/drops[tor]"));
        assert!(t.contains("hybrid/oracle/infer"));
        assert!(t.contains("overhead_fraction"));
        assert!(t.contains("epoch"));
        assert!(t.contains("20.0%"), "barrier share rendered: {t}");
    }

    #[test]
    fn jsonl_one_record_per_line() {
        let text = sample_report().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 2);
        assert!(
            lines[0].contains("\"record\": \"run\"") || lines[0].contains("\"record\":\"run\"")
        );
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let text = sample_report().to_csv();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name,label,kind"));
        assert!(lines[1].starts_with("net/port/drops,tor,counter,17"));
    }

    #[test]
    fn gather_pulls_global_state() {
        let _on = crate::testutil::EnableScope::new();
        crate::profiler().reset();
        crate::registry().reset();
        crate::counter("test/report/gathered", "").add(4);
        {
            let _s = crate::span("gather_span");
        }
        let mut r = RunReport::new("gather", "");
        r.gather();
        assert!(r
            .metrics
            .iter()
            .any(|m| m.name == "test/report/gathered" && m.count == 4));
        assert!(r.profile.iter().any(|p| p.path == "gather_span"));
    }
}
