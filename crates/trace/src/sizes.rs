//! Flow-size distributions.
//!
//! The paper drives its evaluation with "traffic patterns drawn from a
//! well-known trace of datacenter web traffic \[3\]" — the DCTCP
//! measurement study. The raw trace is proprietary, but its flow-size CDF
//! is published and has become the community-standard "web search"
//! workload; VL2's "data mining" CDF is the other canonical heavy tail.
//! [`SizeDist`] encodes such CDFs as piecewise log-linear curves and
//! samples them by inverse transform, preserving exactly the property the
//! paper's models feed on: most flows are mice, most bytes live in
//! elephants.

use rand::Rng;

/// An empirical flow-size distribution given as CDF control points.
#[derive(Clone, Debug)]
pub struct SizeDist {
    /// `(size_bytes, cumulative_probability)`, strictly increasing in both
    /// coordinates, ending at probability 1.
    points: Vec<(f64, f64)>,
}

impl SizeDist {
    /// Builds from CDF control points. Panics unless sizes and
    /// probabilities are strictly increasing and the last probability is 1.
    pub fn from_cdf(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase: {:?}", w);
            assert!(w[0].1 < w[1].1, "probabilities must increase: {:?}", w);
        }
        assert!(points[0].0 > 0.0, "sizes must be positive");
        assert!(points[0].1 >= 0.0);
        let last = points.last().expect("non-empty");
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must end at 1.0");
        SizeDist {
            points: points.to_vec(),
        }
    }

    /// The DCTCP web-search workload (paper reference \[3\]): mice dominate
    /// the flow count, elephants the byte count.
    pub fn web_search() -> Self {
        SizeDist::from_cdf(&[
            (6e3, 0.15),
            (13e3, 0.20),
            (19e3, 0.30),
            (33e3, 0.40),
            (53e3, 0.53),
            (133e3, 0.60),
            (667e3, 0.70),
            (1333e3, 0.80),
            (3333e3, 0.90),
            (6667e3, 0.97),
            (20e6, 1.00),
        ])
    }

    /// The VL2 data-mining workload: even heavier tail.
    pub fn data_mining() -> Self {
        SizeDist::from_cdf(&[
            (100.0, 0.03),
            (1e3, 0.50),
            (2e3, 0.60),
            (10e3, 0.70),
            (100e3, 0.80),
            (1e6, 0.90),
            (10e6, 0.95),
            (100e6, 0.98),
            (1e9, 1.00),
        ])
    }

    /// Every flow the same size (useful in controlled experiments).
    pub fn fixed(bytes: u64) -> Self {
        let b = bytes as f64;
        SizeDist::from_cdf(&[(b * (1.0 - 1e-9), 1e-9), (b, 1.0)])
    }

    /// Inverse-transform sample, log-linear within segments. Always at
    /// least one byte.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The size at cumulative probability `u`.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            return first.0.max(1.0) as u64;
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let frac = (u - p0) / (p1 - p0);
                let log_s = s0.ln() + frac * (s1.ln() - s0.ln());
                return log_s.exp().max(1.0) as u64;
            }
        }
        self.points.last().expect("non-empty").0 as u64
    }

    /// Mean flow size, integrated over the piecewise log-linear CDF by
    /// fine quadrature (exact enough for load calibration).
    pub fn mean(&self) -> f64 {
        let steps = 20_000;
        let mut total = 0.0;
        for k in 0..steps {
            let u = (k as f64 + 0.5) / steps as f64;
            total += self.quantile(u) as f64;
        }
        total / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn quantiles_interpolate_monotonically() {
        let d = SizeDist::web_search();
        let mut prev = 0;
        for k in 0..=100 {
            let q = d.quantile(k as f64 / 100.0);
            assert!(q >= prev, "monotone quantiles");
            prev = q;
        }
        assert!(d.quantile(1.0) <= 20_000_000);
        assert!(d.quantile(0.0) >= 1);
    }

    #[test]
    fn web_search_is_mice_heavy_but_elephant_dominated() {
        let d = SizeDist::web_search();
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mice = samples.iter().filter(|&&s| s < 100_000).count() as f64 / samples.len() as f64;
        assert!(mice > 0.5, "most flows are mice: {mice}");
        let total: u64 = samples.iter().sum();
        let elephant_bytes: u64 = samples.iter().filter(|&&s| s >= 1_000_000).sum();
        assert!(
            elephant_bytes as f64 / total as f64 > 0.5,
            "most bytes in elephants: {}",
            elephant_bytes as f64 / total as f64
        );
    }

    #[test]
    fn sample_mean_matches_computed_mean() {
        let d = SizeDist::web_search();
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let sample_mean = sum / n as f64;
        let mean = d.mean();
        assert!(
            (sample_mean - mean).abs() / mean < 0.05,
            "sample mean {sample_mean} vs integral {mean}"
        );
    }

    #[test]
    fn fixed_distribution_is_constant() {
        let d = SizeDist::fixed(50_000);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!((49_999..=50_000).contains(&s), "got {s}");
        }
    }

    #[test]
    #[should_panic]
    fn non_monotone_cdf_rejected() {
        let _ = SizeDist::from_cdf(&[(10.0, 0.5), (20.0, 0.4), (30.0, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn cdf_must_reach_one() {
        let _ = SizeDist::from_cdf(&[(10.0, 0.5), (20.0, 0.9)]);
    }
}
