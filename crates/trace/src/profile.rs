//! Time-varying offered load.
//!
//! The paper's §4 observation — "at the seconds scale, the average latency
//! of packets perceptibly shifts up and down as queues fill and drain" —
//! requires workloads whose intensity actually shifts. A [`LoadProfile`]
//! maps simulation time to an instantaneous load multiplier; the workload
//! generator thins a homogeneous Poisson process against it (standard
//! inhomogeneous-Poisson sampling), so any profile keeps exact Poisson
//! statistics within each level.

use elephant_des::SimTime;

/// Instantaneous load as a function of time, as a multiplier on the
/// configured base load. Values are clamped to `[0, 1/base]` by the
/// generator so total load never exceeds 100% of the host link.
#[derive(Clone, Debug)]
pub enum LoadProfile {
    /// Constant multiplier 1 (the default).
    Constant,
    /// Sinusoidal swing: multiplier moves between `min` and `max` with the
    /// given period — a compressed diurnal pattern.
    Sinusoid {
        /// Cycle length.
        period: SimTime,
        /// Multiplier at the trough (≥ 0).
        min: f64,
        /// Multiplier at the crest.
        max: f64,
    },
    /// Piecewise-constant steps: `(start_time, multiplier)` pairs in
    /// ascending time order; the multiplier before the first step is 1.
    Steps(Vec<(SimTime, f64)>),
}

impl LoadProfile {
    /// The multiplier at time `t`.
    pub fn multiplier(&self, t: SimTime) -> f64 {
        match self {
            LoadProfile::Constant => 1.0,
            LoadProfile::Sinusoid { period, min, max } => {
                assert!(*min >= 0.0 && max >= min, "invalid sinusoid bounds");
                let phase = (t.as_nanos() % period.as_nanos().max(1)) as f64
                    / period.as_nanos().max(1) as f64;
                let s = (phase * std::f64::consts::TAU).sin() * 0.5 + 0.5;
                min + (max - min) * s
            }
            LoadProfile::Steps(steps) => {
                let mut level = 1.0;
                for &(at, m) in steps {
                    if t >= at {
                        level = m;
                    } else {
                        break;
                    }
                }
                level
            }
        }
    }

    /// The maximum multiplier the profile can produce (the thinning
    /// envelope).
    pub fn peak(&self) -> f64 {
        match self {
            LoadProfile::Constant => 1.0,
            LoadProfile::Sinusoid { max, .. } => *max,
            LoadProfile::Steps(steps) => steps.iter().map(|&(_, m)| m).fold(1.0f64, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        let p = LoadProfile::Constant;
        for t in [0u64, 5, 1_000_000_000] {
            assert_eq!(p.multiplier(SimTime::from_nanos(t)), 1.0);
        }
        assert_eq!(p.peak(), 1.0);
    }

    #[test]
    fn sinusoid_spans_min_max_and_repeats() {
        let p = LoadProfile::Sinusoid {
            period: SimTime::from_millis(10),
            min: 0.2,
            max: 1.4,
        };
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in 0..1000 {
            let m = p.multiplier(SimTime::from_micros(k * 10));
            assert!((0.2..=1.4).contains(&m));
            lo = lo.min(m);
            hi = hi.max(m);
        }
        assert!(lo < 0.25, "trough reached: {lo}");
        assert!(hi > 1.35, "crest reached: {hi}");
        // Periodicity.
        let a = p.multiplier(SimTime::from_micros(1234));
        let b =
            p.multiplier(SimTime::from_micros(1234) + elephant_des::SimDuration::from_millis(10));
        assert!((a - b).abs() < 1e-9);
        assert_eq!(p.peak(), 1.4);
    }

    #[test]
    fn steps_switch_at_boundaries() {
        let p = LoadProfile::Steps(vec![
            (SimTime::from_millis(10), 0.5),
            (SimTime::from_millis(20), 2.0),
        ]);
        assert_eq!(p.multiplier(SimTime::from_millis(5)), 1.0);
        assert_eq!(p.multiplier(SimTime::from_millis(10)), 0.5);
        assert_eq!(p.multiplier(SimTime::from_millis(15)), 0.5);
        assert_eq!(p.multiplier(SimTime::from_millis(25)), 2.0);
        assert_eq!(p.peak(), 2.0);
    }
}
