//! Plain CSV export for experiment outputs.
//!
//! Every benchmark harness writes its rows through these helpers so the
//! figures can be re-plotted from flat files. Hand-rolled on purpose: the
//! format is trivial and a dependency would be heavier than the code.

use std::fs::File;
use std::io::{BufWriter, Error, ErrorKind, Result, Write};
use std::path::Path;

/// Writes `header` then `rows` to `path` as CSV. Fields containing commas,
/// quotes, or newlines are quoted.
///
/// Every row must have exactly `header.len()` fields; a mismatch returns an
/// [`ErrorKind::InvalidInput`] error (in release builds too — a ragged CSV
/// silently mis-aligns every downstream plot). The file is created before
/// rows are validated, so a failed write may leave a partial file behind.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(
        w,
        "{}",
        header
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for (i, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "CSV row {i} has {} fields but the header has {}",
                    row.len(),
                    header.len()
                ),
            ));
        }
        writeln!(
            w,
            "{}",
            row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(",")
        )?;
    }
    w.flush()
}

/// Writes `(x, y)` points (e.g. a CDF) to `path`.
pub fn write_xy<P: AsRef<Path>>(
    path: P,
    x_name: &str,
    y_name: &str,
    points: &[(f64, f64)],
) -> Result<()> {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|&(x, y)| vec![format!("{x}"), format!("{y}")])
        .collect();
    write_csv(path, &[x_name, y_name], &rows)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes() {
        let dir = std::env::temp_dir().join("elephant_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "has,comma".into()],
                vec!["3".into(), "has\"quote".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,plain\n2,\"has,comma\"\n3,\"has\"\"quote\"\n");
    }

    #[test]
    fn rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("elephant_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.csv");
        let err = write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["lonely".into()]],
        )
        .expect_err("ragged row must fail");
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
        assert!(err.to_string().contains("row 1"), "got: {err}");
    }

    #[test]
    fn writes_xy() {
        let dir = std::env::temp_dir().join("elephant_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("xy.csv");
        write_xy(&path, "latency", "cdf", &[(1.0, 0.5), (2.0, 1.0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "latency,cdf\n1,0.5\n2,1\n");
    }
}
