//! Flow-level workload generation.
//!
//! Each host runs an independent Poisson flow generator calibrated to a
//! target offered load (fraction of its NIC rate). Destinations follow a
//! configurable locality mix — rack-local / intra-cluster / inter-cluster —
//! so the same generator drives the paper's leaf-spine (Figure 1) and
//! multi-cluster (Figures 4–5) experiments.
//!
//! Everything is driven by named [`elephant_des::RngFactory`] streams, so a
//! workload is a pure function of `(topology parameters, config, seed)`:
//! re-running an experiment regenerates the identical flow list.

use elephant_des::{RngFactory, SimDuration, SimTime};
use elephant_net::{ClosParams, FlowId, FlowSpec, HostAddr};
use rand::Rng;

use crate::profile::LoadProfile;
use crate::sizes::SizeDist;

/// Destination-locality mix. Weights need not be normalized.
#[derive(Clone, Copy, Debug)]
pub struct Locality {
    /// Weight of destinations under the same ToR.
    pub rack_local: f64,
    /// Weight of destinations in the same cluster, different rack.
    pub intra_cluster: f64,
    /// Weight of destinations in other clusters.
    pub inter_cluster: f64,
}

impl Locality {
    /// The mix used by the multi-cluster experiments: mostly cross-cluster
    /// so the approximated fabrics actually carry traffic.
    pub fn cluster_heavy() -> Self {
        Locality {
            rack_local: 0.1,
            intra_cluster: 0.3,
            inter_cluster: 0.6,
        }
    }

    /// A classic intra-DC mix for single-cluster (leaf-spine) networks.
    pub fn leaf_spine() -> Self {
        Locality {
            rack_local: 0.2,
            intra_cluster: 0.8,
            inter_cluster: 0.0,
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Per-host offered load as a fraction of the host link rate
    /// (e.g. 0.3 = each host offers 3 Gb/s on a 10 GbE NIC).
    pub load: f64,
    /// Flow-size distribution.
    pub sizes: SizeDist,
    /// Destination mix.
    pub locality: Locality,
    /// Flows start in `[0, horizon)`.
    pub horizon: SimTime,
    /// Experiment seed.
    pub seed: u64,
    /// Time-varying load multiplier (thinned inhomogeneous Poisson).
    pub profile: LoadProfile,
}

impl WorkloadConfig {
    /// Web-search sizes at 30% load with a cluster-heavy mix — the
    /// workspace's default stand-in for the paper's traffic.
    pub fn paper_default(horizon: SimTime, seed: u64) -> Self {
        WorkloadConfig {
            load: 0.3,
            sizes: SizeDist::web_search(),
            locality: Locality::cluster_heavy(),
            horizon,
            seed,
            profile: LoadProfile::Constant,
        }
    }
}

/// Generates the full flow list for a Clos network, sorted by start time.
pub fn generate(params: &ClosParams, cfg: &WorkloadConfig) -> Vec<FlowSpec> {
    assert!(cfg.load > 0.0 && cfg.load < 1.0, "load must be in (0,1)");
    let factory = RngFactory::new(cfg.seed);
    let mean_size = cfg.sizes.mean();
    // λ per host: load × link rate / (mean flow size in bits).
    let bits_per_sec = cfg.load * params.host_link.rate_gbps * 1e9;
    let lambda = bits_per_sec / (mean_size * 8.0);
    assert!(lambda > 0.0);
    // Inhomogeneous-Poisson thinning: draw at the profile's peak rate,
    // accept each arrival with probability multiplier(t)/peak. The peak
    // multiplier is additionally capped so load never exceeds the link.
    let peak = cfg.profile.peak().min(0.98 / cfg.load).max(1e-9);
    let lambda_peak = lambda * peak;

    let mut flows = Vec::new();
    let mut next_id = 1u64;
    for src in all_hosts(params) {
        let mut rng = factory.stream("workload/host", host_index(params, src));
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / lambda_peak;
            let start = SimTime::from_secs_f64(t);
            if start >= cfg.horizon {
                break;
            }
            let accept: f64 = rng.gen();
            if accept * peak > cfg.profile.multiplier(start).min(peak) {
                continue; // thinned away at this instant's load level
            }
            let Some(dst) = pick_destination(params, src, &cfg.locality, &mut rng) else {
                continue; // no eligible destination in this category
            };
            let bytes = cfg.sizes.sample(&mut rng).max(1);
            flows.push(FlowSpec {
                id: FlowId(next_id),
                src,
                dst,
                bytes,
                start,
            });
            next_id += 1;
        }
    }
    flows.sort_by_key(|f| (f.start, f.id.0));
    flows
}

/// Keeps only flows with at least one endpoint in `cluster` — the paper's
/// traffic elision: "traffic within and between approximated clusters …
/// can be safely omitted" (§6.2).
pub fn filter_touching_cluster(flows: &[FlowSpec], cluster: u16) -> Vec<FlowSpec> {
    flows
        .iter()
        .filter(|f| f.src.cluster == cluster || f.dst.cluster == cluster)
        .copied()
        .collect()
}

/// A synchronized incast: `senders` hosts each send `bytes` to `dst` at
/// `start`. With enough senders the per-flow fair share drops below one
/// minimum window and TCP can no longer back off — the §2.1 pathology.
pub fn incast(
    senders: &[HostAddr],
    dst: HostAddr,
    bytes: u64,
    start: SimTime,
    first_id: u64,
) -> Vec<FlowSpec> {
    senders
        .iter()
        .enumerate()
        .map(|(i, &src)| {
            assert_ne!(src, dst, "incast sender cannot be the destination");
            FlowSpec {
                id: FlowId(first_id + i as u64),
                src,
                dst,
                bytes,
                start,
            }
        })
        .collect()
}

/// Every host sends one flow to a fixed permutation partner (stress test
/// with no shared endpoints).
pub fn permutation(params: &ClosParams, bytes: u64, start: SimTime, seed: u64) -> Vec<FlowSpec> {
    let hosts = all_hosts(params);
    let n = hosts.len();
    let factory = RngFactory::new(seed);
    let mut rng = factory.stream("workload/permutation", 0);
    // Random derangement-ish: rotate by a random non-zero offset.
    let offset = rng.gen_range(1..n.max(2));
    hosts
        .iter()
        .enumerate()
        .map(|(i, &src)| FlowSpec {
            id: FlowId(i as u64 + 1),
            src,
            dst: hosts[(i + offset) % n],
            bytes,
            start,
        })
        .collect()
}

fn all_hosts(params: &ClosParams) -> Vec<HostAddr> {
    let mut out = Vec::with_capacity(params.total_hosts() as usize);
    for c in 0..params.clusters {
        for r in 0..params.racks_per_cluster {
            for h in 0..params.hosts_per_rack {
                out.push(HostAddr::new(c, r, h));
            }
        }
    }
    out
}

fn host_index(params: &ClosParams, a: HostAddr) -> u64 {
    let per_cluster = params.racks_per_cluster as u64 * params.hosts_per_rack as u64;
    a.cluster as u64 * per_cluster + a.rack as u64 * params.hosts_per_rack as u64 + a.host as u64
}

/// Picks a destination for `src` according to the locality mix. Returns
/// `None` when the drawn category has no eligible hosts (e.g. an
/// inter-cluster draw in a single-cluster network falls back to `None`
/// only if no other category is possible).
fn pick_destination(
    params: &ClosParams,
    src: HostAddr,
    loc: &Locality,
    rng: &mut impl Rng,
) -> Option<HostAddr> {
    // Zero out impossible categories before normalizing.
    let rack_ok = params.hosts_per_rack > 1;
    let intra_ok = params.racks_per_cluster > 1;
    let inter_ok = params.clusters > 1;
    let w = [
        if rack_ok { loc.rack_local } else { 0.0 },
        if intra_ok { loc.intra_cluster } else { 0.0 },
        if inter_ok { loc.inter_cluster } else { 0.0 },
    ];
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut draw = rng.gen_range(0.0..total);
    let category = if draw < w[0] {
        0
    } else {
        draw -= w[0];
        if draw < w[1] {
            1
        } else {
            2
        }
    };
    Some(match category {
        0 => {
            // Same rack, different host.
            let mut h = rng.gen_range(0..params.hosts_per_rack - 1);
            if h >= src.host {
                h += 1;
            }
            HostAddr::new(src.cluster, src.rack, h)
        }
        1 => {
            // Same cluster, different rack.
            let mut r = rng.gen_range(0..params.racks_per_cluster - 1);
            if r >= src.rack {
                r += 1;
            }
            HostAddr::new(src.cluster, r, rng.gen_range(0..params.hosts_per_rack))
        }
        _ => {
            // Different cluster.
            let mut c = rng.gen_range(0..params.clusters - 1);
            if c >= src.cluster {
                c += 1;
            }
            HostAddr::new(
                c,
                rng.gen_range(0..params.racks_per_cluster),
                rng.gen_range(0..params.hosts_per_rack),
            )
        }
    })
}

/// Offered load sanity helper: total bytes in `flows` expressed as a
/// fraction of what all host links could carry over `horizon`.
pub fn realized_load(params: &ClosParams, flows: &[FlowSpec], horizon: SimDuration) -> f64 {
    let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
    let capacity = params.total_hosts() as f64 * params.host_link.rate_gbps * 1e9 / 8.0
        * horizon.as_secs_f64();
    bytes as f64 * 1.0 / capacity
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ClosParams {
        ClosParams::paper_cluster(4)
    }

    #[test]
    fn generate_is_deterministic() {
        let cfg = WorkloadConfig::paper_default(SimTime::from_millis(50), 42);
        let a = generate(&params(), &cfg);
        let b = generate(&params(), &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                (x.id, x.src, x.dst, x.bytes, x.start),
                (y.id, y.src, y.dst, y.bytes, y.start)
            );
        }
        assert!(!a.is_empty());
    }

    #[test]
    fn flows_sorted_and_unique_ids() {
        let cfg = WorkloadConfig::paper_default(SimTime::from_millis(50), 1);
        let flows = generate(&params(), &cfg);
        let mut ids = std::collections::HashSet::new();
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start, "sorted by start");
        }
        for f in &flows {
            assert!(ids.insert(f.id), "unique ids");
            assert_ne!(f.src, f.dst, "no self-flows");
            assert!(f.bytes >= 1);
            assert!(f.start < SimTime::from_millis(50));
        }
    }

    #[test]
    fn realized_load_tracks_target() {
        let horizon = SimTime::from_millis(200);
        let cfg = WorkloadConfig {
            load: 0.3,
            sizes: SizeDist::web_search(),
            locality: Locality::cluster_heavy(),
            horizon,
            seed: 7,
            profile: crate::LoadProfile::Constant,
        };
        let flows = generate(&params(), &cfg);
        let realized = realized_load(&params(), &flows, SimDuration::from_millis(200));
        assert!(
            (realized - 0.3).abs() < 0.1,
            "realized load {realized} should approximate 0.3"
        );
    }

    #[test]
    fn locality_mix_respected() {
        let cfg = WorkloadConfig {
            load: 0.3,
            sizes: SizeDist::fixed(10_000),
            locality: Locality {
                rack_local: 0.0,
                intra_cluster: 0.0,
                inter_cluster: 1.0,
            },
            horizon: SimTime::from_millis(100),
            seed: 3,
            profile: crate::LoadProfile::Constant,
        };
        let flows = generate(&params(), &cfg);
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.src.cluster != f.dst.cluster));
    }

    #[test]
    fn single_cluster_falls_back_from_inter() {
        let p = ClosParams::leaf_spine(4);
        let cfg = WorkloadConfig {
            load: 0.2,
            sizes: SizeDist::fixed(10_000),
            locality: Locality {
                rack_local: 0.5,
                intra_cluster: 0.5,
                inter_cluster: 10.0,
            },
            horizon: SimTime::from_millis(20),
            seed: 5,
            profile: crate::LoadProfile::Constant,
        };
        let flows = generate(&p, &cfg);
        assert!(!flows.is_empty());
        assert!(flows
            .iter()
            .all(|f| f.src.cluster == 0 && f.dst.cluster == 0));
    }

    #[test]
    fn filter_touching_cluster_keeps_endpoints() {
        let cfg = WorkloadConfig::paper_default(SimTime::from_millis(30), 9);
        let flows = generate(&params(), &cfg);
        let kept = filter_touching_cluster(&flows, 0);
        assert!(!kept.is_empty());
        assert!(kept.len() < flows.len(), "something was elided");
        assert!(kept
            .iter()
            .all(|f| f.src.cluster == 0 || f.dst.cluster == 0));
    }

    #[test]
    fn step_profile_modulates_arrival_rate() {
        // Load multiplier drops to 0.2 halfway through: the second half
        // must contain far fewer flow arrivals.
        let horizon = SimTime::from_millis(200);
        let cfg = WorkloadConfig {
            load: 0.3,
            sizes: SizeDist::fixed(10_000),
            locality: Locality::cluster_heavy(),
            horizon,
            seed: 13,
            profile: crate::LoadProfile::Steps(vec![(SimTime::from_millis(100), 0.2)]),
        };
        let flows = generate(&params(), &cfg);
        let half = SimTime::from_millis(100);
        let first: usize = flows.iter().filter(|f| f.start < half).count();
        let second = flows.len() - first;
        assert!(first > 50, "healthy first half ({first})");
        assert!(
            (second as f64) < first as f64 * 0.4,
            "second half thinned: {second} vs {first}"
        );
    }

    #[test]
    fn sinusoid_profile_is_deterministic_and_bounded() {
        let horizon = SimTime::from_millis(100);
        let mk = || WorkloadConfig {
            load: 0.3,
            sizes: SizeDist::fixed(10_000),
            locality: Locality::cluster_heavy(),
            horizon,
            seed: 14,
            profile: crate::LoadProfile::Sinusoid {
                period: SimTime::from_millis(50),
                min: 0.1,
                max: 1.0,
            },
        };
        let a = generate(&params(), &mk());
        let b = generate(&params(), &mk());
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        // Mean rate is roughly (min+max)/2 of the constant profile's.
        let constant = generate(
            &params(),
            &WorkloadConfig {
                profile: crate::LoadProfile::Constant,
                ..mk()
            },
        );
        let ratio = a.len() as f64 / constant.len() as f64;
        assert!((0.35..0.75).contains(&ratio), "thinning ratio {ratio}");
    }

    #[test]
    fn incast_builder() {
        let senders: Vec<HostAddr> = (0..8).map(|h| HostAddr::new(1, h % 2, h / 2)).collect();
        let flows = incast(
            &senders,
            HostAddr::new(0, 0, 0),
            20_000,
            SimTime::from_micros(5),
            100,
        );
        assert_eq!(flows.len(), 8);
        assert!(flows.iter().all(|f| f.dst == HostAddr::new(0, 0, 0)));
        assert_eq!(flows[0].id, FlowId(100));
        assert_eq!(flows[7].id, FlowId(107));
    }

    #[test]
    fn permutation_has_no_self_flows_and_uses_all_hosts() {
        let p = params();
        let flows = permutation(&p, 1000, SimTime::ZERO, 11);
        assert_eq!(flows.len(), p.total_hosts() as usize);
        let mut dsts = std::collections::HashSet::new();
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(dsts.insert(f.dst), "each host receives exactly once");
        }
    }
}
