//! # elephant-trace — workload synthesis and experiment I/O
//!
//! The paper's traffic comes from a proprietary data-center web trace
//! (reference \[3\], the DCTCP study). This crate substitutes the published
//! shape of that trace: the DCTCP web-search flow-size CDF (and VL2's
//! data-mining CDF), independent per-host Poisson arrivals calibrated to a
//! target offered load, and a configurable rack/cluster/inter-cluster
//! locality mix. See DESIGN.md for why this substitution preserves the
//! behaviour the paper's models learn from.
//!
//! Also here: the traffic-elision helper for hybrid runs
//! ([`filter_touching_cluster`]), pathological workload builders
//! ([`incast`], [`permutation`]), and CSV export for figure data.
#![warn(missing_docs)]

mod export;
mod profile;
mod sizes;
mod workload;

pub use export::{write_csv, write_xy};
pub use profile::LoadProfile;
pub use sizes::SizeDist;
pub use workload::{
    filter_touching_cluster, generate, incast, permutation, realized_load, Locality, WorkloadConfig,
};
