//! Zero-allocation regression harness for the inference fast path.
//!
//! The deployed oracle calls [`MicroNet::predict`] once per boundary
//! packet; any heap traffic there multiplies by hundreds of thousands of
//! verdicts per run. This test installs a counting wrapper around the
//! system allocator and asserts that, after a short warmup (during which
//! the serde-skipped scratch buffers size themselves), steady-state
//! inference performs exactly zero allocations — for the LSTM trunk, the
//! GRU trunk, and the raw `step_infer` kernels underneath.
//!
//! Everything runs inside one `#[test]` so the global counter never races
//! with a concurrently scheduled test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use elephant_nn::{MicroNet, MicroNetConfig, RnnKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn net(rnn: RnnKind, seed: u64) -> MicroNet {
    let cfg = MicroNetConfig {
        input: 14,
        hidden: 32,
        layers: 2,
        alpha: 0.5,
        rnn,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    MicroNet::new(cfg, &mut rng)
}

fn feature(i: usize, d: usize) -> f32 {
    (((i * 31 + d * 7) % 97) as f32 / 97.0).clamp(0.0, 1.0)
}

/// Runs `steps` predictions and returns how many allocations they cost.
fn predict_allocs(net: &MicroNet, state: &mut elephant_nn::MicroNetState, steps: usize) -> u64 {
    let mut x = [0.0f32; 14];
    let before = allocations();
    let mut acc = 0.0f32;
    for i in 0..steps {
        for (d, v) in x.iter_mut().enumerate() {
            *v = feature(i, d);
        }
        let pred = net.predict(&x, state);
        acc += pred.drop_prob + pred.latency;
    }
    assert!(acc.is_finite(), "predictions stay finite");
    allocations() - before
}

#[test]
fn steady_state_inference_is_allocation_free() {
    for (kind, name) in [(RnnKind::Lstm, "lstm"), (RnnKind::Gru, "gru")] {
        let net = net(kind, 42);
        let mut state = net.init_state();
        // Warmup: scratch buffers grow to their steady-state sizes.
        let warmup = predict_allocs(&net, &mut state, 8);
        // Steady state: the fast path must not touch the heap at all. The
        // counter is process-global, so the libtest harness thread can
        // sporadically contribute a few counts; take the minimum over
        // several rounds — a hot path that truly allocates (even once per
        // thousands of calls) can never produce a zero round.
        let steady = (0..5)
            .map(|_| predict_allocs(&net, &mut state, 10_000))
            .min()
            .unwrap();
        assert_eq!(
            steady, 0,
            "{name}: {steady} allocations in the best of five 10k-prediction \
             rounds (warmup cost {warmup})"
        );
    }
}
