//! Gated recurrent units — the paper's §7 "testing new LSTM variants".
//!
//! A GRU carries a single hidden vector (no separate cell state) and three
//! gates instead of four, so it is ~25% cheaper per step than an LSTM of
//! the same width — exactly the accuracy-versus-cost trade §7 wants
//! explored. Equations (PyTorch convention):
//!
//! ```text
//! z = σ(W_z·[x; h] + b_z)          update gate
//! r = σ(W_r·[x; h] + b_r)          reset gate
//! n = tanh(W_n·[x; r⊙h] + b_n)     candidate
//! h' = (1 − z)⊙n + z⊙h
//! ```
//!
//! The layout mirrors [`crate::lstm`]: a fused `[z; r]` gate matrix over
//! `[x; h]`, a separate candidate matrix over `[x; r⊙h]`, stacked layers,
//! an allocation-free inference path, and exact BPTT (finite-difference
//! checked in the tests).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::{sigmoid, Matrix};

/// One GRU layer's parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruCell {
    /// Fused update/reset gate weights, `2H × (I+H)` (z rows first).
    pub w_zr: Matrix,
    /// Fused gate bias, `2H`.
    pub b_zr: Vec<f32>,
    /// Candidate weights, `H × (I+H)` (over `[x; r⊙h]`).
    pub w_n: Matrix,
    /// Candidate bias, `H`.
    pub b_n: Vec<f32>,
    input: usize,
    hidden: usize,
}

/// Gradients matching a [`GruCell`].
#[derive(Clone, Debug)]
pub struct GruCellGrad {
    /// dL/dW_zr.
    pub w_zr: Matrix,
    /// dL/db_zr.
    pub b_zr: Vec<f32>,
    /// dL/dW_n.
    pub w_n: Matrix,
    /// dL/db_n.
    pub b_n: Vec<f32>,
}

impl GruCellGrad {
    /// Clears accumulated gradients.
    pub fn zero(&mut self) {
        self.w_zr.fill_zero();
        self.b_zr.iter_mut().for_each(|v| *v = 0.0);
        self.w_n.fill_zero();
        self.b_n.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Cached activations for one (timestep, layer).
#[derive(Clone, Debug)]
struct StepCache {
    /// `[x; h_prev]`.
    a: Vec<f32>,
    /// `[x; r⊙h_prev]`.
    a_n: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    n: Vec<f32>,
    h_prev: Vec<f32>,
}

impl GruCell {
    /// Xavier-initialized cell.
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        GruCell {
            w_zr: Matrix::xavier(2 * hidden, input + hidden, rng),
            b_zr: vec![0.0; 2 * hidden],
            w_n: Matrix::xavier(hidden, input + hidden, rng),
            b_n: vec![0.0; hidden],
            input,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Matching zeroed gradient buffers.
    pub fn grad_buffer(&self) -> GruCellGrad {
        GruCellGrad {
            w_zr: Matrix::zeros(self.w_zr.rows(), self.w_zr.cols()),
            b_zr: vec![0.0; self.b_zr.len()],
            w_n: Matrix::zeros(self.w_n.rows(), self.w_n.cols()),
            b_n: vec![0.0; self.b_n.len()],
        }
    }

    /// One training step: consumes `h` (the previous hidden state),
    /// returns the new hidden state and the cache.
    fn step_train(&self, x: &[f32], h: &[f32]) -> (Vec<f32>, StepCache) {
        assert_eq!(x.len(), self.input);
        let hd = self.hidden;
        let mut a = Vec::with_capacity(self.input + hd);
        a.extend_from_slice(x);
        a.extend_from_slice(h);
        let mut zr = vec![0.0f32; 2 * hd];
        self.w_zr.matvec(&a, &mut zr);
        for (v, &b) in zr.iter_mut().zip(self.b_zr.iter()) {
            *v += b;
        }
        let z: Vec<f32> = zr[..hd].iter().map(|&v| sigmoid(v)).collect();
        let r: Vec<f32> = zr[hd..].iter().map(|&v| sigmoid(v)).collect();

        let mut a_n = Vec::with_capacity(self.input + hd);
        a_n.extend_from_slice(x);
        for k in 0..hd {
            a_n.push(r[k] * h[k]);
        }
        let mut n = vec![0.0f32; hd];
        self.w_n.matvec(&a_n, &mut n);
        for (v, &b) in n.iter_mut().zip(self.b_n.iter()) {
            *v = (*v + b).tanh();
        }

        let mut h_new = vec![0.0f32; hd];
        for k in 0..hd {
            h_new[k] = (1.0 - z[k]) * n[k] + z[k] * h[k];
        }
        let cache = StepCache {
            a,
            a_n,
            z,
            r,
            n,
            h_prev: h.to_vec(),
        };
        (h_new, cache)
    }

    /// One BPTT step: given `dh` on the output, accumulates parameter
    /// gradients and returns `(dx added into dx_buf, dh_prev)`.
    fn backward_step(
        &self,
        cache: &StepCache,
        dh: &[f32],
        grad: &mut GruCellGrad,
        dx: &mut [f32],
    ) -> Vec<f32> {
        let hd = self.hidden;
        let mut dh_prev = vec![0.0f32; hd];
        let mut dzr_pre = vec![0.0f32; 2 * hd];
        let mut dn_pre = vec![0.0f32; hd];
        for k in 0..hd {
            let z = cache.z[k];
            let n = cache.n[k];
            let hp = cache.h_prev[k];
            let dz = dh[k] * (hp - n);
            let dn = dh[k] * (1.0 - z);
            dh_prev[k] += dh[k] * z;
            dzr_pre[k] = dz * z * (1.0 - z);
            dn_pre[k] = dn * (1.0 - n * n);
        }

        // Candidate path: n = tanh(W_n·a_n + b_n), a_n = [x; r⊙h_prev].
        grad.w_n.rank1_add(&dn_pre, &cache.a_n);
        for (g, &d) in grad.b_n.iter_mut().zip(dn_pre.iter()) {
            *g += d;
        }
        let mut da_n = vec![0.0f32; self.input + hd];
        self.w_n.matvec_t_add(&dn_pre, &mut da_n);
        for (xg, &d) in dx.iter_mut().zip(da_n[..self.input].iter()) {
            *xg += d;
        }
        for k in 0..hd {
            let drh = da_n[self.input + k];
            dh_prev[k] += drh * cache.r[k];
            let dr = drh * cache.h_prev[k];
            dzr_pre[hd + k] = dr * cache.r[k] * (1.0 - cache.r[k]);
        }

        // Gate path: [z; r] = σ(W_zr·a + b_zr), a = [x; h_prev].
        grad.w_zr.rank1_add(&dzr_pre, &cache.a);
        for (g, &d) in grad.b_zr.iter_mut().zip(dzr_pre.iter()) {
            *g += d;
        }
        let mut da = vec![0.0f32; self.input + hd];
        self.w_zr.matvec_t_add(&dzr_pre, &mut da);
        for (xg, &d) in dx.iter_mut().zip(da[..self.input].iter()) {
            *xg += d;
        }
        for k in 0..hd {
            dh_prev[k] += da[self.input + k];
        }
        dh_prev
    }
}

/// A stack of GRU layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Gru {
    /// The layers, bottom first.
    pub cells: Vec<GruCell>,
}

/// Persistent state for a stacked GRU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruState {
    /// Per-layer hidden vectors.
    pub layers: Vec<Vec<f32>>,
    #[serde(skip)]
    scratch: InferScratch,
}

#[derive(Clone, Debug, Default)]
struct InferScratch {
    a: Vec<f32>,
    zr: Vec<f32>,
    a_n: Vec<f32>,
    n: Vec<f32>,
    x: Vec<f32>,
}

/// Activation cache for a training window.
pub struct GruSeqCache {
    steps: Vec<Vec<StepCache>>,
}

impl Gru {
    /// Builds `layers` stacked cells.
    pub fn new(input: usize, hidden: usize, layers: usize, rng: &mut impl Rng) -> Self {
        assert!(layers >= 1);
        let mut cells = Vec::with_capacity(layers);
        cells.push(GruCell::new(input, hidden, rng));
        for _ in 1..layers {
            cells.push(GruCell::new(hidden, hidden, rng));
        }
        Gru { cells }
    }

    /// Input width of the bottom layer.
    pub fn input(&self) -> usize {
        self.cells[0].input()
    }

    /// Hidden width of the top layer.
    pub fn hidden(&self) -> usize {
        self.cells.last().expect("non-empty").hidden()
    }

    /// Zeroed state.
    pub fn init_state(&self) -> GruState {
        GruState {
            layers: self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect(),
            scratch: InferScratch::default(),
        }
    }

    /// Matching zeroed gradient buffers, one per layer.
    pub fn grad_buffers(&self) -> Vec<GruCellGrad> {
        self.cells.iter().map(|c| c.grad_buffer()).collect()
    }

    /// Allocation-free inference step; writes the top hidden vector into
    /// `out`.
    pub fn step_infer(&self, x: &[f32], state: &mut GruState, out: &mut [f32]) {
        let InferScratch {
            a,
            zr,
            a_n,
            n,
            x: x_buf,
        } = &mut state.scratch;
        x_buf.clear();
        x_buf.extend_from_slice(x);
        for (cell, h) in self.cells.iter().zip(state.layers.iter_mut()) {
            let hd = cell.hidden;
            a.clear();
            a.extend_from_slice(x_buf);
            a.extend_from_slice(h);
            zr.resize(2 * hd, 0.0);
            // Fused matvec + bias + sigmoid (empty tanh range): zr holds
            // the activated update/reset gates directly.
            cell.w_zr.gate_matvec(a, &cell.b_zr, 0..0, zr);
            a_n.clear();
            a_n.extend_from_slice(x_buf);
            for k in 0..hd {
                a_n.push(zr[hd + k] * h[k]);
            }
            n.resize(hd, 0.0);
            // Candidate: fused matvec + bias + tanh over every row.
            cell.w_n.gate_matvec(a_n, &cell.b_n, 0..hd, n);
            for k in 0..hd {
                let z = zr[k];
                h[k] = (1.0 - z) * n[k] + z * h[k];
            }
            x_buf.clear();
            x_buf.extend_from_slice(h);
        }
        out.copy_from_slice(x_buf);
    }

    /// Training window from a zero state: top hidden vectors + cache.
    pub fn forward_seq(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, GruSeqCache) {
        let mut hs: Vec<Vec<f32>> = self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect();
        let mut tops = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            let mut input = x.clone();
            let mut layer_caches = Vec::with_capacity(self.cells.len());
            for (l, cell) in self.cells.iter().enumerate() {
                let (h_new, cache) = cell.step_train(&input, &hs[l]);
                hs[l] = h_new;
                input = hs[l].clone();
                layer_caches.push(cache);
            }
            tops.push(input);
            steps.push(layer_caches);
        }
        (tops, GruSeqCache { steps })
    }

    /// Full BPTT over a cached window.
    pub fn backward_seq(
        &self,
        cache: &GruSeqCache,
        dh_top: &[Vec<f32>],
        grads: &mut [GruCellGrad],
    ) {
        assert_eq!(dh_top.len(), cache.steps.len());
        assert_eq!(grads.len(), self.cells.len());
        let nl = self.cells.len();
        let mut dh_next: Vec<Vec<f32>> = self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect();
        for t in (0..cache.steps.len()).rev() {
            let mut dx_down: Vec<f32> = Vec::new();
            for l in (0..nl).rev() {
                let cell = &self.cells[l];
                let mut dh = dh_next[l].clone();
                if l == nl - 1 {
                    for (a, &b) in dh.iter_mut().zip(dh_top[t].iter()) {
                        *a += b;
                    }
                } else {
                    for (a, &b) in dh.iter_mut().zip(dx_down.iter()) {
                        *a += b;
                    }
                }
                let mut dx = vec![0.0f32; cell.input()];
                let dh_prev = cell.backward_step(&cache.steps[t][l], &dh, &mut grads[l], &mut dx);
                dh_next[l] = dh_prev;
                dx_down = dx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seq(t: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..t)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * dim + d) as f32 * 0.9).cos() * 0.4)
                    .collect()
            })
            .collect()
    }

    fn loss(g: &Gru, xs: &[Vec<f32>]) -> f32 {
        let (tops, _) = g.forward_seq(xs);
        tops.iter().flat_map(|h| h.iter()).sum()
    }

    #[test]
    fn infer_matches_forward_seq() {
        let mut rng = SmallRng::seed_from_u64(13);
        let gru = Gru::new(4, 6, 2, &mut rng);
        let xs = seq(5, 4);
        let (tops, _) = gru.forward_seq(&xs);
        let mut state = gru.init_state();
        let mut out = vec![0.0; 6];
        for (t, x) in xs.iter().enumerate() {
            gru.step_infer(x, &mut state, &mut out);
            for (a, b) in out.iter().zip(tops[t].iter()) {
                assert!((a - b).abs() < 1e-6, "step {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indices name matrix coordinates
    fn bptt_gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(14);
        let gru = Gru::new(3, 4, 2, &mut rng);
        let xs = seq(6, 3);
        let (tops, cache) = gru.forward_seq(&xs);
        let dh_top: Vec<Vec<f32>> = tops.iter().map(|h| vec![1.0; h.len()]).collect();
        let mut grads = gru.grad_buffers();
        gru.backward_seq(&cache, &dh_top, &mut grads);

        let eps = 1e-2f32;
        for layer in 0..2 {
            // Spot-check the gate matrix, candidate matrix, and biases.
            let checks: Vec<(&str, usize, usize)> = vec![
                ("zr", 0, 0),
                (
                    "zr",
                    gru.cells[layer].w_zr.rows() - 1,
                    gru.cells[layer].w_zr.cols() - 1,
                ),
                ("n", 0, 1),
                (
                    "n",
                    gru.cells[layer].w_n.rows() - 1,
                    gru.cells[layer].w_n.cols() / 2,
                ),
            ];
            for (which, r, c) in checks {
                let mut gp = gru.clone();
                let mut gm = gru.clone();
                let an = match which {
                    "zr" => {
                        let vp = gp.cells[layer].w_zr.get(r, c) + eps;
                        gp.cells[layer].w_zr.set(r, c, vp);
                        let vm = gm.cells[layer].w_zr.get(r, c) - eps;
                        gm.cells[layer].w_zr.set(r, c, vm);
                        grads[layer].w_zr.get(r, c)
                    }
                    _ => {
                        let vp = gp.cells[layer].w_n.get(r, c) + eps;
                        gp.cells[layer].w_n.set(r, c, vp);
                        let vm = gm.cells[layer].w_n.get(r, c) - eps;
                        gm.cells[layer].w_n.set(r, c, vm);
                        grads[layer].w_n.get(r, c)
                    }
                };
                let fd = (loss(&gp, &xs) - loss(&gm, &xs)) / (2.0 * eps);
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                    "layer {layer} {which}[{r}][{c}]: analytic {an} vs fd {fd}"
                );
            }
            let bi = 1;
            let mut gp = gru.clone();
            gp.cells[layer].b_n[bi] += eps;
            let mut gm = gru.clone();
            gm.cells[layer].b_n[bi] -= eps;
            let fd = (loss(&gp, &xs) - loss(&gm, &xs)) / (2.0 * eps);
            let an = grads[layer].b_n[bi];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                "layer {layer} b_n[{bi}]: analytic {an} vs fd {fd}"
            );
        }
    }

    #[test]
    fn history_matters() {
        let mut rng = SmallRng::seed_from_u64(15);
        let gru = Gru::new(2, 4, 1, &mut rng);
        let mut s1 = gru.init_state();
        let mut s2 = gru.init_state();
        let mut o1 = vec![0.0; 4];
        let mut o2 = vec![0.0; 4];
        gru.step_infer(&[1.0, -1.0], &mut s1, &mut o1);
        gru.step_infer(&[0.3, 0.3], &mut s1, &mut o1);
        gru.step_infer(&[0.3, 0.3], &mut s2, &mut o2);
        assert_ne!(o1, o2);
    }

    #[test]
    fn outputs_bounded_and_finite() {
        let mut rng = SmallRng::seed_from_u64(16);
        let gru = Gru::new(2, 8, 2, &mut rng);
        let mut state = gru.init_state();
        let mut out = vec![0.0; 8];
        for i in 0..200 {
            let x = [(i as f32).sin() * 5.0, (i as f32).cos() * 5.0];
            gru.step_infer(&x, &mut state, &mut out);
            assert!(out.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = SmallRng::seed_from_u64(17);
        let gru = Gru::new(3, 4, 2, &mut rng);
        let json = serde_json::to_string(&gru).unwrap();
        let back: Gru = serde_json::from_str(&json).unwrap();
        let xs = seq(3, 3);
        assert_eq!(loss(&gru, &xs), loss(&back, &xs));
    }
}
