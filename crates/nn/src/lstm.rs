//! Long short-term memory layers with backpropagation through time.
//!
//! Standard LSTM (Hochreiter & Schmidhuber 1997, the paper's [14]) with
//! input, forget, cell, and output gates computed from one fused weight
//! matrix over the concatenated `[x; h_prev]`. Stacking is plain: layer
//! `l`'s input is layer `l-1`'s hidden state.
//!
//! Two execution modes:
//! * **inference** — [`Lstm::step_infer`] advances a persistent
//!   [`LstmState`] one packet at a time, exactly how the cluster oracle
//!   consumes it;
//! * **training** — [`Lstm::forward_seq`] caches activations over a
//!   truncated window and [`Lstm::backward_seq`] runs full BPTT,
//!   accumulating gradients for the optimizer.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::{sigmoid, Matrix};

/// One LSTM layer's parameters: fused gate weights `W` of shape
/// `4H × (I+H)` (gate order i, f, g, o) and bias `4H`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmCell {
    /// Fused gate weights.
    pub w: Matrix,
    /// Fused gate bias.
    pub b: Vec<f32>,
    input: usize,
    hidden: usize,
}

/// Gradients matching an [`LstmCell`].
#[derive(Clone, Debug)]
pub struct LstmCellGrad {
    /// dL/dW.
    pub w: Matrix,
    /// dL/db.
    pub b: Vec<f32>,
}

impl LstmCellGrad {
    /// Clears accumulated gradients.
    pub fn zero(&mut self) {
        self.w.fill_zero();
        self.b.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Hidden and cell state of one layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellState {
    /// Hidden state `h`.
    pub h: Vec<f32>,
    /// Cell state `c`.
    pub c: Vec<f32>,
}

/// Cached activations for one (timestep, layer), consumed by BPTT.
#[derive(Clone, Debug)]
struct StepCache {
    /// Concatenated `[x; h_prev]`.
    a: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
    c_prev: Vec<f32>,
}

impl LstmCell {
    /// Xavier-initialized cell. The forget-gate bias starts at 1.0, the
    /// standard trick that lets fresh models carry state across steps.
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let mut b = vec![0.0; 4 * hidden];
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        LstmCell {
            w: Matrix::xavier(4 * hidden, input + hidden, rng),
            b,
            input,
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Zeroed state.
    pub fn init_state(&self) -> CellState {
        CellState {
            h: vec![0.0; self.hidden],
            c: vec![0.0; self.hidden],
        }
    }

    /// Matching zeroed gradient buffers.
    pub fn grad_buffer(&self) -> LstmCellGrad {
        LstmCellGrad {
            w: Matrix::zeros(self.w.rows(), self.w.cols()),
            b: vec![0.0; self.b.len()],
        }
    }

    /// Advances `state` by one step; optionally captures the activations.
    fn step(&self, x: &[f32], state: &mut CellState, capture: bool) -> Option<StepCache> {
        assert_eq!(x.len(), self.input, "LSTM input width mismatch");
        let hdim = self.hidden;
        let mut a = Vec::with_capacity(self.input + hdim);
        a.extend_from_slice(x);
        a.extend_from_slice(&state.h);

        let mut z = vec![0.0f32; 4 * hdim];
        self.w.matvec(&a, &mut z);
        for (zv, &bv) in z.iter_mut().zip(self.b.iter()) {
            *zv += bv;
        }

        let mut i = vec![0.0f32; hdim];
        let mut f = vec![0.0f32; hdim];
        let mut g = vec![0.0f32; hdim];
        let mut o = vec![0.0f32; hdim];
        for k in 0..hdim {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[hdim + k]);
            g[k] = z[2 * hdim + k].tanh();
            o[k] = sigmoid(z[3 * hdim + k]);
        }

        let c_prev = state.c.clone();
        let mut tanh_c = vec![0.0f32; hdim];
        for k in 0..hdim {
            state.c[k] = f[k] * c_prev[k] + i[k] * g[k];
            tanh_c[k] = state.c[k].tanh();
            state.h[k] = o[k] * tanh_c[k];
        }

        capture.then_some(StepCache {
            a,
            i,
            f,
            g,
            o,
            tanh_c,
            c_prev,
        })
    }

    /// One BPTT step. `dh`/`dc` are gradients flowing in from above and
    /// from the future; outputs are written to `dx` (input gradient,
    /// added), and the returned `(dh_prev, dc_prev)`.
    fn backward_step(
        &self,
        cache: &StepCache,
        dh: &[f32],
        dc_in: &[f32],
        grad: &mut LstmCellGrad,
        dx: &mut [f32],
    ) -> (Vec<f32>, Vec<f32>) {
        let hdim = self.hidden;
        let mut dz = vec![0.0f32; 4 * hdim];
        let mut dc_prev = vec![0.0f32; hdim];
        for k in 0..hdim {
            let do_ = dh[k] * cache.tanh_c[k];
            let dc = dc_in[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev[k];
            let dg = dc * cache.i[k];
            dc_prev[k] = dc * cache.f[k];
            dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            dz[hdim + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            dz[2 * hdim + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            dz[3 * hdim + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }
        grad.w.rank1_add(&dz, &cache.a);
        for (gb, &d) in grad.b.iter_mut().zip(dz.iter()) {
            *gb += d;
        }
        let mut da = vec![0.0f32; self.input + hdim];
        self.w.matvec_t_add(&dz, &mut da);
        for (x, &d) in dx.iter_mut().zip(da[..self.input].iter()) {
            *x += d;
        }
        let dh_prev = da[self.input..].to_vec();
        (dh_prev, dc_prev)
    }
}

/// A stack of LSTM layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lstm {
    /// The layers, bottom first.
    pub cells: Vec<LstmCell>,
}

/// Persistent state for a stacked LSTM.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmState {
    /// Per-layer state, bottom first.
    pub layers: Vec<CellState>,
    /// Reused inference buffers (not part of the logical state).
    #[serde(skip)]
    scratch: InferScratch,
}

/// Allocation-free inference scratch space.
#[derive(Clone, Debug, Default)]
struct InferScratch {
    a: Vec<f32>,
    z: Vec<f32>,
    x: Vec<f32>,
}

/// Activation cache for a training window.
pub struct LstmSeqCache {
    /// `steps[t][layer]`.
    steps: Vec<Vec<StepCache>>,
}

impl Lstm {
    /// Builds `layers` stacked cells: the first maps `input → hidden`, the
    /// rest `hidden → hidden`.
    pub fn new(input: usize, hidden: usize, layers: usize, rng: &mut impl Rng) -> Self {
        assert!(layers >= 1);
        let mut cells = Vec::with_capacity(layers);
        cells.push(LstmCell::new(input, hidden, rng));
        for _ in 1..layers {
            cells.push(LstmCell::new(hidden, hidden, rng));
        }
        Lstm { cells }
    }

    /// Input width of the bottom layer.
    pub fn input(&self) -> usize {
        self.cells[0].input()
    }

    /// Hidden width of the top layer.
    pub fn hidden(&self) -> usize {
        self.cells.last().expect("non-empty").hidden()
    }

    /// Zeroed state for all layers.
    pub fn init_state(&self) -> LstmState {
        LstmState {
            layers: self.cells.iter().map(|c| c.init_state()).collect(),
            scratch: InferScratch::default(),
        }
    }

    /// Matching zeroed gradient buffers, one per layer.
    pub fn grad_buffers(&self) -> Vec<LstmCellGrad> {
        self.cells.iter().map(|c| c.grad_buffer()).collect()
    }

    /// Advances the persistent state one step; writes the top layer's
    /// hidden vector into `out`. Allocation-free: this is the per-packet
    /// hot path of the deployed oracle.
    pub fn step_infer(&self, x: &[f32], state: &mut LstmState, out: &mut [f32]) {
        let InferScratch { a, z, x: x_buf } = &mut state.scratch;
        x_buf.clear();
        x_buf.extend_from_slice(x);
        for (cell, st) in self.cells.iter().zip(state.layers.iter_mut()) {
            let hdim = cell.hidden;
            a.clear();
            a.extend_from_slice(x_buf);
            a.extend_from_slice(&st.h);
            z.resize(4 * hdim, 0.0);
            // Fused matvec + bias + gate activation: one pass over the
            // weights, bit-identical to the training-path `step`.
            cell.w.gate_matvec(a, &cell.b, 2 * hdim..3 * hdim, z);
            for k in 0..hdim {
                let i = z[k];
                let f = z[hdim + k];
                let g = z[2 * hdim + k];
                let o = z[3 * hdim + k];
                st.c[k] = f * st.c[k] + i * g;
                st.h[k] = o * st.c[k].tanh();
            }
            x_buf.clear();
            x_buf.extend_from_slice(&st.h);
        }
        out.copy_from_slice(x_buf);
    }

    /// Runs a training window from a zero state, returning the top hidden
    /// vector at each step and the cache for [`Lstm::backward_seq`].
    pub fn forward_seq(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, LstmSeqCache) {
        let mut state = self.init_state();
        let mut tops = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            let mut input = x.clone();
            let mut layer_caches = Vec::with_capacity(self.cells.len());
            for (cell, st) in self.cells.iter().zip(state.layers.iter_mut()) {
                let cache = cell.step(&input, st, true).expect("capture requested");
                input.clear();
                input.extend_from_slice(&st.h);
                layer_caches.push(cache);
            }
            tops.push(input.clone());
            steps.push(layer_caches);
        }
        (tops, LstmSeqCache { steps })
    }

    /// Full BPTT over a cached window. `dh_top[t]` is the loss gradient on
    /// the top hidden vector at step `t`; gradients accumulate into
    /// `grads` (one per layer).
    pub fn backward_seq(
        &self,
        cache: &LstmSeqCache,
        dh_top: &[Vec<f32>],
        grads: &mut [LstmCellGrad],
    ) {
        assert_eq!(dh_top.len(), cache.steps.len(), "gradient per timestep");
        assert_eq!(grads.len(), self.cells.len(), "gradient buffer per layer");
        let nl = self.cells.len();
        let mut dh_next: Vec<Vec<f32>> = self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect();
        let mut dc_next: Vec<Vec<f32>> = self.cells.iter().map(|c| vec![0.0; c.hidden()]).collect();

        for t in (0..cache.steps.len()).rev() {
            // `dx_down` carries the gradient flowing into the layer below.
            let mut dx_down: Vec<f32> = Vec::new();
            for l in (0..nl).rev() {
                let cell = &self.cells[l];
                let mut dh = dh_next[l].clone();
                if l == nl - 1 {
                    for (a, &b) in dh.iter_mut().zip(dh_top[t].iter()) {
                        *a += b;
                    }
                } else {
                    for (a, &b) in dh.iter_mut().zip(dx_down.iter()) {
                        *a += b;
                    }
                }
                let mut dx = vec![0.0f32; cell.input()];
                let (dh_prev, dc_prev) = cell.backward_step(
                    &cache.steps[t][l],
                    &dh,
                    &dc_next[l],
                    &mut grads[l],
                    &mut dx,
                );
                dh_next[l] = dh_prev;
                dc_next[l] = dc_prev;
                dx_down = dx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seq(t: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..t)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * dim + d) as f32 * 0.7).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    /// Scalar loss: sum of all top hidden activations over the window.
    fn loss(lstm: &Lstm, xs: &[Vec<f32>]) -> f32 {
        let (tops, _) = lstm.forward_seq(xs);
        tops.iter().flat_map(|h| h.iter()).sum()
    }

    #[test]
    fn infer_matches_forward_seq() {
        let mut rng = SmallRng::seed_from_u64(3);
        let lstm = Lstm::new(4, 6, 2, &mut rng);
        let xs = seq(5, 4);
        let (tops, _) = lstm.forward_seq(&xs);
        let mut state = lstm.init_state();
        let mut out = vec![0.0; 6];
        for (t, x) in xs.iter().enumerate() {
            lstm.step_infer(x, &mut state, &mut out);
            assert_eq!(out, tops[t], "step {t} diverged");
        }
    }

    #[test]
    fn hidden_state_carries_memory() {
        let mut rng = SmallRng::seed_from_u64(4);
        let lstm = Lstm::new(2, 4, 1, &mut rng);
        let mut s1 = lstm.init_state();
        let mut s2 = lstm.init_state();
        let mut out1 = vec![0.0; 4];
        let mut out2 = vec![0.0; 4];
        // Same final input, different history: outputs must differ.
        lstm.step_infer(&[1.0, -1.0], &mut s1, &mut out1);
        lstm.step_infer(&[0.5, 0.5], &mut s1, &mut out1);
        lstm.step_infer(&[0.5, 0.5], &mut s2, &mut out2);
        assert_ne!(out1, out2, "history must influence output");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indices name matrix coordinates
    fn bptt_gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(5);
        let lstm = Lstm::new(3, 4, 2, &mut rng);
        let xs = seq(6, 3);

        let (tops, cache) = lstm.forward_seq(&xs);
        let dh_top: Vec<Vec<f32>> = tops.iter().map(|h| vec![1.0; h.len()]).collect();
        let mut grads = lstm.grad_buffers();
        lstm.backward_seq(&cache, &dh_top, &mut grads);

        let eps = 1e-2f32;
        // Spot-check a spread of weights in both layers plus biases.
        for layer in 0..2 {
            let rows = lstm.cells[layer].w.rows();
            let cols = lstm.cells[layer].w.cols();
            for &(r, c) in &[(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let mut lp = lstm.clone();
                let vp = lp.cells[layer].w.get(r, c) + eps;
                lp.cells[layer].w.set(r, c, vp);
                let mut lm = lstm.clone();
                let vm = lm.cells[layer].w.get(r, c) - eps;
                lm.cells[layer].w.set(r, c, vm);
                let fd = (loss(&lp, &xs) - loss(&lm, &xs)) / (2.0 * eps);
                let an = grads[layer].w.get(r, c);
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                    "layer {layer} dW[{r}][{c}]: analytic {an} vs fd {fd}"
                );
            }
            let bi = lstm.cells[layer].b.len() / 2;
            let mut lp = lstm.clone();
            lp.cells[layer].b[bi] += eps;
            let mut lm = lstm.clone();
            lm.cells[layer].b[bi] -= eps;
            let fd = (loss(&lp, &xs) - loss(&lm, &xs)) / (2.0 * eps);
            let an = grads[layer].b[bi];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                "layer {layer} db[{bi}]: analytic {an} vs fd {fd}"
            );
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SmallRng::seed_from_u64(6);
        let cell = LstmCell::new(2, 3, &mut rng);
        assert_eq!(&cell.b[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&cell.b[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = SmallRng::seed_from_u64(7);
        let lstm = Lstm::new(3, 4, 2, &mut rng);
        let json = serde_json::to_string(&lstm).unwrap();
        let back: Lstm = serde_json::from_str(&json).unwrap();
        let xs = seq(3, 3);
        assert_eq!(loss(&lstm, &xs), loss(&back, &xs));
    }

    #[test]
    fn outputs_are_bounded() {
        // h = o * tanh(c): |h| < 1 always.
        let mut rng = SmallRng::seed_from_u64(8);
        let lstm = Lstm::new(2, 8, 2, &mut rng);
        let mut state = lstm.init_state();
        let mut out = vec![0.0; 8];
        for i in 0..100 {
            let x = [(i as f32).sin() * 10.0, (i as f32).cos() * 10.0];
            lstm.step_infer(&x, &mut state, &mut out);
            assert!(out.iter().all(|v| v.abs() < 1.0 && v.is_finite()));
        }
    }
}
