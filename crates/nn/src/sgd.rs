//! Stochastic gradient descent with momentum, plus global-norm clipping.
//!
//! The paper trains with "the stochastic gradient descent optimizer with a
//! learning rate of 0.0001 and momentum of 0.9" (§4.2); this is that
//! optimizer. Parameters are presented as ordered slices; the optimizer
//! lazily allocates one velocity buffer per slice on first use and asserts
//! the ordering never changes.

/// SGD with classical momentum: `v ← m·v − lr·g`, `w ← w + v`.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates the optimizer. `lr` must be positive, `momentum` in `[0,1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            lr,
            momentum,
            velocities: Vec::new(),
        }
    }

    /// The paper's settings: lr 1e-4, momentum 0.9.
    pub fn paper_defaults() -> Self {
        Sgd::new(1e-4, 0.9)
    }

    /// Learning rate (mutable for schedules).
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjusts the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    /// Applies one update. `params[i]` and `grads[i]` must be parallel
    /// slices, presented in the same order on every call.
    pub fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "params/grads slice count mismatch"
        );
        if self.velocities.is_empty() {
            self.velocities = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(
            self.velocities.len(),
            params.len(),
            "parameter layout changed"
        );
        for ((p, g), v) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(self.velocities.iter_mut())
        {
            assert_eq!(p.len(), g.len(), "param/grad length mismatch");
            assert_eq!(p.len(), v.len(), "parameter layout changed");
            for k in 0..p.len() {
                v[k] = self.momentum * v[k] - self.lr * g[k];
                p[k] += v[k];
            }
        }
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut [&mut [f32]], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0);
    let sq: f64 = grads
        .iter()
        .flat_map(|g| g.iter())
        .map(|&v| (v as f64) * (v as f64))
        .sum();
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.iter_mut() {
                *v *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_descends_a_quadratic() {
        // Minimize f(w) = (w-3)^2 with momentum 0.
        let mut sgd = Sgd::new(0.1, 0.0);
        let mut w = [0.0f32];
        for _ in 0..200 {
            let g = [2.0 * (w[0] - 3.0)];
            sgd.step(&mut [&mut w], &[&g]);
        }
        assert!((w[0] - 3.0).abs() < 1e-3, "w = {}", w[0]);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |m: f32, iters: usize| {
            let mut sgd = Sgd::new(0.01, m);
            let mut w = [0.0f32];
            for _ in 0..iters {
                let g = [2.0 * (w[0] - 3.0)];
                sgd.step(&mut [&mut w], &[&g]);
            }
            (w[0] - 3.0).abs()
        };
        assert!(
            run(0.9, 50) < run(0.0, 50),
            "momentum converges faster here"
        );
    }

    #[test]
    fn first_step_is_minus_lr_g() {
        let mut sgd = Sgd::new(0.5, 0.9);
        let mut w = [1.0f32, 2.0];
        let g = [2.0f32, -4.0];
        sgd.step(&mut [&mut w], &[&g]);
        assert_eq!(w, [0.0, 4.0]);
    }

    #[test]
    fn clip_rescales_above_threshold() {
        let mut a = [3.0f32, 0.0];
        let mut b = [0.0f32, 4.0];
        let norm = clip_global_norm(&mut [&mut a, &mut b], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let sq: f32 = a.iter().chain(b.iter()).map(|v| v * v).sum();
        assert!((sq.sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let mut a = [0.3f32, 0.4];
        let norm = clip_global_norm(&mut [&mut a], 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(a, [0.3, 0.4]);
    }

    #[test]
    fn lr_is_adjustable() {
        let mut sgd = Sgd::paper_defaults();
        assert!((sgd.lr() - 1e-4).abs() < 1e-12);
        sgd.set_lr(0.01);
        assert!((sgd.lr() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn layout_change_detected() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let mut w = [0.0f32];
        sgd.step(&mut [&mut w], &[&[1.0]]);
        let mut w2 = [0.0f32, 1.0];
        sgd.step(&mut [&mut w2], &[&[1.0, 1.0]]);
    }
}
