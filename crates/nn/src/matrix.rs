//! Dense row-major matrices and the vector kernels the LSTM needs.
//!
//! The paper's models are tiny (two LSTM layers, ≤128 hidden units), so we
//! implement the handful of BLAS-1/2 kernels ourselves rather than pull in
//! a linear-algebra stack: matrix–vector products forward and transposed,
//! rank-1 gradient accumulation, and elementwise activations. The matvec
//! inner loop is written to auto-vectorize.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f32`, row-major.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialization: `U(-b, b)` with
    /// `b = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Builds from an explicit closure (used by tests).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw storage (for the optimizer).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Raw mutable storage (for the optimizer).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = A·x` (y allocated by caller, length `rows`).
    ///
    /// The inner product runs eight independent accumulators so the
    /// compiler can vectorize despite strict floating-point ordering —
    /// this kernel dominates oracle inference cost.
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = [0.0f32; 8];
            let mut rc = row.chunks_exact(8);
            let mut xc = x.chunks_exact(8);
            for (rw, xw) in (&mut rc).zip(&mut xc) {
                for k in 0..8 {
                    acc[k] += rw[k] * xw[k];
                }
            }
            let mut tail = 0.0f32;
            for (a, b) in rc.remainder().iter().zip(xc.remainder()) {
                tail += a * b;
            }
            *yr = acc.iter().sum::<f32>() + tail;
        }
    }

    /// Fused `y[r] = act(A.row(r)·x + b[r])`: matvec, bias add, and gate
    /// activation in one pass over the weights. Rows inside `tanh_rows`
    /// get `tanh`, every other row the logistic sigmoid — exactly the
    /// activation layout of fused recurrent gate blocks (LSTM: i, f, o
    /// sigmoid with g = rows `2H..3H` tanh; GRU reset/update: all sigmoid
    /// via an empty range; GRU candidate: all tanh).
    ///
    /// The accumulation order matches [`Matrix::matvec`] followed by a
    /// bias add, so switching a model to this kernel is bit-identical —
    /// the win is one traversal of `y` instead of three (matvec write,
    /// bias pass, activation pass) on the per-packet inference hot path.
    pub fn gate_matvec(
        &self,
        x: &[f32],
        bias: &[f32],
        tanh_rows: std::ops::Range<usize>,
        y: &mut [f32],
    ) {
        assert_eq!(x.len(), self.cols, "gate_matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "gate_matvec output mismatch");
        assert_eq!(bias.len(), self.rows, "gate_matvec bias mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = [0.0f32; 8];
            let mut rc = row.chunks_exact(8);
            let mut xc = x.chunks_exact(8);
            for (rw, xw) in (&mut rc).zip(&mut xc) {
                for k in 0..8 {
                    acc[k] += rw[k] * xw[k];
                }
            }
            let mut tail = 0.0f32;
            for (a, b) in rc.remainder().iter().zip(xc.remainder()) {
                tail += a * b;
            }
            let z = acc.iter().sum::<f32>() + tail + bias[r];
            *yr = if tanh_rows.contains(&r) {
                z.tanh()
            } else {
                sigmoid(z)
            };
        }
    }

    /// `y += Aᵀ·x` (x length `rows`, y length `cols`). Used to propagate
    /// gradients back through a layer.
    pub fn matvec_t_add(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output mismatch");
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (yc, &a) in y.iter_mut().zip(row.iter()) {
                *yc += xr * a;
            }
        }
    }

    /// Rank-1 update `A += u·vᵀ` (u length `rows`, v length `cols`). Used
    /// to accumulate weight gradients.
    pub fn rank1_add(&mut self, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, &b) in row.iter_mut().zip(v.iter()) {
                *a += ur * b;
            }
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of squares of all elements (for clipping).
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }
}

/// Numerically safe logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Elementwise sigmoid over a slice.
pub fn sigmoid_inplace(xs: &mut [f32]) {
    xs.iter_mut().for_each(|x| *x = sigmoid(*x));
}

/// Elementwise tanh over a slice.
pub fn tanh_inplace(xs: &mut [f32]) {
    xs.iter_mut().for_each(|x| *x = x.tanh());
}

/// `y += x` elementwise.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len());
    for (a, &b) in y.iter_mut().zip(x.iter()) {
        *a += b;
    }
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_known_values() {
        // A = [[1,2],[3,4],[5,6]], x = [1, -1]
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f32);
        let mut y = vec![0.0; 3];
        a.matvec(&[1.0, -1.0], &mut y);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn gate_matvec_matches_unfused_pipeline() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a = Matrix::xavier(12, 9, &mut rng);
        let x: Vec<f32> = (0..9).map(|i| ((i as f32) * 0.3).sin()).collect();
        let bias: Vec<f32> = (0..12).map(|i| (i as f32) * 0.05 - 0.3).collect();

        // Reference: matvec, then bias, then per-row activation.
        let mut want = vec![0.0f32; 12];
        a.matvec(&x, &mut want);
        for (v, &b) in want.iter_mut().zip(bias.iter()) {
            *v += b;
        }
        for (r, v) in want.iter_mut().enumerate() {
            *v = if (4..8).contains(&r) {
                v.tanh()
            } else {
                sigmoid(*v)
            };
        }

        let mut got = vec![0.0f32; 12];
        a.gate_matvec(&x, &bias, 4..8, &mut got);
        assert_eq!(got, want, "fused kernel must be bit-identical");
    }

    #[test]
    fn matvec_t_is_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f32);
        let mut y = vec![0.0; 2];
        a.matvec_t_add(&[1.0, 0.0, -1.0], &mut y);
        // Aᵀ = [[1,3,5],[2,4,6]] · [1,0,-1] = [-4, -4]
        assert_eq!(y, vec![-4.0, -4.0]);
    }

    #[test]
    fn rank1_matches_manual() {
        let mut a = Matrix::zeros(2, 3);
        a.rank1_add(&[1.0, 2.0], &[10.0, 20.0, 30.0]);
        assert_eq!(a.row(0), &[10.0, 20.0, 30.0]);
        assert_eq!(a.row(1), &[20.0, 40.0, 60.0]);
    }

    #[test]
    fn xavier_respects_bound_and_seed() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = Matrix::xavier(64, 64, &mut rng);
        let bound = (6.0 / 128.0f64).sqrt() as f32;
        assert!(a.data().iter().all(|v| v.abs() <= bound));
        let mut rng2 = SmallRng::seed_from_u64(7);
        let b = Matrix::xavier(64, 64, &mut rng2);
        assert_eq!(a, b, "same seed, same init");
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let json = serde_json::to_string(&a).unwrap();
        let b: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sq_norm() {
        let a = Matrix::from_fn(1, 3, |_, c| (c + 1) as f32);
        assert!((a.sq_norm() - 14.0).abs() < 1e-9);
    }
}
