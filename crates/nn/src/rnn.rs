//! A recurrent trunk that is either an LSTM or a GRU, behind one API.
//!
//! The micro model (and everything above it: training pipeline, oracle,
//! ablation harnesses) is agnostic to the recurrent architecture; this
//! enum is the dispatch point. Adding a variant means implementing the
//! same five operations (state init, inference step, window forward,
//! window backward, parameter views) and extending the enums.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gru::{Gru, GruCellGrad, GruSeqCache, GruState};
use crate::lstm::{Lstm, LstmCellGrad, LstmSeqCache, LstmState};

/// Which recurrent architecture to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum RnnKind {
    /// Long short-term memory (the paper's prototype).
    #[default]
    Lstm,
    /// Gated recurrent unit (§7 variant, ~25% cheaper per step).
    Gru,
}

/// A stacked recurrent network of either kind.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Rnn {
    /// LSTM trunk.
    Lstm(Lstm),
    /// GRU trunk.
    Gru(Gru),
}

/// Persistent inference state matching an [`Rnn`].
#[derive(Clone, Debug)]
pub enum RnnState {
    /// LSTM state.
    Lstm(LstmState),
    /// GRU state.
    Gru(GruState),
}

/// Activation cache for one training window.
pub enum RnnSeqCache {
    /// LSTM cache.
    Lstm(LstmSeqCache),
    /// GRU cache.
    Gru(GruSeqCache),
}

/// Gradient buffers matching an [`Rnn`].
pub enum RnnGrads {
    /// LSTM gradients, one per layer.
    Lstm(Vec<LstmCellGrad>),
    /// GRU gradients, one per layer.
    Gru(Vec<GruCellGrad>),
}

impl Rnn {
    /// Builds a trunk of the requested kind.
    pub fn new(
        kind: RnnKind,
        input: usize,
        hidden: usize,
        layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        match kind {
            RnnKind::Lstm => Rnn::Lstm(Lstm::new(input, hidden, layers, rng)),
            RnnKind::Gru => Rnn::Gru(Gru::new(input, hidden, layers, rng)),
        }
    }

    /// The architecture of this trunk.
    pub fn kind(&self) -> RnnKind {
        match self {
            Rnn::Lstm(_) => RnnKind::Lstm,
            Rnn::Gru(_) => RnnKind::Gru,
        }
    }

    /// Hidden width of the top layer.
    pub fn hidden(&self) -> usize {
        match self {
            Rnn::Lstm(m) => m.hidden(),
            Rnn::Gru(m) => m.hidden(),
        }
    }

    /// Input width of the bottom layer.
    pub fn input(&self) -> usize {
        match self {
            Rnn::Lstm(m) => m.input(),
            Rnn::Gru(m) => m.input(),
        }
    }

    /// Zeroed inference state.
    pub fn init_state(&self) -> RnnState {
        match self {
            Rnn::Lstm(m) => RnnState::Lstm(m.init_state()),
            Rnn::Gru(m) => RnnState::Gru(m.init_state()),
        }
    }

    /// Matching zeroed gradient buffers.
    pub fn grad_buffers(&self) -> RnnGrads {
        match self {
            Rnn::Lstm(m) => RnnGrads::Lstm(m.grad_buffers()),
            Rnn::Gru(m) => RnnGrads::Gru(m.grad_buffers()),
        }
    }

    /// Allocation-free inference step.
    pub fn step_infer(&self, x: &[f32], state: &mut RnnState, out: &mut [f32]) {
        match (self, state) {
            (Rnn::Lstm(m), RnnState::Lstm(s)) => m.step_infer(x, s, out),
            (Rnn::Gru(m), RnnState::Gru(s)) => m.step_infer(x, s, out),
            _ => panic!("RNN state kind does not match the trunk"),
        }
    }

    /// Training-window forward pass from a zero state.
    pub fn forward_seq(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, RnnSeqCache) {
        match self {
            Rnn::Lstm(m) => {
                let (tops, cache) = m.forward_seq(xs);
                (tops, RnnSeqCache::Lstm(cache))
            }
            Rnn::Gru(m) => {
                let (tops, cache) = m.forward_seq(xs);
                (tops, RnnSeqCache::Gru(cache))
            }
        }
    }

    /// BPTT over a cached window.
    pub fn backward_seq(&self, cache: &RnnSeqCache, dh_top: &[Vec<f32>], grads: &mut RnnGrads) {
        match (self, cache, grads) {
            (Rnn::Lstm(m), RnnSeqCache::Lstm(c), RnnGrads::Lstm(g)) => m.backward_seq(c, dh_top, g),
            (Rnn::Gru(m), RnnSeqCache::Gru(c), RnnGrads::Gru(g)) => m.backward_seq(c, dh_top, g),
            _ => panic!("RNN cache/grad kind does not match the trunk"),
        }
    }

    /// Flat parameter views, stable order.
    pub fn param_slices(&mut self) -> Vec<&mut [f32]> {
        let mut v: Vec<&mut [f32]> = Vec::new();
        match self {
            Rnn::Lstm(m) => {
                for cell in m.cells.iter_mut() {
                    v.push(cell.w.data_mut());
                    v.push(cell.b.as_mut_slice());
                }
            }
            Rnn::Gru(m) => {
                for cell in m.cells.iter_mut() {
                    v.push(cell.w_zr.data_mut());
                    v.push(cell.b_zr.as_mut_slice());
                    v.push(cell.w_n.data_mut());
                    v.push(cell.b_n.as_mut_slice());
                }
            }
        }
        v
    }

    /// Read-only flat parameter views, ordered to match [`Rnn::param_slices`].
    pub fn param_views(&self) -> Vec<&[f32]> {
        let mut v: Vec<&[f32]> = Vec::new();
        match self {
            Rnn::Lstm(m) => {
                for cell in m.cells.iter() {
                    v.push(cell.w.data());
                    v.push(cell.b.as_slice());
                }
            }
            Rnn::Gru(m) => {
                for cell in m.cells.iter() {
                    v.push(cell.w_zr.data());
                    v.push(cell.b_zr.as_slice());
                    v.push(cell.w_n.data());
                    v.push(cell.b_n.as_slice());
                }
            }
        }
        v
    }
}

impl RnnGrads {
    /// Clears all buffers.
    pub fn zero(&mut self) {
        match self {
            RnnGrads::Lstm(g) => g.iter_mut().for_each(|x| x.zero()),
            RnnGrads::Gru(g) => g.iter_mut().for_each(|x| x.zero()),
        }
    }

    /// Flat gradient views, ordered to match [`Rnn::param_slices`].
    pub fn grad_slices(&mut self) -> Vec<&mut [f32]> {
        let mut v: Vec<&mut [f32]> = Vec::new();
        match self {
            RnnGrads::Lstm(g) => {
                for cell in g.iter_mut() {
                    v.push(cell.w.data_mut());
                    v.push(cell.b.as_mut_slice());
                }
            }
            RnnGrads::Gru(g) => {
                for cell in g.iter_mut() {
                    v.push(cell.w_zr.data_mut());
                    v.push(cell.b_zr.as_mut_slice());
                    v.push(cell.w_n.data_mut());
                    v.push(cell.b_n.as_mut_slice());
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn both_kinds_run_the_same_api() {
        for kind in [RnnKind::Lstm, RnnKind::Gru] {
            let mut rng = SmallRng::seed_from_u64(21);
            let rnn = Rnn::new(kind, 3, 5, 2, &mut rng);
            assert_eq!(rnn.kind(), kind);
            assert_eq!(rnn.input(), 3);
            assert_eq!(rnn.hidden(), 5);
            let xs: Vec<Vec<f32>> = (0..4).map(|i| vec![0.1 * i as f32; 3]).collect();
            let (tops, cache) = rnn.forward_seq(&xs);
            assert_eq!(tops.len(), 4);
            let mut grads = rnn.grad_buffers();
            let dh: Vec<Vec<f32>> = tops.iter().map(|h| vec![1.0; h.len()]).collect();
            rnn.backward_seq(&cache, &dh, &mut grads);
            let mut state = rnn.init_state();
            let mut out = vec![0.0; 5];
            rnn.step_infer(&xs[0], &mut state, &mut out);
            assert_eq!(out, tops[0], "infer matches seq for {kind:?}");
            // Parameter/grad views line up.
            let mut rnn2 = rnn.clone();
            let p = rnn2.param_slices();
            let g = grads.grad_slices();
            assert_eq!(p.len(), g.len());
            for (a, b) in p.iter().zip(g.iter()) {
                assert_eq!(a.len(), b.len());
            }
        }
    }

    #[test]
    fn gru_is_cheaper_per_parameter() {
        let mut rng = SmallRng::seed_from_u64(22);
        let mut lstm = Rnn::new(RnnKind::Lstm, 8, 16, 2, &mut rng);
        let mut gru = Rnn::new(RnnKind::Gru, 8, 16, 2, &mut rng);
        let count = |r: &mut Rnn| r.param_slices().iter().map(|s| s.len()).sum::<usize>();
        let lp = count(&mut lstm);
        let gp = count(&mut gru);
        assert!(gp < lp, "GRU {gp} params < LSTM {lp}");
    }

    #[test]
    #[should_panic]
    fn mismatched_state_panics() {
        let mut rng = SmallRng::seed_from_u64(23);
        let lstm = Rnn::new(RnnKind::Lstm, 2, 3, 1, &mut rng);
        let gru = Rnn::new(RnnKind::Gru, 2, 3, 1, &mut rng);
        let mut state = gru.init_state();
        let mut out = vec![0.0; 3];
        lstm.step_infer(&[0.0, 0.0], &mut state, &mut out);
    }
}
