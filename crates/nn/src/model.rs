//! The micro model: a stacked LSTM with joint drop and latency heads.
//!
//! This is the paper's §4.2 architecture verbatim: packet features feed a
//! (by default two-layer) LSTM; "the multi-dimensional hidden state output
//! from the LSTM is given to one fully connected layer to predict the
//! latency and another fully connected layer to predict packet drop",
//! trained jointly because "the neural network representation can learn the
//! joint distribution of drops and latency". The loss is
//! `L = L_drop + α·L_latency` with binary cross-entropy on drops, mean
//! squared error on latency, and **no latency error backpropagated for
//! dropped packets**.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::linear::{Linear, LinearGrad};
use crate::matrix::sigmoid;
use crate::rnn::{Rnn, RnnGrads, RnnKind, RnnState};
use crate::sgd::{clip_global_norm, Sgd};

/// Architecture and loss hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MicroNetConfig {
    /// Feature-vector width.
    pub input: usize,
    /// Hidden units per LSTM layer (paper prototype: 128).
    pub hidden: usize,
    /// Stacked LSTM layers (paper prototype: 2).
    pub layers: usize,
    /// Loss balance α in `(0, 1]`: "the contribution of drops in
    /// determining future behavior is more significant than latency".
    pub alpha: f32,
    /// Recurrent architecture of the trunk (§7 explores variants).
    #[serde(default)]
    pub rnn: RnnKind,
}

impl MicroNetConfig {
    /// The paper's prototype: two layers of 128 hidden nodes, α = 0.5.
    pub fn paper(input: usize) -> Self {
        MicroNetConfig {
            input,
            hidden: 128,
            layers: 2,
            alpha: 0.5,
            rnn: RnnKind::Lstm,
        }
    }

    /// A smaller, CPU-friendly configuration used by the workspace's
    /// default experiments (see DESIGN.md: absolute model capacity is not
    /// load-bearing for the reproduction's shape targets).
    pub fn compact(input: usize) -> Self {
        MicroNetConfig {
            input,
            hidden: 32,
            layers: 2,
            alpha: 0.5,
            rnn: RnnKind::Lstm,
        }
    }
}

/// One training example: features plus ground truth from boundary capture.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sample {
    /// Normalized feature vector.
    pub features: Vec<f32>,
    /// Did the fabric drop the packet?
    pub dropped: bool,
    /// Normalized latency target (ignored when `dropped`).
    pub latency: f32,
}

/// The model's verdict for one packet.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    /// Probability the fabric drops the packet.
    pub drop_prob: f32,
    /// Predicted (normalized) latency if it survives.
    pub latency: f32,
}

/// The micro model (see module docs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MicroNet {
    /// Architecture.
    pub cfg: MicroNetConfig,
    /// Shared recurrent trunk.
    pub rnn: Rnn,
    /// Latency regression head.
    pub latency_head: Linear,
    /// Drop classification head (logit; sigmoid applied at use).
    pub drop_head: Linear,
}

/// Persistent inference state (one per model instance per cluster).
#[derive(Clone, Debug)]
pub struct MicroNetState {
    rnn: RnnState,
    top: Vec<f32>,
}

/// Gradient buffers for a [`MicroNet`].
pub struct MicroNetGrads {
    rnn: RnnGrads,
    latency: LinearGrad,
    drop: LinearGrad,
}

impl MicroNetGrads {
    /// Clears all buffers.
    pub fn zero(&mut self) {
        self.rnn.zero();
        self.latency.zero();
        self.drop.zero();
    }
}

/// Loss decomposition over one training window.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowLoss {
    /// Mean binary cross-entropy of the drop head.
    pub drop_loss: f64,
    /// Mean squared error of the latency head (non-dropped samples).
    pub latency_loss: f64,
    /// Samples in the window.
    pub samples: usize,
    /// Samples contributing latency error.
    pub latency_samples: usize,
    /// Drop-classification hits at threshold 0.5.
    pub drop_correct: usize,
}

impl WindowLoss {
    /// The paper's combined objective `L = L_drop + α·L_latency`.
    pub fn total(&self, alpha: f32) -> f64 {
        self.drop_loss + alpha as f64 * self.latency_loss
    }

    /// Accumulates another window's loss (weighted by sample counts).
    pub fn merge(&mut self, other: &WindowLoss) {
        let n1 = self.samples as f64;
        let n2 = other.samples as f64;
        if n1 + n2 > 0.0 {
            self.drop_loss = (self.drop_loss * n1 + other.drop_loss * n2) / (n1 + n2);
        }
        let l1 = self.latency_samples as f64;
        let l2 = other.latency_samples as f64;
        if l1 + l2 > 0.0 {
            self.latency_loss = (self.latency_loss * l1 + other.latency_loss * l2) / (l1 + l2);
        }
        self.samples += other.samples;
        self.latency_samples += other.latency_samples;
        self.drop_correct += other.drop_correct;
    }
}

impl MicroNet {
    /// Fresh Xavier-initialized model.
    pub fn new(cfg: MicroNetConfig, rng: &mut impl Rng) -> Self {
        let rnn = Rnn::new(cfg.rnn, cfg.input, cfg.hidden, cfg.layers, rng);
        MicroNet {
            latency_head: Linear::new(cfg.hidden, 1, rng),
            drop_head: Linear::new(cfg.hidden, 1, rng),
            rnn,
            cfg,
        }
    }

    /// Zeroed inference state.
    pub fn init_state(&self) -> MicroNetState {
        MicroNetState {
            rnn: self.rnn.init_state(),
            top: vec![0.0; self.cfg.hidden],
        }
    }

    /// Matching zeroed gradient buffers.
    pub fn grad_buffers(&self) -> MicroNetGrads {
        MicroNetGrads {
            rnn: self.rnn.grad_buffers(),
            latency: self.latency_head.grad_buffer(),
            drop: self.drop_head.grad_buffer(),
        }
    }

    /// Advances the stateful model one packet and returns its verdict —
    /// "prediction only involves a few matrix multiplications and
    /// non-linear transformations" (§4.2).
    pub fn predict(&self, features: &[f32], state: &mut MicroNetState) -> Prediction {
        self.rnn
            .step_infer(features, &mut state.rnn, &mut state.top);
        let mut lat = [0.0f32];
        let mut logit = [0.0f32];
        self.latency_head.forward(&state.top, &mut lat);
        self.drop_head.forward(&state.top, &mut logit);
        Prediction {
            drop_prob: sigmoid(logit[0]),
            latency: lat[0],
        }
    }

    /// Evaluates a window without touching gradients.
    pub fn evaluate_window(&self, samples: &[Sample]) -> WindowLoss {
        self.window_pass(samples, None)
    }

    /// Forward + backward over one window; gradients accumulate into
    /// `grads`. Returns the loss decomposition.
    pub fn train_window(&self, samples: &[Sample], grads: &mut MicroNetGrads) -> WindowLoss {
        self.window_pass(samples, Some(grads))
    }

    fn window_pass(&self, samples: &[Sample], grads: Option<&mut MicroNetGrads>) -> WindowLoss {
        assert!(!samples.is_empty(), "empty training window");
        let xs: Vec<Vec<f32>> = samples.iter().map(|s| s.features.clone()).collect();
        let (tops, cache) = self.rnn.forward_seq(&xs);

        let n = samples.len() as f32;
        let mut loss = WindowLoss {
            samples: samples.len(),
            ..Default::default()
        };
        let mut dh_top: Vec<Vec<f32>> = Vec::with_capacity(samples.len());
        let mut head_grads: Option<&mut MicroNetGrads> = grads;

        // Count latency samples first so gradient scaling is correct.
        let n_lat = samples.iter().filter(|s| !s.dropped).count().max(1) as f32;

        for (t, sample) in samples.iter().enumerate() {
            let h = &tops[t];
            let mut lat = [0.0f32];
            let mut logit = [0.0f32];
            self.latency_head.forward(h, &mut lat);
            self.drop_head.forward(h, &mut logit);
            let p = sigmoid(logit[0]);
            let y = sample.dropped as u8 as f32;

            // Binary cross-entropy with the usual clamp.
            let pc = p.clamp(1e-7, 1.0 - 1e-7);
            loss.drop_loss += -(y * pc.ln() + (1.0 - y) * (1.0 - pc).ln()) as f64;
            if (p >= 0.5) == sample.dropped {
                loss.drop_correct += 1;
            }

            let mut dh = vec![0.0f32; h.len()];
            // d(BCE∘σ)/dlogit = p − y, averaged over the window.
            let dlogit = [(p - y) / n];
            let mut dlat = [0.0f32];
            if !sample.dropped {
                let err = lat[0] - sample.latency;
                loss.latency_loss += (err * err) as f64;
                loss.latency_samples += 1;
                // No latency error is back-propagated for drops (§4.2).
                dlat[0] = self.cfg.alpha * 2.0 * err / n_lat;
            }
            if let Some(g) = head_grads.as_deref_mut() {
                self.drop_head.backward(h, &dlogit, &mut g.drop, &mut dh);
                if !sample.dropped {
                    self.latency_head
                        .backward(h, &dlat, &mut g.latency, &mut dh);
                }
            }
            dh_top.push(dh);
        }
        loss.drop_loss /= samples.len() as f64;
        if loss.latency_samples > 0 {
            loss.latency_loss /= loss.latency_samples as f64;
        }

        if let Some(g) = head_grads {
            self.rnn.backward_seq(&cache, &dh_top, &mut g.rnn);
        }
        loss
    }

    /// Flat views of every parameter, in a stable order.
    pub fn param_slices(&mut self) -> Vec<&mut [f32]> {
        let mut v = self.rnn.param_slices();
        v.push(self.latency_head.w.data_mut());
        v.push(self.latency_head.b.as_mut_slice());
        v.push(self.drop_head.w.data_mut());
        v.push(self.drop_head.b.as_mut_slice());
        v
    }

    /// Read-only flat views of every parameter, ordered to match
    /// [`MicroNet::param_slices`].
    pub fn param_views(&self) -> Vec<&[f32]> {
        let mut v = self.rnn.param_views();
        v.push(self.latency_head.w.data());
        v.push(self.latency_head.b.as_slice());
        v.push(self.drop_head.w.data());
        v.push(self.drop_head.b.as_slice());
        v
    }

    /// FNV-1a checksum over the raw bit pattern of every parameter, in
    /// [`MicroNet::param_slices`] order. Stable across platforms because it
    /// hashes `f32::to_bits` little-endian.
    pub fn weight_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for slice in self.param_views() {
            for &w in slice {
                for byte in w.to_bits().to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        h
    }

    /// Number of non-finite (NaN or infinite) parameters in the network.
    pub fn non_finite_params(&self) -> usize {
        self.param_views()
            .iter()
            .map(|s| s.iter().filter(|w| !w.is_finite()).count())
            .sum()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl MicroNetGrads {
    /// Flat views of every gradient, ordered to match
    /// [`MicroNet::param_slices`].
    pub fn grad_slices(&mut self) -> Vec<&mut [f32]> {
        let mut v = self.rnn.grad_slices();
        v.push(self.latency.w.data_mut());
        v.push(self.latency.b.as_mut_slice());
        v.push(self.drop.w.data_mut());
        v.push(self.drop.b.as_mut_slice());
        v
    }
}

/// Training-loop hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate (paper: 1e-4).
    pub lr: f32,
    /// Momentum (paper: 0.9).
    pub momentum: f32,
    /// Windows per optimizer step (paper batch size: 64).
    pub batch: usize,
    /// Global-norm gradient clip.
    pub clip: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-4,
            momentum: 0.9,
            batch: 64,
            clip: 5.0,
        }
    }
}

/// Owns a model plus its optimizer state through a training run.
pub struct Trainer {
    /// The model being trained.
    pub model: MicroNet,
    grads: MicroNetGrads,
    sgd: Sgd,
    cfg: TrainConfig,
    pending: usize,
}

impl Trainer {
    /// Wraps a fresh model.
    pub fn new(model: MicroNet, cfg: TrainConfig) -> Self {
        Trainer {
            grads: model.grad_buffers(),
            sgd: Sgd::new(cfg.lr, cfg.momentum),
            model,
            cfg,
            pending: 0,
        }
    }

    /// Accumulates one window; steps the optimizer every `batch` windows.
    pub fn train_window(&mut self, samples: &[Sample]) -> WindowLoss {
        let loss = self.model.train_window(samples, &mut self.grads);
        self.pending += 1;
        if self.pending >= self.cfg.batch {
            self.apply();
        }
        loss
    }

    /// Flushes any accumulated gradients (end of epoch).
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.apply();
        }
    }

    fn apply(&mut self) {
        {
            let mut gs = self.grads.grad_slices();
            // Average over the accumulated windows.
            let scale = 1.0 / self.pending as f32;
            for g in gs.iter_mut() {
                for v in g.iter_mut() {
                    *v *= scale;
                }
            }
            clip_global_norm(&mut gs, self.cfg.clip);
        }
        let mut ps = self.model.param_slices();
        let gs = self.grads.grad_slices();
        let gs_ro: Vec<&[f32]> = gs.iter().map(|g| &**g).collect();
        self.sgd.step(&mut ps, &gs_ro);
        drop(ps);
        self.grads.zero();
        self.pending = 0;
    }

    /// Runs one pass over `windows`, returning the aggregate loss.
    pub fn train_epoch(&mut self, windows: &[Vec<Sample>]) -> WindowLoss {
        let mut agg = WindowLoss::default();
        for w in windows {
            let l = self.train_window(w);
            agg.merge(&l);
        }
        self.flush();
        agg
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> MicroNet {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A learnable synthetic task: drop iff feature[0] > 0; latency =
    /// 0.8·feature[1] + 0.1.
    fn synth_windows(n_windows: usize, len: usize, seed: u64) -> Vec<Vec<Sample>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n_windows)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        let f0: f32 = rng.gen_range(-1.0..1.0);
                        let f1: f32 = rng.gen_range(-1.0..1.0);
                        Sample {
                            features: vec![f0, f1, 0.3],
                            dropped: f0 > 0.0,
                            latency: 0.8 * f1 + 0.1,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss_on_learnable_task() {
        let cfg = MicroNetConfig {
            input: 3,
            hidden: 16,
            layers: 2,
            alpha: 0.5,
            rnn: RnnKind::Lstm,
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let model = MicroNet::new(cfg, &mut rng);
        let windows = synth_windows(32, 16, 99);

        let mut trainer = Trainer::new(
            model,
            TrainConfig {
                lr: 0.5,
                momentum: 0.9,
                batch: 4,
                clip: 5.0,
            },
        );
        let first = trainer.train_epoch(&windows);
        let mut last = WindowLoss::default();
        for _ in 0..80 {
            last = trainer.train_epoch(&windows);
        }
        assert!(
            last.total(cfg.alpha) < first.total(cfg.alpha) * 0.5,
            "loss fell: {} -> {}",
            first.total(cfg.alpha),
            last.total(cfg.alpha)
        );
        // Drop classification should be much better than chance.
        let acc = last.drop_correct as f64 / last.samples as f64;
        assert!(acc > 0.85, "drop accuracy {acc}");
    }

    #[test]
    fn predict_is_deterministic_and_stateful() {
        let cfg = MicroNetConfig::compact(4);
        let mut rng = SmallRng::seed_from_u64(2);
        let model = MicroNet::new(cfg, &mut rng);
        let mut s1 = model.init_state();
        let mut s2 = model.init_state();
        let x = vec![0.1, -0.2, 0.3, 0.4];
        let p1 = model.predict(&x, &mut s1);
        let p2 = model.predict(&x, &mut s2);
        assert_eq!(p1.drop_prob, p2.drop_prob);
        assert_eq!(p1.latency, p2.latency);
        // Feeding more history changes the verdict for the same packet.
        let p1b = model.predict(&x, &mut s1);
        assert_ne!(p1.latency, p1b.latency);
        assert!((0.0..=1.0).contains(&p1.drop_prob));
    }

    #[test]
    fn dropped_samples_contribute_no_latency_gradient() {
        let cfg = MicroNetConfig {
            input: 2,
            hidden: 8,
            layers: 1,
            alpha: 1.0,
            rnn: RnnKind::Lstm,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let model = MicroNet::new(cfg, &mut rng);
        let mut grads = model.grad_buffers();
        // All-dropped window with absurd latency targets: the latency head
        // must receive zero gradient.
        let window: Vec<Sample> = (0..8)
            .map(|i| Sample {
                features: vec![i as f32 * 0.1, -0.5],
                dropped: true,
                latency: 1e6,
            })
            .collect();
        let loss = model.train_window(&window, &mut grads);
        assert_eq!(loss.latency_samples, 0);
        assert_eq!(loss.latency_loss, 0.0);
        assert!(grads.latency.w.sq_norm() == 0.0, "latency head untouched");
        assert!(grads.drop.w.sq_norm() > 0.0, "drop head still learns");
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let cfg = MicroNetConfig::compact(5);
        let mut rng = SmallRng::seed_from_u64(4);
        let model = MicroNet::new(cfg, &mut rng);
        let back = MicroNet::from_json(&model.to_json()).unwrap();
        let x = vec![0.2; 5];
        let p1 = model.predict(&x, &mut model.init_state());
        let p2 = back.predict(&x, &mut back.init_state());
        assert_eq!(p1.drop_prob, p2.drop_prob);
        assert_eq!(p1.latency, p2.latency);
    }

    #[test]
    fn window_loss_merge_weights_by_count() {
        let a = WindowLoss {
            drop_loss: 1.0,
            latency_loss: 2.0,
            samples: 10,
            latency_samples: 10,
            drop_correct: 5,
        };
        let mut b = WindowLoss {
            drop_loss: 3.0,
            latency_loss: 4.0,
            samples: 30,
            latency_samples: 10,
            drop_correct: 20,
        };
        b.merge(&a);
        assert!((b.drop_loss - 2.5).abs() < 1e-9); // (3*30 + 1*10)/40
        assert!((b.latency_loss - 3.0).abs() < 1e-9); // (4*10 + 2*10)/20
        assert_eq!(b.samples, 40);
        assert_eq!(b.drop_correct, 25);
    }

    #[test]
    fn trainer_flush_applies_partial_batches() {
        let cfg = MicroNetConfig {
            input: 2,
            hidden: 4,
            layers: 1,
            alpha: 0.5,
            rnn: RnnKind::Lstm,
        };
        let mut rng = SmallRng::seed_from_u64(31);
        let model = MicroNet::new(cfg, &mut rng);
        let before = model.to_json();
        // Batch of 64 but only one window accumulated: without flush the
        // weights would not move.
        let mut trainer = Trainer::new(
            model,
            TrainConfig {
                batch: 64,
                lr: 0.5,
                ..Default::default()
            },
        );
        let window = vec![
            Sample {
                features: vec![0.3, 0.7],
                dropped: false,
                latency: 0.9,
            },
            Sample {
                features: vec![0.1, 0.2],
                dropped: true,
                latency: 0.0,
            },
        ];
        trainer.train_window(&window);
        trainer.flush();
        let after = trainer.into_model().to_json();
        assert_ne!(before, after, "flush applied the pending gradient");
    }

    #[test]
    fn alpha_scales_latency_gradient() {
        let mk = |alpha| {
            let cfg = MicroNetConfig {
                input: 2,
                hidden: 4,
                layers: 1,
                alpha,
                rnn: RnnKind::Lstm,
            };
            let mut rng = SmallRng::seed_from_u64(9);
            let model = MicroNet::new(cfg, &mut rng);
            let mut grads = model.grad_buffers();
            let window = vec![Sample {
                features: vec![0.5, 0.5],
                dropped: false,
                latency: 10.0,
            }];
            model.train_window(&window, &mut grads);
            grads.latency.w.sq_norm()
        };
        let g_small = mk(0.1);
        let g_big = mk(1.0);
        assert!(
            g_big > g_small * 50.0,
            "alpha=1 gradient {g_big} vs alpha=0.1 {g_small}"
        );
    }
}
