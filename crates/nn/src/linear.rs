//! Fully connected layers with gradient accumulation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// `y = W·x + b`, plus the machinery to backpropagate through it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `out × in`.
    pub w: Matrix,
    /// Bias, length `out`.
    pub b: Vec<f32>,
}

/// Gradient buffers matching a [`Linear`].
#[derive(Clone, Debug)]
pub struct LinearGrad {
    /// dL/dW.
    pub w: Matrix,
    /// dL/db.
    pub b: Vec<f32>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(input: usize, output: usize, rng: &mut impl Rng) -> Self {
        Linear {
            w: Matrix::xavier(output, input, rng),
            b: vec![0.0; output],
        }
    }

    /// Input width.
    pub fn input(&self) -> usize {
        self.w.cols()
    }

    /// Output width.
    pub fn output(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass into a caller-provided buffer.
    pub fn forward(&self, x: &[f32], y: &mut [f32]) {
        self.w.matvec(x, y);
        for (yo, &bo) in y.iter_mut().zip(self.b.iter()) {
            *yo += bo;
        }
    }

    /// Backward pass: given upstream `dy` and the input `x` that produced
    /// it, accumulates parameter gradients into `grad` and adds the input
    /// gradient into `dx`.
    pub fn backward(&self, x: &[f32], dy: &[f32], grad: &mut LinearGrad, dx: &mut [f32]) {
        grad.w.rank1_add(dy, x);
        for (gb, &d) in grad.b.iter_mut().zip(dy.iter()) {
            *gb += d;
        }
        self.w.matvec_t_add(dy, dx);
    }

    /// Matching zeroed gradient buffers.
    pub fn grad_buffer(&self) -> LinearGrad {
        LinearGrad {
            w: Matrix::zeros(self.w.rows(), self.w.cols()),
            b: vec![0.0; self.b.len()],
        }
    }
}

impl LinearGrad {
    /// Clears accumulated gradients.
    pub fn zero(&mut self) {
        self.w.fill_zero();
        self.b.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known() {
        let mut l = Linear::new(2, 2, &mut SmallRng::seed_from_u64(0));
        l.w = Matrix::from_fn(2, 2, |r, c| if r == c { 2.0 } else { 0.0 });
        l.b = vec![1.0, -1.0];
        let mut y = vec![0.0; 2];
        l.forward(&[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 7.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indices name matrix coordinates
    fn backward_gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(1);
        let l = Linear::new(3, 2, &mut rng);
        let x = [0.5f32, -0.3, 0.8];
        // Loss = sum(y); dL/dy = ones.
        let loss = |layer: &Linear| -> f32 {
            let mut y = vec![0.0; 2];
            layer.forward(&x, &mut y);
            y.iter().sum()
        };
        let mut grad = l.grad_buffer();
        let mut dx = vec![0.0; 3];
        l.backward(&x, &[1.0, 1.0], &mut grad, &mut dx);

        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = l.clone();
                lp.w.set(r, c, lp.w.get(r, c) + eps);
                let mut lm = l.clone();
                lm.w.set(r, c, lm.w.get(r, c) - eps);
                let fd = (loss(&lp) - loss(&lm)) / (2.0 * eps);
                assert!(
                    (fd - grad.w.get(r, c)).abs() < 1e-2,
                    "dW[{r}][{c}] analytic {} vs fd {fd}",
                    grad.w.get(r, c)
                );
            }
        }
        // dx = Wᵀ·ones = column sums.
        for c in 0..3 {
            let expect = l.w.get(0, c) + l.w.get(1, c);
            assert!((dx[c] - expect).abs() < 1e-6);
        }
        // db = dy.
        assert_eq!(grad.b, vec![1.0, 1.0]);
    }
}
