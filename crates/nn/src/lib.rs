//! # elephant-nn — the from-scratch deep-learning substrate
//!
//! The paper trained its micro models with PyTorch 0.4 on a Tesla P100 and
//! called them from OMNeT++ through ATEN. This crate replaces that entire
//! stack with a dependency-free implementation sized to the problem: the
//! models are two-layer LSTMs with at most 128 hidden units, which train
//! and serve comfortably on a CPU.
//!
//! Contents:
//!
//! * [`Matrix`] and vector kernels — the only linear algebra the models
//!   need (matvec, transposed matvec, rank-1 accumulation);
//! * [`Linear`] and [`Lstm`] layers with exact backpropagation (BPTT for
//!   the LSTM), finite-difference-checked in the test suite;
//! * [`MicroNet`] — the paper's §4.2 architecture: shared LSTM trunk, one
//!   fully connected head for latency, one for drop, joint loss
//!   `L = L_drop + α·L_latency` with latency error masked on drops;
//! * [`Sgd`] with momentum and global-norm clipping, defaulting to the
//!   paper's published hyper-parameters (lr 1e-4, momentum 0.9, batch 64);
//! * JSON (de)serialization of trained models via `serde`.
//!
//! ```
//! use elephant_nn::{MicroNet, MicroNetConfig, Sample, TrainConfig, Trainer};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let cfg = MicroNetConfig::compact(4);
//! let model = MicroNet::new(cfg, &mut SmallRng::seed_from_u64(1));
//! let mut trainer = Trainer::new(model, TrainConfig::default());
//! let window: Vec<Sample> = (0..8)
//!     .map(|i| Sample { features: vec![0.1 * i as f32; 4], dropped: i % 4 == 0, latency: 0.2 })
//!     .collect();
//! let loss = trainer.train_window(&window);
//! assert!(loss.total(cfg.alpha).is_finite());
//! let trained = trainer.into_model();
//! let verdict = trained.predict(&[0.1; 4], &mut trained.init_state());
//! assert!((0.0..=1.0).contains(&verdict.drop_prob));
//! ```

#![warn(missing_docs)]

mod gru;
mod linear;
mod lstm;
mod matrix;
mod model;
mod rnn;
mod sgd;

pub use gru::{Gru, GruCell, GruCellGrad, GruSeqCache, GruState};
pub use linear::{Linear, LinearGrad};
pub use lstm::{CellState, Lstm, LstmCell, LstmCellGrad, LstmSeqCache, LstmState};
pub use matrix::{add_assign, dot, sigmoid, sigmoid_inplace, tanh_inplace, Matrix};
pub use model::{
    MicroNet, MicroNetConfig, MicroNetGrads, MicroNetState, Prediction, Sample, TrainConfig,
    Trainer, WindowLoss,
};
pub use rnn::{Rnn, RnnGrads, RnnKind, RnnSeqCache, RnnState};
pub use sgd::{clip_global_norm, Sgd};
