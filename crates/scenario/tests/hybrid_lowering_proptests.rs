//! Property tests for the hybrid lowering: any accepted scenario document
//! with `[guard]` + `[oracle]` + `[model]` sections must compile to a
//! `Compiled` whose lowered guard/cache/model settings round-trip the
//! TOML values *exactly* — no silent clamping, no default substitution.
//! Floats are emitted with `{:?}` (shortest round-tripping form), so
//! text → f64 → lowering must reproduce the generated value bit-for-bit.

use elephant_des::SimDuration;
use elephant_scenario::{compile, CompileOverrides, Scenario};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn doc(
    clusters: u16,
    guard_enabled: bool,
    ceiling_ms: f64,
    tolerance: f64,
    trip_limit: u64,
    cache: bool,
    cache_cap: usize,
    oracle_cluster: u16,
    model_cluster: Option<u16>,
    train_fallback: bool,
) -> String {
    let mut s = format!(
        "schema = 1\n\
         [scenario]\n\
         name = \"prop\"\n\
         [topology]\n\
         clusters = {clusters}\n\
         racks_per_cluster = 2\n\
         hosts_per_rack = 2\n\
         [run]\n\
         horizon_ms = 1.0\n\
         [[traffic]]\n\
         kind = \"permutation\"\n\
         bytes = 1000\n\
         [guard]\n\
         enabled = {guard_enabled}\n\
         ceiling_ms = {ceiling_ms:?}\n\
         tolerance = {tolerance:?}\n\
         trip_limit = {trip_limit}\n\
         [model]\n\
         path = \"m.json\"\n\
         train_fallback = {train_fallback}\n"
    );
    if let Some(c) = model_cluster {
        s.push_str(&format!("full_cluster = {c}\n"));
    }
    s.push_str(&format!(
        "[oracle]\n\
         cache = {cache}\n\
         cache_cap = {cache_cap}\n\
         full_cluster = {oracle_cluster}\n"
    ));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every generated `[guard]`/`[oracle]`/`[model]` value survives
    /// decode + compile unchanged, and the declared `[model] full_cluster`
    /// wins over `[oracle] full_cluster` exactly when present.
    #[test]
    fn lowered_hybrid_settings_round_trip_exactly(
        clusters in 2u16..6,
        guard_enabled in any::<bool>(),
        ceiling_ms in 0.001f64..500.0,
        tolerance in 0.0f64..1.0,
        trip_limit in 1u64..10_000,
        cache in any::<bool>(),
        cache_cap in 1usize..1_000_000,
        oracle_pick in 0u16..8,
        model_pick in 0u16..8,
        with_model_cluster in any::<bool>(),
        train_fallback in any::<bool>(),
    ) {
        let oracle_cluster = oracle_pick % clusters;
        let model_cluster = with_model_cluster.then_some(model_pick % clusters);
        let text = doc(
            clusters,
            guard_enabled,
            ceiling_ms,
            tolerance,
            trip_limit,
            cache,
            cache_cap,
            oracle_cluster,
            model_cluster,
            train_fallback,
        );
        let s = Scenario::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("generated scenario must parse: {e}\n---\n{text}"));
        let c = compile(&s, &CompileOverrides::default());
        let h = &c.hybrid;

        prop_assert!(h.model_declared);
        prop_assert_eq!(h.model_path.as_deref(), Some("m.json"));
        prop_assert!(h.model_line > 0, "path line recorded");
        prop_assert_eq!(h.train_fallback, train_fallback);
        prop_assert_eq!(h.full_cluster, model_cluster.unwrap_or(oracle_cluster));
        prop_assert_eq!(h.cache, cache);
        prop_assert_eq!(h.cache_cap, cache_cap);

        match &h.guard {
            None => prop_assert!(!guard_enabled, "guard lowered away only when disabled"),
            Some(g) => {
                prop_assert!(guard_enabled);
                // Exact — the same from_secs_f64 conversion on the same
                // f64 the document carried.
                prop_assert_eq!(
                    g.latency_ceiling,
                    SimDuration::from_secs_f64(ceiling_ms / 1e3),
                    "ceiling_ms {ceiling_ms:?} clamped or substituted"
                );
                prop_assert_eq!(g.drop_rate_tolerance.to_bits(), tolerance.to_bits());
                prop_assert_eq!(g.trip_limit, trip_limit);
                prop_assert_eq!(g.expected_drop_rate, None, "filled at run time, not compile time");
            }
        }

        // The emitter must reproduce a scenario that decodes equal and
        // lowers to the same hybrid settings.
        let emitted = s.to_toml_string();
        let s2 = Scenario::from_toml_str(&emitted)
            .unwrap_or_else(|e| panic!("emitted TOML must re-parse: {e}\n---\n{emitted}"));
        prop_assert_eq!(&s, &s2, "emit → decode round trip");
        let c2 = compile(&s2, &CompileOverrides::default());
        prop_assert_eq!(c2.hybrid.full_cluster, h.full_cluster);
        prop_assert_eq!(c2.hybrid.cache_cap, h.cache_cap);
    }
}
