//! A minimal TOML parser with per-value line tracking.
//!
//! The build environment vendors no registry crates, so the scenario
//! subsystem carries its own reader for the slice of TOML it uses:
//! comments, `[table]` and `[[array-of-tables]]` headers, dotted and
//! quoted keys, basic (`"…"`) and literal (`'…'`) strings, integers with
//! underscores, floats, booleans, (possibly multi-line) arrays, and
//! inline tables. Dates, multi-line strings, and hex/octal/binary
//! integers are rejected with a diagnostic rather than misparsed.
//!
//! Every parsed value remembers the 1-based source line it started on, so
//! schema validation can point at the offending `file:line` instead of
//! dumping a `Debug` tree.

use std::fmt;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    /// A string (basic or literal).
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Spanned>),
    /// A table (from a header, a dotted key, or inline syntax).
    Table(Table),
}

impl TomlValue {
    /// Human-readable name of the value's type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
            TomlValue::Table(_) => "table",
        }
    }
}

/// A value plus the 1-based line it started on.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The value.
    pub value: TomlValue,
    /// 1-based source line.
    pub line: u32,
}

impl Spanned {
    fn new(value: TomlValue, line: u32) -> Self {
        Spanned { value, line }
    }
}

/// An insertion-ordered table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// `(key, value)` pairs in source order.
    pub entries: Vec<(String, Spanned)>,
    /// Line of the header (or first key) that opened this table.
    pub line: u32,
}

impl Table {
    /// The entry under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the table holds `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// All keys, in source order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut Spanned> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A parse failure: what went wrong and on which line.
#[derive(Clone, Debug, PartialEq)]
pub struct TomlError {
    /// Diagnostic message.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

/// Parses a TOML document into its root table.
pub fn parse(src: &str) -> Result<Table, TomlError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = Table {
        entries: Vec::new(),
        line: 1,
    };
    // Dotted path of the currently open `[header]`, empty at the root.
    let mut current: Vec<String> = Vec::new();
    loop {
        p.skip_trivia();
        let Some(b) = p.peek() else { break };
        if b == b'[' {
            let line = p.line;
            p.pos += 1;
            let array = p.peek() == Some(b'[');
            if array {
                p.pos += 1;
            }
            let path = p.key_path()?;
            p.expect(b']')?;
            if array {
                p.expect(b']')?;
            }
            p.require_line_end()?;
            open_header(&mut root, &path, array, line)?;
            current = path;
        } else {
            let line = p.line;
            let path = p.key_path()?;
            p.expect(b'=')?;
            let value = p.value()?;
            p.require_line_end()?;
            let table = navigate(&mut root, &current, line)?;
            insert_dotted(table, &path, value, line)?;
        }
    }
    Ok(root)
}

/// Creates (or re-enters) the table at `path`; with `array` set, appends a
/// fresh table to the array-of-tables at `path`.
fn open_header(root: &mut Table, path: &[String], array: bool, line: u32) -> Result<(), TomlError> {
    let (last, prefix) = path.split_last().expect("key paths are non-empty");
    let parent = navigate(root, prefix, line)?;
    match parent.get_mut(last) {
        None => {
            let fresh = Table {
                entries: Vec::new(),
                line,
            };
            let value = if array {
                TomlValue::Array(vec![Spanned::new(TomlValue::Table(fresh), line)])
            } else {
                TomlValue::Table(fresh)
            };
            parent
                .entries
                .push((last.clone(), Spanned::new(value, line)));
            Ok(())
        }
        Some(existing) => match (&mut existing.value, array) {
            (TomlValue::Array(items), true) => {
                items.push(Spanned::new(
                    TomlValue::Table(Table {
                        entries: Vec::new(),
                        line,
                    }),
                    line,
                ));
                Ok(())
            }
            (TomlValue::Table(_), false) => Err(TomlError {
                msg: format!("table `{last}` defined twice"),
                line,
            }),
            _ => Err(TomlError {
                msg: format!("key `{last}` redefined with a different shape"),
                line,
            }),
        },
    }
}

/// Walks `path` under `root`, creating intermediate tables, and returns
/// the innermost one. A path segment naming an array-of-tables resolves to
/// its most recent element (standard TOML sub-table semantics).
fn navigate<'a>(
    root: &'a mut Table,
    path: &[String],
    line: u32,
) -> Result<&'a mut Table, TomlError> {
    let mut t = root;
    for seg in path {
        if !t.contains(seg) {
            t.entries.push((
                seg.clone(),
                Spanned::new(
                    TomlValue::Table(Table {
                        entries: Vec::new(),
                        line,
                    }),
                    line,
                ),
            ));
        }
        let next = t.get_mut(seg).expect("just ensured");
        t = match &mut next.value {
            TomlValue::Table(sub) => sub,
            TomlValue::Array(items) => match items.last_mut().map(|s| &mut s.value) {
                Some(TomlValue::Table(sub)) => sub,
                _ => {
                    return Err(TomlError {
                        msg: format!("`{seg}` is not a table of tables"),
                        line,
                    })
                }
            },
            other => {
                return Err(TomlError {
                    msg: format!("`{seg}` is a {}, not a table", other.type_name()),
                    line,
                })
            }
        };
    }
    Ok(t)
}

/// Inserts `value` at a (possibly dotted) key path inside `table`.
fn insert_dotted(
    table: &mut Table,
    path: &[String],
    value: Spanned,
    line: u32,
) -> Result<(), TomlError> {
    let (last, prefix) = path.split_last().expect("key paths are non-empty");
    let target = navigate(table, prefix, line)?;
    if target.contains(last) {
        return Err(TomlError {
            msg: format!("duplicate key `{last}`"),
            line,
        });
    }
    target.entries.push((last.clone(), value));
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: impl Into<String>) -> TomlError {
        TomlError {
            msg: msg.into(),
            line: self.line,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, and newlines.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TomlError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                b as char,
                match self.peek() {
                    Some(c) => format!("`{}`", c as char),
                    None => "end of file".into(),
                }
            )))
        }
    }

    /// After a header or key-value, only trivia may remain on the line.
    fn require_line_end(&mut self) -> Result<(), TomlError> {
        self.skip_ws();
        match self.peek() {
            None | Some(b'\n' | b'\r' | b'#') => Ok(()),
            Some(c) => Err(self.err(format!("unexpected `{}` after value", c as char))),
        }
    }

    /// One dotted key path: `a.b."quoted c"`.
    fn key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut path = Vec::new();
        loop {
            self.skip_ws();
            path.push(self.key_segment()?);
            self.skip_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
            } else {
                return Ok(path);
            }
        }
    }

    fn key_segment(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some(b'"') => self.basic_string(),
            Some(b'\'') => self.literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.pos += 1;
                }
                Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
            }
            Some(c) => Err(self.err(format!("invalid key character `{}`", c as char))),
            None => Err(self.err("expected a key, found end of file")),
        }
    }

    fn value(&mut self) -> Result<Spanned, TomlError> {
        self.skip_ws();
        let line = self.line;
        let v = match self.peek() {
            Some(b'"') => {
                if self.bytes[self.pos..].starts_with(b"\"\"\"") {
                    return Err(self.err("multi-line strings are not supported"));
                }
                TomlValue::Str(self.basic_string()?)
            }
            Some(b'\'') => {
                if self.bytes[self.pos..].starts_with(b"'''") {
                    return Err(self.err("multi-line strings are not supported"));
                }
                TomlValue::Str(self.literal_string()?)
            }
            Some(b'[') => self.array()?,
            Some(b'{') => self.inline_table()?,
            Some(b't' | b'f') => self.boolean()?,
            Some(b'0'..=b'9' | b'-' | b'+') => self.number()?,
            Some(c) => return Err(self.err(format!("unexpected `{}` in value", c as char))),
            None => return Err(self.err("expected a value, found end of file")),
        };
        Ok(Spanned::new(v, line))
    }

    fn basic_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            // Check before bumping so the error names the line the string
            // started on, not the one after the stray newline.
            if matches!(self.peek(), None | Some(b'\n')) {
                return Err(self.err("unterminated string"));
            }
            match self.bump() {
                None | Some(b'\n') => unreachable!("peeked above"),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
                            .ok()
                            .and_then(|t| u32::from_str_radix(t, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| self.err("bad \\u escape"))?;
                        s.push(hex);
                        self.pos = end;
                    }
                    _ => return Err(self.err("unsupported escape sequence")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = chunk.chars().next().expect("non-empty chunk");
                    s.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn literal_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'\'')?;
        let start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated literal string")),
                Some(b'\'') => {
                    let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                _ => self.pos += 1,
            }
        }
    }

    fn array(&mut self) -> Result<TomlValue, TomlError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(TomlValue::Array(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(TomlValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<TomlValue, TomlError> {
        let line = self.line;
        self.expect(b'{')?;
        let mut table = Table {
            entries: Vec::new(),
            line,
        };
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(TomlValue::Table(table));
        }
        loop {
            self.skip_ws();
            let key_line = self.line;
            let path = self.key_path()?;
            self.expect(b'=')?;
            let value = self.value()?;
            insert_dotted(&mut table, &path, value, key_line)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(TomlValue::Table(table));
                }
                _ => return Err(self.err("expected `,` or `}` in inline table")),
            }
        }
    }

    fn boolean(&mut self) -> Result<TomlValue, TomlError> {
        for (word, v) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(TomlValue::Bool(v));
            }
        }
        Err(self.err("invalid literal (expected true/false)"))
    }

    fn number(&mut self) -> Result<TomlValue, TomlError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'-' | b'+')) {
            self.pos += 1;
        }
        if self.bytes[self.pos..].starts_with(b"0x")
            || self.bytes[self.pos..].starts_with(b"0o")
            || self.bytes[self.pos..].starts_with(b"0b")
        {
            return Err(self.err("hex/octal/binary integers are not supported"));
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    // Exponent sign.
                    if matches!(self.peek(), Some(b'-' | b'+')) {
                        self.pos += 1;
                    }
                }
                b'-' => return Err(self.err("dates are not supported")),
                _ => break,
            }
        }
        let txt: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if is_float {
            txt.parse::<f64>()
                .map(TomlValue::Float)
                .map_err(|_| self.err(format!("bad float `{txt}`")))
        } else {
            txt.parse::<i64>()
                .map(TomlValue::Int)
                .map_err(|_| self.err(format!("bad integer `{txt}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(t: &'a Table, k: &str) -> &'a TomlValue {
        &t.get(k).unwrap_or_else(|| panic!("missing key {k}")).value
    }

    #[test]
    fn parses_scalars_and_tables() {
        let doc = parse(
            r#"
# top comment
schema = 1
name = "incast"          # trailing comment
load = 0.35
big = 1_000_000
neg = -4
exp = 2.5e3
on = true
path = 'C:\raw'

[topology]
clusters = 2

[topology.pdes]
partitions = 4
"#,
        )
        .expect("parses");
        assert_eq!(get(&doc, "schema"), &TomlValue::Int(1));
        assert_eq!(get(&doc, "name"), &TomlValue::Str("incast".into()));
        assert_eq!(get(&doc, "load"), &TomlValue::Float(0.35));
        assert_eq!(get(&doc, "big"), &TomlValue::Int(1_000_000));
        assert_eq!(get(&doc, "neg"), &TomlValue::Int(-4));
        assert_eq!(get(&doc, "exp"), &TomlValue::Float(2500.0));
        assert_eq!(get(&doc, "on"), &TomlValue::Bool(true));
        assert_eq!(get(&doc, "path"), &TomlValue::Str("C:\\raw".into()));
        let topo = match get(&doc, "topology") {
            TomlValue::Table(t) => t,
            other => panic!("topology is {other:?}"),
        };
        assert_eq!(get(topo, "clusters"), &TomlValue::Int(2));
        let pdes = match get(topo, "pdes") {
            TomlValue::Table(t) => t,
            other => panic!("pdes is {other:?}"),
        };
        assert_eq!(get(pdes, "partitions"), &TomlValue::Int(4));
    }

    #[test]
    fn parses_arrays_of_tables_and_inline() {
        let doc = parse(
            r#"
[[traffic]]
kind = "poisson"
locality = { rack_local = 0.1, intra_cluster = 0.3, inter_cluster = 0.6 }

[[traffic]]
kind = "incast"
dst = [0, 0, 0]
mix = [
    1.5,
    2.5,  # inner comment
]
"#,
        )
        .expect("parses");
        let traffic = match get(&doc, "traffic") {
            TomlValue::Array(a) => a,
            other => panic!("traffic is {other:?}"),
        };
        assert_eq!(traffic.len(), 2);
        let second = match &traffic[1].value {
            TomlValue::Table(t) => t,
            other => panic!("entry is {other:?}"),
        };
        assert_eq!(get(second, "kind"), &TomlValue::Str("incast".into()));
        match get(second, "dst") {
            TomlValue::Array(a) => assert_eq!(a.len(), 3),
            other => panic!("dst is {other:?}"),
        }
        match get(second, "mix") {
            TomlValue::Array(a) => {
                assert_eq!(a.len(), 2);
                assert_eq!(a[1].value, TomlValue::Float(2.5));
            }
            other => panic!("mix is {other:?}"),
        }
    }

    #[test]
    fn tracks_lines() {
        let doc = parse("a = 1\n\nb = 2\n[t]\nc = 3\n").expect("parses");
        assert_eq!(doc.get("a").unwrap().line, 1);
        assert_eq!(doc.get("b").unwrap().line, 3);
        let t = match get(&doc, "t") {
            TomlValue::Table(t) => t,
            _ => unreachable!(),
        };
        assert_eq!(t.get("c").unwrap().line, 5);
    }

    #[test]
    fn rejects_duplicates_and_garbage_with_lines() {
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("duplicate"), "{e}");

        let e = parse("[t]\nx = 1\n[t]\n").unwrap_err();
        assert_eq!(e.line, 3);

        let e = parse("a = \"unterminated\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse("a = 1 trailing\n").unwrap_err();
        assert!(e.msg.contains("after value"), "{e}");

        let e = parse("a = 1979-05-27\n").unwrap_err();
        assert!(e.msg.contains("dates"), "{e}");

        let e = parse("a = 0xff\n").unwrap_err();
        assert!(e.msg.contains("hex"), "{e}");
    }

    #[test]
    fn dotted_keys_create_subtables() {
        let doc = parse("a.b.c = 5\na.b.d = 6\n").expect("parses");
        let a = match get(&doc, "a") {
            TomlValue::Table(t) => t,
            _ => unreachable!(),
        };
        let b = match get(a, "b") {
            TomlValue::Table(t) => t,
            _ => unreachable!(),
        };
        assert_eq!(get(b, "c"), &TomlValue::Int(5));
        assert_eq!(get(b, "d"), &TomlValue::Int(6));
    }
}
