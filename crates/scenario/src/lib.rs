//! Declarative scenarios: experiments as data files.
//!
//! Every workload the workspace could simulate used to be a hand-coded
//! bench binary; this crate makes them TOML files instead (ROADMAP item
//! 3). A scenario file declares the topology (tiers, link physics, PDES
//! partitioning), a traffic matrix (Poisson mixes, incast storms,
//! all-reduce / all-to-all collective phases, permutations), a regime
//! schedule, a PDES fault plan, guard/oracle knobs, and sampler outputs.
//! The pipeline is:
//!
//! ```text
//! scenarios/incast.toml
//!   └─ toml::parse        line-tracked TOML tree
//!       └─ decode         validated [`Scenario`] (typed errors w/ lines)
//!           └─ compile    [`Compiled`]: ClosParams + flows + FaultPlan
//!               └─ elephant_core::{run_ground_truth, run_pdes_full}
//! ```
//!
//! Runs are deterministic by `(scenario file, seed)`: compilation is a
//! pure function, and [`run_fingerprint`] condenses a run's outcome into
//! one comparable `u64` so the contract is testable end to end. The CLI
//! (`elephant run-scenario`) and `crates/bench` binaries both load
//! scenarios through [`load`].

pub mod compile;
pub mod decode;
pub mod schema;
pub mod toml;

use std::fmt;
use std::path::{Path, PathBuf};

pub use compile::{compile, ms_to_time, run_fingerprint, CompileOverrides, Compiled, HybridSpec};
pub use schema::{
    AuditSpec, FaultSpec, GuardSpec, HostSelector, LinkSpecToml, LocalitySpec, ModelSpec,
    OracleSpec, OutputSpec, PdesSpec, ProfileSpec, RecoverySpec, RegimeWindow, RunSpec, Scenario,
    SizeSpec, TopologySpec, TrafficGroup, TrafficKind, SCHEMA_VERSION,
};

use elephant_core::ElephantError;

/// A scenario parse or validation failure: what is wrong and on which
/// 1-based line of the file.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioError {
    /// 1-based line of the offending value (or owning table).
    pub line: u32,
    /// Diagnostic message.
    pub detail: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ScenarioError {}

impl ScenarioError {
    /// Attaches the file path, producing the pipeline-level error the CLI
    /// maps to its scenario exit code.
    pub fn into_elephant(self, path: &str) -> ElephantError {
        ElephantError::Scenario {
            path: path.to_string(),
            line: self.line,
            detail: self.detail,
        }
    }
}

impl Scenario {
    /// Decodes and validates a scenario from TOML text.
    pub fn from_toml_str(src: &str) -> Result<Scenario, ScenarioError> {
        decode::from_toml_str(src)
    }
}

/// Loads and validates a scenario file. I/O failures map to
/// [`ElephantError::Io`], parse/validation failures to
/// [`ElephantError::Scenario`] with the offending `file:line`.
pub fn load(path: &str) -> Result<Scenario, ElephantError> {
    let src = std::fs::read_to_string(path).map_err(|e| ElephantError::Io {
        path: path.to_string(),
        source: e,
    })?;
    Scenario::from_toml_str(&src).map_err(|e| e.into_elephant(path))
}

/// Lists the `.toml` files under `dir`, sorted by name.
pub fn list_scenarios(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ProfileSpec, SizeSpec, TrafficKind};

    /// A small but fully populated scenario exercising every section.
    fn full_doc() -> String {
        r#"
schema = 1

[scenario]
name = "kitchen-sink"
description = "every section populated"

[topology]
clusters = 2
racks_per_cluster = 2
hosts_per_rack = 4
aggs_per_cluster = 2
cores_per_group = 2
ecmp_seed = 7

[topology.host_link]
rate_gbps = 10.0
prop_delay_us = 1.0
queue_cap_bytes = 150000

[topology.fabric_link]
rate_gbps = 40.0

[topology.core_link]
ecn_threshold_bytes = 30000

[topology.pdes]
partitions = 4
machines = 2
envelope_bytes = 64

[run]
horizon_ms = 10.0
seed = 42
dctcp = true

[[traffic]]
kind = "poisson"
name = "background"
load = 0.2
window_ms = 8.0
sizes = "web-search"
locality = "cluster-heavy"
profile = "schedule"

[[traffic]]
kind = "incast"
start_ms = 1.0
senders = { cluster = 1 }
dst = [0, 0, 0]
bytes = 20000
repeat = 2
period_ms = 4.0

[[traffic]]
kind = "all-reduce"
hosts = [[0, 0, 0], [0, 0, 1], [0, 1, 0], [1, 0, 0]]
bytes_per_step = 65536
rounds = 2
step_gap_us = 40.0

[[traffic]]
kind = "all-to-all"
hosts = { cluster = 0, rack = 0 }
bytes = 10000

[[traffic]]
kind = "permutation"
bytes = 5000

[[regime]]
start_ms = 0.0
stop_ms = 4.0
multiplier = 1.5

[[regime]]
start_ms = 4.0
stop_ms = 8.0
multiplier = 0.5

[faults]
seed = 3
drop_prob = 0.01
dup_prob = 0.005
slow_partition = { partition = 1, ms_per_epoch = 0.2 }

[guard]
enabled = true
ceiling_ms = 50.0
tolerance = 0.2
trip_limit = 16

[recovery]
enabled = true
checkpoint_every_ms = 2.0
max_retries = 3

[audit]
enabled = true
max_drop_rate_error = 0.02
max_ks = 0.4
max_w1_ratio = 0.1

[model]
path = "models/kitchen-sink.json"
full_cluster = 0
train_fallback = true

[oracle]
cache = true
cache_cap = 1024
full_cluster = 1

[outputs]
sample_every_us = 100
"#
        .to_string()
    }

    #[test]
    fn full_scenario_decodes() {
        let s = Scenario::from_toml_str(&full_doc()).expect("valid scenario");
        assert_eq!(s.name, "kitchen-sink");
        assert_eq!(s.topology.clusters, 2);
        assert_eq!(s.topology.pdes.partitions, 4);
        assert_eq!(s.traffic.len(), 5);
        assert_eq!(s.regimes.len(), 2);
        assert!(s.faults.is_some());
        assert!(s.guard.is_some());
        let r = s.recovery.as_ref().expect("[recovery] decoded");
        assert!(r.enabled);
        assert_eq!(r.checkpoint_every_ms, 2.0);
        assert_eq!(r.max_retries, 3);
        let a = s.audit.as_ref().expect("[audit] decoded");
        assert!(a.enabled);
        assert_eq!(a.max_drop_rate_error, 0.02);
        assert_eq!(a.max_ks, 0.4);
        assert_eq!(a.max_w1_ratio, 0.1);
        let m = s.model.as_ref().expect("[model] decoded");
        assert_eq!(m.path.as_deref(), Some("models/kitchen-sink.json"));
        assert_eq!(m.full_cluster, Some(0));
        assert!(m.train_fallback);
        assert!(m.path_line > 0, "path provenance recorded");
        assert!(s.oracle.cache);
        assert_eq!(s.outputs.sample_every_us, Some(100));
        match &s.traffic[0].kind {
            TrafficKind::Poisson { profile, sizes, .. } => {
                assert_eq!(*profile, ProfileSpec::Schedule);
                assert_eq!(*sizes, SizeSpec::WebSearch);
            }
            other => panic!("group 0 decoded as {other:?}"),
        }
        assert_eq!(s.traffic[1].repeat, 2);
    }

    #[test]
    fn emit_round_trips() {
        let a = Scenario::from_toml_str(&full_doc()).expect("valid scenario");
        let emitted = a.to_toml_string();
        let b = Scenario::from_toml_str(&emitted)
            .unwrap_or_else(|e| panic!("emitted TOML must re-parse: {e}\n---\n{emitted}"));
        assert_eq!(a, b, "emit → decode must round-trip");
    }

    #[test]
    fn compile_is_deterministic_and_partitions_ids() {
        let s = Scenario::from_toml_str(&full_doc()).expect("valid scenario");
        let ov = CompileOverrides::default();
        let a = compile(&s, &ov);
        let b = compile(&s, &ov);
        assert_eq!(a.flows, b.flows, "compilation is pure");
        assert!(!a.flows.is_empty());
        assert_eq!(a.seed, 42);
        assert!(a.faults.is_some());
        let policy = a.recovery.expect("[recovery] lowers to a policy");
        assert_eq!(policy.checkpoint_every.as_nanos(), 2_000_000);
        assert_eq!(policy.max_retries, 3);
        // Ids live in their group blocks and keep the direction bit clear.
        for f in &a.flows {
            assert_eq!(f.id.0 & (1 << 63), 0);
            let group = f.id.0 / compile::GROUP_STRIDE;
            assert!(group < 5, "flow id {} outside group blocks", f.id.0);
        }
        // The incast group repeats: copy 1 sits one period later.
        let incast0: Vec<_> = a
            .flows
            .iter()
            .filter(|f| f.id.0 / compile::GROUP_STRIDE == 1)
            .collect();
        let reps: std::collections::BTreeSet<u64> = incast0
            .iter()
            .map(|f| f.id.0 % compile::GROUP_STRIDE / compile::REPEAT_STRIDE)
            .collect();
        assert_eq!(reps.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn overrides_replace_seed_horizon_repeat() {
        let s = Scenario::from_toml_str(&full_doc()).expect("valid scenario");
        let c = compile(
            &s,
            &CompileOverrides {
                seed: Some(7),
                horizon_ms: Some(20.0),
                repeat: Some(3),
            },
        );
        assert_eq!(c.seed, 7);
        assert_eq!(c.horizon, ms_to_time(20.0));
        let reps: std::collections::BTreeSet<u64> = c
            .flows
            .iter()
            .filter(|f| f.id.0 / compile::GROUP_STRIDE == 1)
            .map(|f| f.id.0 % compile::GROUP_STRIDE / compile::REPEAT_STRIDE)
            .collect();
        assert_eq!(reps.len(), 3, "repeat override applies");
    }

    /// Every scenario section has a rejection test; each asserts the
    /// reported line points at the offending key.
    mod rejections {
        use super::*;

        fn expect_err(doc: &str, needle: &str) -> ScenarioError {
            match Scenario::from_toml_str(doc) {
                Err(e) => {
                    assert!(
                        e.detail.contains(needle),
                        "error `{e}` should mention `{needle}`"
                    );
                    e
                }
                Ok(_) => panic!("scenario unexpectedly valid (wanted `{needle}`)"),
            }
        }

        /// Minimal valid scenario to mutate from.
        fn base() -> String {
            "schema = 1\n\
             [scenario]\n\
             name = \"t\"\n\
             [topology]\n\
             clusters = 1\n\
             racks_per_cluster = 2\n\
             hosts_per_rack = 2\n\
             [run]\n\
             horizon_ms = 1.0\n\
             [[traffic]]\n\
             kind = \"permutation\"\n\
             bytes = 1000\n"
                .to_string()
        }

        #[test]
        fn base_is_valid() {
            Scenario::from_toml_str(&base()).expect("base fixture must be valid");
        }

        #[test]
        fn unknown_schema_version() {
            let doc = base().replace("schema = 1", "schema = 99");
            let e = expect_err(&doc, "unsupported scenario schema version 99");
            assert_eq!(e.line, 1);
        }

        #[test]
        fn bad_link_rate() {
            let doc = format!("{}\n[topology.host_link]\nrate_gbps = -2.5\n", base());
            let e = expect_err(&doc, "rate_gbps: must be > 0");
            assert_eq!(e.line, 15, "line points at the bad rate");
        }

        #[test]
        fn dangling_incast_destination() {
            let doc = base().replace(
                "kind = \"permutation\"\nbytes = 1000\n",
                "kind = \"incast\"\ndst = [0, 9, 0]\nbytes = 1000\n",
            );
            let e = expect_err(&doc, "outside the topology");
            assert_eq!(e.line, 12, "line points at dst");
        }

        #[test]
        fn dangling_collective_hosts() {
            let doc = base().replace(
                "kind = \"permutation\"\nbytes = 1000\n",
                "kind = \"all-to-all\"\nhosts = { cluster = 3 }\nbytes = 1000\n",
            );
            expect_err(&doc, "outside the topology");
        }

        #[test]
        fn overlapping_regime_windows() {
            let doc = format!(
                "{}\n[[regime]]\nstart_ms = 0.0\nstop_ms = 0.6\nmultiplier = 2.0\n\
                 \n[[regime]]\nstart_ms = 0.5\nstop_ms = 1.0\nmultiplier = 0.5\n",
                base()
            );
            let e = expect_err(&doc, "overlaps");
            assert_eq!(e.line, 19, "line points at the second window");
        }

        #[test]
        fn unknown_keys_rejected_everywhere() {
            let doc = base().replace("horizon_ms = 1.0", "horizon_ms = 1.0\nhorizn_ms = 2.0");
            expect_err(&doc, "unknown key `horizn_ms`");
        }

        #[test]
        fn bad_load_and_missing_keys() {
            let doc = base().replace(
                "kind = \"permutation\"\nbytes = 1000\n",
                "kind = \"poisson\"\nload = 1.5\n",
            );
            expect_err(&doc, "load: must be in (0, 1)");
            let doc = base().replace("name = \"t\"\n", "");
            expect_err(&doc, "missing required key `name`");
        }

        #[test]
        fn fault_partition_out_of_range() {
            let doc = format!(
                "{}\n[faults]\nstall_partition = {{ partition = 9, after_epochs = 2 }}\n",
                base()
            );
            expect_err(&doc, "partition 9 out of range");
        }

        #[test]
        fn schedule_profile_needs_regimes() {
            let doc = base().replace(
                "kind = \"permutation\"\nbytes = 1000\n",
                "kind = \"poisson\"\nload = 0.2\nprofile = \"schedule\"\n",
            );
            expect_err(&doc, "no [[regime]] windows");
        }

        #[test]
        fn pdes_more_partitions_than_racks() {
            let doc = base().replace(
                "hosts_per_rack = 2\n",
                "hosts_per_rack = 2\n[topology.pdes]\npartitions = 8\n",
            );
            expect_err(&doc, "only has 2 racks");
        }

        #[test]
        fn guard_and_oracle_ranges() {
            let doc = format!("{}\n[guard]\ntolerance = 1.5\n", base());
            expect_err(&doc, "tolerance: must be in [0, 1]");
            let doc = format!("{}\n[oracle]\nfull_cluster = 4\n", base());
            expect_err(&doc, "full_cluster: cluster 4 out of range");
        }

        #[test]
        fn recovery_ranges_and_typos() {
            let doc = format!("{}\n[recovery]\ncheckpoint_every_ms = 0.0\n", base());
            expect_err(&doc, "checkpoint_every_ms: must be > 0");
            let doc = format!("{}\n[recovery]\nmax_retries = 0\n", base());
            expect_err(&doc, "max_retries: must be >= 1");
            let doc = format!("{}\n[recovery]\nmax_retrys = 2\n", base());
            expect_err(&doc, "unknown key `max_retrys`");
        }

        #[test]
        fn audit_ranges_and_typos() {
            let doc = format!("{}\n[audit]\nmax_ks = 1.5\n", base());
            expect_err(&doc, "max_ks: must be in [0, 1]");
            let doc = format!("{}\n[audit]\nmax_w1_ratio = 0.0\n", base());
            expect_err(&doc, "max_w1_ratio: must be > 0");
            let doc = format!("{}\n[audit]\nmax_kss = 0.2\n", base());
            expect_err(&doc, "unknown key `max_kss`");
        }

        #[test]
        fn model_rejections() {
            let doc = format!("{}\n[model]\nfull_cluster = 4\n", base());
            expect_err(&doc, "model.full_cluster: cluster 4 out of range");
            let doc = format!("{}\n[model]\npath = 7\n", base());
            expect_err(&doc, "model.path: expected a string");
            let doc = format!("{}\n[model]\npath = \"\"\n", base());
            expect_err(&doc, "model.path: must be non-empty");
            let doc = format!("{}\n[model]\npaths = \"m.json\"\n", base());
            expect_err(&doc, "unknown key `paths`");
            let doc = format!("{}\n[model]\ntrain_fallback = 1\n", base());
            expect_err(&doc, "model.train_fallback: expected a boolean");
        }

        #[test]
        fn model_section_lowers_into_hybrid_spec() {
            // No [model]: the hybrid spec still lowers [oracle]/[guard]
            // defaults but is not marked declared.
            let s = Scenario::from_toml_str(&base()).expect("valid scenario");
            let c = compile(&s, &CompileOverrides::default());
            assert!(!c.hybrid.model_declared);
            assert!(c.hybrid.model_path.is_none());
            assert_eq!(c.hybrid.full_cluster, 0);
            assert!(!c.hybrid.cache);
            let g = c.hybrid.guard.expect("guard defaults on");
            assert_eq!(g.latency_ceiling.as_nanos(), 100_000_000);

            // [model] full_cluster overrides [oracle] full_cluster; the
            // model path line points into the document.
            let doc = format!(
                "{}\n[model]\npath = \"m.json\"\nfull_cluster = 1\n\
                 [oracle]\nfull_cluster = 0\ncache = true\ncache_cap = 9\n",
                base().replace("clusters = 1", "clusters = 2")
            );
            let s = Scenario::from_toml_str(&doc).expect("valid scenario");
            let c = compile(&s, &CompileOverrides::default());
            assert!(c.hybrid.model_declared);
            assert_eq!(c.hybrid.model_path.as_deref(), Some("m.json"));
            assert!(c.hybrid.model_line > 0);
            assert_eq!(c.hybrid.full_cluster, 1, "[model] wins over [oracle]");
            assert!(c.hybrid.cache);
            assert_eq!(c.hybrid.cache_cap, 9);
        }

        #[test]
        fn disabled_guard_lowers_to_none() {
            let doc = format!("{}\n[guard]\nenabled = false\n", base());
            let s = Scenario::from_toml_str(&doc).expect("valid scenario");
            let c = compile(&s, &CompileOverrides::default());
            assert!(c.hybrid.guard.is_none(), "disabled [guard] lowers to None");
        }

        #[test]
        fn disabled_audit_compiles_to_none() {
            let doc = format!("{}\n[audit]\nenabled = false\n", base());
            let s = Scenario::from_toml_str(&doc).expect("valid scenario");
            let c = compile(&s, &CompileOverrides::default());
            assert!(c.audit_bounds.is_none(), "disabled [audit] lowers to None");
        }

        #[test]
        fn audit_bounds_lower_into_compiled() {
            let doc = format!("{}\n[audit]\nmax_ks = 0.2\n", base());
            let s = Scenario::from_toml_str(&doc).expect("valid scenario");
            let c = compile(&s, &CompileOverrides::default());
            let b = c.audit_bounds.expect("[audit] lowers to bounds");
            assert_eq!(b.max_ks, 0.2);
            assert_eq!(b.max_drop_rate_error, 0.01, "unset bounds keep defaults");
        }

        #[test]
        fn disabled_recovery_compiles_to_none() {
            let doc = format!("{}\n[recovery]\nenabled = false\n", base());
            let s = Scenario::from_toml_str(&doc).expect("valid scenario");
            let c = compile(&s, &CompileOverrides::default());
            assert!(c.recovery.is_none(), "disabled [recovery] lowers to None");
        }

        #[test]
        fn incast_needs_senders_besides_dst() {
            // One rack of one host: the only host is the destination.
            let doc = base()
                .replace("racks_per_cluster = 2", "racks_per_cluster = 1")
                .replace("hosts_per_rack = 2", "hosts_per_rack = 1")
                .replace(
                    "kind = \"permutation\"\nbytes = 1000\n",
                    "kind = \"incast\"\ndst = [0, 0, 0]\nbytes = 1000\n",
                );
            expect_err(&doc, "no senders remain");
        }
    }
}
