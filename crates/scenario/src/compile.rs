//! Lowering: [`Scenario`] → the engine types the `experiment` drivers eat.
//!
//! A [`Compiled`] scenario is the fully materialized run: `ClosParams`,
//! the complete flow list (every traffic group lowered, replicated, and
//! id-partitioned), the effective horizon/seed after CLI overrides, PDES
//! partitioning, and the lowered [`FaultPlan`]. Compilation is a pure
//! function of `(scenario, overrides)` — the determinism contract "same
//! (scenario file, seed) → same run" starts here.
//!
//! ## Flow-id layout
//!
//! Group `g`, repeat copy `r` owns the id block
//! `g·10⁹ + r·10⁶ + 1 ..`; the decoder bounds `repeat` at 999 and no
//! realistic window emits 10⁶ flows, so blocks never collide and the
//! [`elephant_net::FlowId`] direction bit stays clear. Group 0, copy 0
//! therefore starts at id 1 — byte-compatible with the flow lists the
//! hand-rolled bench builders used to produce.

use crate::schema::{ProfileSpec, RegimeWindow, Scenario, SizeSpec, TrafficGroup, TrafficKind};
use elephant_core::{
    run_ground_truth_observed, run_hybrid_observed, run_hybrid_supervised, run_pdes_full,
    run_pdes_full_supervised, run_pdes_hybrid, run_pdes_hybrid_supervised,
    run_sequential_supervised, ElephantError, PdesRun, RecoveryPolicy, RunMeta, SupervisedRun,
};
use elephant_des::{EpochMode, FaultPlan, PdesError, SimDuration, SimTime};
use elephant_net::{
    ClosParams, ClusterOracle, FlowId, FlowSpec, GuardConfig, HostAddr, NetConfig, NetSampler,
    Network, RttScope, TcpConfig,
};
use elephant_obs::DivergenceBounds;
use elephant_trace::{
    filter_touching_cluster, generate, LoadProfile, Locality, SizeDist, WorkloadConfig,
};

/// Id distance between traffic groups.
pub const GROUP_STRIDE: u64 = 1_000_000_000;
/// Id distance between repeat copies within a group.
pub const REPEAT_STRIDE: u64 = 1_000_000;

/// Caller-side knobs that override what the scenario file says, so one
/// committed file serves `--seed`/`--horizon-ms` sweeps and the benches'
/// quick/full modes.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileOverrides {
    /// Replaces `run.seed`.
    pub seed: Option<u64>,
    /// Replaces `run.horizon_ms`.
    pub horizon_ms: Option<f64>,
    /// Replaces every traffic group's `repeat` count.
    pub repeat: Option<u32>,
}

/// A scenario lowered to engine inputs.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Scenario name (for reports and summaries).
    pub name: String,
    /// Topology, with ECN thresholds applied when the run is DCTCP.
    pub params: ClosParams,
    /// The complete flow list, sorted by `(start, id)`.
    pub flows: Vec<FlowSpec>,
    /// Effective horizon.
    pub horizon: SimTime,
    /// Effective seed.
    pub seed: u64,
    /// DCTCP run (selects [`TcpConfig::dctcp`] on sequential drivers).
    pub dctcp: bool,
    /// PDES rack partitions.
    pub partitions: usize,
    /// Emulated machines.
    pub machines: usize,
    /// Marshalling envelope bytes.
    pub envelope_bytes: usize,
    /// Lowered fault plan (PDES only), if the scenario declares one.
    pub faults: Option<FaultPlan>,
    /// Supervised checkpoint/retry policy, if `[recovery]` is declared
    /// and enabled.
    pub recovery: Option<RecoveryPolicy>,
    /// Sampling period from `[outputs]`, if declared.
    pub sample_every: Option<SimDuration>,
    /// Divergence bounds for `elephant audit`, if `[audit]` is declared
    /// and enabled.
    pub audit_bounds: Option<DivergenceBounds>,
    /// Lowered hybrid-run settings (`[model]`/`[guard]`/`[oracle]`).
    pub hybrid: HybridSpec,
}

/// The hybrid driver's lowered settings: which cluster stays at packet
/// fidelity, where the model artifact comes from, and the guard/cache
/// configuration the oracle stack is assembled with.
///
/// Lowering is exact — every value round-trips the TOML (no clamping, no
/// default substitution), the contract the scenario proptests assert.
#[derive(Clone, Debug)]
pub struct HybridSpec {
    /// `[model] path`, if declared (the CLI's `--model` flag overrides).
    pub model_path: Option<String>,
    /// Scenario line of the `[model]` path (or section header), for
    /// `file:line` artifact-load diagnostics. 0 when no `[model]` exists.
    pub model_line: u32,
    /// True when the scenario declares a `[model]` section at all — the
    /// switch that routes `run-scenario` onto the hybrid driver.
    pub model_declared: bool,
    /// `[model] train_fallback`: capture + train a small default model
    /// when no artifact is available.
    pub train_fallback: bool,
    /// The cluster kept at packet fidelity: `[model] full_cluster` when
    /// set, else `[oracle] full_cluster`.
    pub full_cluster: u16,
    /// `[oracle] cache`: memoize verdicts for quantized feature keys.
    pub cache: bool,
    /// `[oracle] cache_cap` in verdicts.
    pub cache_cap: usize,
    /// Lowered `[guard]` settings; `None` when `[guard] enabled = false`.
    /// `expected_drop_rate` stays `None` here — the CLI fills it from the
    /// loaded model's training metadata.
    pub guard: Option<GuardConfig>,
}

/// Converts scenario-file milliseconds to simulation time.
pub fn ms_to_time(ms: f64) -> SimTime {
    SimTime::from_secs_f64(ms / 1e3)
}

/// Lowers a validated scenario, applying `overrides`.
pub fn compile(s: &Scenario, overrides: &CompileOverrides) -> Compiled {
    let seed = overrides.seed.unwrap_or(s.run.seed);
    let horizon_ms = overrides.horizon_ms.unwrap_or(s.run.horizon_ms);
    let horizon = ms_to_time(horizon_ms);
    let params = s.topology.params(s.run.dctcp);

    let mut flows = Vec::new();
    for (g, group) in s.traffic.iter().enumerate() {
        let repeat = overrides.repeat.unwrap_or(group.repeat);
        lower_group(s, group, g, repeat, seed, horizon_ms, &params, &mut flows);
    }
    flows.sort_by_key(|f| (f.start, f.id.0));

    let faults = s.faults.as_ref().map(|f| FaultPlan {
        seed: f.seed,
        drop_prob: f.drop_prob,
        dup_prob: f.dup_prob,
        corrupt_prob: f.corrupt_prob,
        slow_partition: f
            .slow_partition
            .map(|(p, ms)| (p, std::time::Duration::from_secs_f64(ms / 1e3))),
        stall_partition: f.stall_partition,
    });

    let recovery = s
        .recovery
        .as_ref()
        .filter(|r| r.enabled)
        .map(|r| RecoveryPolicy {
            checkpoint_every: SimDuration::from_secs_f64(r.checkpoint_every_ms / 1e3),
            max_retries: r.max_retries,
        });

    // Guard defaults to *on* for hybrid runs (matching the `hybrid`
    // subcommand); `[guard] enabled = false` is the only way to shed it.
    let guard_spec = s.guard.clone().unwrap_or_default();
    let guard = guard_spec.enabled.then(|| GuardConfig {
        latency_ceiling: SimDuration::from_secs_f64(guard_spec.ceiling_ms / 1e3),
        expected_drop_rate: None,
        drop_rate_tolerance: guard_spec.tolerance,
        trip_limit: guard_spec.trip_limit,
        ..Default::default()
    });
    let hybrid = HybridSpec {
        model_path: s.model.as_ref().and_then(|m| m.path.clone()),
        model_line: s.model.as_ref().map_or(0, |m| m.path_line),
        model_declared: s.model.is_some(),
        train_fallback: s.model.as_ref().is_some_and(|m| m.train_fallback),
        full_cluster: s
            .model
            .as_ref()
            .and_then(|m| m.full_cluster)
            .unwrap_or(s.oracle.full_cluster),
        cache: s.oracle.cache,
        cache_cap: s.oracle.cache_cap,
        guard,
    };

    Compiled {
        name: s.name.clone(),
        params,
        flows,
        horizon,
        seed,
        dctcp: s.run.dctcp,
        partitions: s.topology.pdes.partitions,
        machines: s.topology.pdes.machines,
        envelope_bytes: s.topology.pdes.envelope_bytes,
        faults,
        recovery,
        sample_every: s.outputs.sample_every_us.map(SimDuration::from_micros),
        audit_bounds: s
            .audit
            .as_ref()
            .filter(|a| a.enabled)
            .map(|a| DivergenceBounds {
                max_drop_rate_error: a.max_drop_rate_error,
                max_ks: a.max_ks,
                max_w1_ratio: a.max_w1_ratio,
            }),
        hybrid,
    }
}

/// Per-group seed: group 0 reads the raw scenario seed (bench parity with
/// the old hand-rolled builders), later groups decorrelate by golden-ratio
/// salting.
fn group_seed(seed: u64, g: usize) -> u64 {
    seed ^ (g as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Lowers one traffic group into `out`: builds the window's flow list
/// (1-based local ids, absolute starts) then replicates it `repeat` times
/// at `period_ms` spacing with the group/repeat id offsets applied.
#[allow(clippy::too_many_arguments)] // internal lowering plumbing
fn lower_group(
    s: &Scenario,
    group: &TrafficGroup,
    g: usize,
    repeat: u32,
    seed: u64,
    horizon_ms: f64,
    params: &ClosParams,
    out: &mut Vec<FlowSpec>,
) {
    if group.start_ms >= horizon_ms {
        return; // window opens after the run ends
    }
    let start = ms_to_time(group.start_ms);
    let window = match group.kind {
        // Unspecified Poisson windows stretch to the horizon (one-shot)
        // or fill the repeat period (bursty).
        TrafficKind::Poisson { window_ms, .. } => match window_ms {
            Some(w) => w,
            None if repeat > 1 => group.period_ms,
            None => horizon_ms - group.start_ms,
        },
        _ => 0.0,
    };
    let base = window_flows(s, group, g, seed, start, window, params);
    debug_assert!(
        base.len() < REPEAT_STRIDE as usize,
        "window of group {g} exceeds the repeat id stride"
    );
    let period_ns = ms_to_time(group.period_ms).as_nanos();
    for r in 0..repeat as u64 {
        let id_base = g as u64 * GROUP_STRIDE + r * REPEAT_STRIDE;
        let shift = r * period_ns;
        for f in &base {
            let mut f = *f;
            f.id = FlowId(f.id.0 + id_base);
            f.start = SimTime::from_nanos(f.start.as_nanos() + shift);
            out.push(f);
        }
    }
}

/// One window's flows: local 1-based ids, starts absolute (group start
/// included, repeat shift not).
fn window_flows(
    s: &Scenario,
    group: &TrafficGroup,
    g: usize,
    seed: u64,
    start: SimTime,
    window_ms: f64,
    params: &ClosParams,
) -> Vec<FlowSpec> {
    let topo = &s.topology;
    match &group.kind {
        TrafficKind::Poisson {
            load,
            sizes,
            locality,
            profile,
            ..
        } => {
            if window_ms <= 0.0 {
                return Vec::new();
            }
            let wl = WorkloadConfig {
                load: *load,
                sizes: lower_sizes(sizes),
                locality: Locality {
                    rack_local: locality.rack_local,
                    intra_cluster: locality.intra_cluster,
                    inter_cluster: locality.inter_cluster,
                },
                horizon: ms_to_time(window_ms),
                seed: group_seed(seed, g),
                profile: lower_profile(profile, &s.regimes, group.start_ms),
            };
            let mut flows = generate(params, &wl);
            for f in &mut flows {
                f.start = SimTime::from_nanos(f.start.as_nanos() + start.as_nanos());
            }
            flows
        }
        TrafficKind::Incast {
            senders,
            dst,
            bytes,
        } => {
            let dst = HostAddr::new(dst.0, dst.1, dst.2);
            let senders: Vec<HostAddr> = senders
                .expand(topo)
                .into_iter()
                .filter(|&a| a != dst)
                .collect();
            elephant_trace::incast(&senders, dst, *bytes, start, 1)
        }
        TrafficKind::AllReduce {
            hosts,
            bytes_per_step,
            rounds,
            step_gap_us,
        } => {
            let ring = hosts.expand(topo);
            let n = ring.len();
            let steps_per_round = 2 * (n - 1) as u64;
            collective_steps(
                &ring,
                *rounds as u64 * steps_per_round,
                start,
                *step_gap_us,
                |_, i| (i + 1) % n, // ring successor every step
                *bytes_per_step,
            )
        }
        TrafficKind::AllToAll {
            hosts,
            bytes,
            step_gap_us,
        } => {
            let ring = hosts.expand(topo);
            let n = ring.len();
            collective_steps(
                &ring,
                (n - 1) as u64,
                start,
                *step_gap_us,
                |k, i| (i + k as usize + 1) % n, // shift grows per step
                *bytes,
            )
        }
        TrafficKind::Permutation { bytes } => {
            let mut flows =
                elephant_trace::permutation(params, *bytes, SimTime::ZERO, group_seed(seed, g));
            for f in &mut flows {
                f.start = SimTime::from_nanos(f.start.as_nanos() + start.as_nanos());
            }
            flows
        }
    }
}

/// Synchronized collective phases: at step `k` (spaced `step_gap_us`
/// apart), host `i` sends `bytes` to `ring[partner(k, i)]`.
fn collective_steps(
    ring: &[HostAddr],
    steps: u64,
    start: SimTime,
    step_gap_us: f64,
    partner: impl Fn(u64, usize) -> usize,
    bytes: u64,
) -> Vec<FlowSpec> {
    let n = ring.len();
    let gap_ns = SimTime::from_secs_f64(step_gap_us / 1e6).as_nanos();
    let mut flows = Vec::with_capacity(steps as usize * n);
    for k in 0..steps {
        let at = SimTime::from_nanos(start.as_nanos() + k * gap_ns);
        for (i, &src) in ring.iter().enumerate() {
            let dst = ring[partner(k, i)];
            debug_assert_ne!(src, dst, "collective partner function self-paired");
            flows.push(FlowSpec {
                id: FlowId(k * n as u64 + i as u64 + 1),
                src,
                dst,
                bytes,
                start: at,
            });
        }
    }
    flows
}

fn lower_sizes(s: &SizeSpec) -> SizeDist {
    match s {
        SizeSpec::WebSearch => SizeDist::web_search(),
        SizeSpec::DataMining => SizeDist::data_mining(),
        SizeSpec::Fixed(b) => SizeDist::fixed(*b),
    }
}

/// Lowers a group's profile. Regime schedules are scenario-absolute;
/// `generate` clocks from the group's window start, so schedule steps are
/// re-based by `-start_ms` and any window already covering the group start
/// becomes a step at time zero.
fn lower_profile(p: &ProfileSpec, regimes: &[RegimeWindow], start_ms: f64) -> LoadProfile {
    match p {
        ProfileSpec::Constant => LoadProfile::Constant,
        ProfileSpec::Sinusoid {
            period_ms,
            min,
            max,
        } => LoadProfile::Sinusoid {
            period: ms_to_time(*period_ms),
            min: *min,
            max: *max,
        },
        ProfileSpec::Schedule => {
            // Each window contributes (start, multiplier) and (stop, 1.0);
            // the decoder guarantees windows are sorted and disjoint.
            let mut events: Vec<(f64, f64)> = Vec::with_capacity(regimes.len() * 2);
            for w in regimes {
                events.push((w.start_ms, w.multiplier));
                events.push((w.stop_ms, 1.0));
            }
            events.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut level0 = 1.0;
            let mut steps: Vec<(SimTime, f64)> = Vec::new();
            for (at_ms, m) in events {
                let rel = at_ms - start_ms;
                if rel <= 0.0 {
                    level0 = m;
                } else {
                    steps.push((ms_to_time(rel), m));
                }
            }
            if level0 != 1.0 {
                steps.insert(0, (SimTime::ZERO, level0));
            }
            LoadProfile::Steps(steps)
        }
    }
}

impl Compiled {
    /// The sequential drivers' network config for this run.
    pub fn net_config(&self) -> NetConfig {
        NetConfig {
            tcp: if self.dctcp {
                TcpConfig::dctcp()
            } else {
                TcpConfig::default()
            },
            rtt_scope: RttScope::All,
            ..Default::default()
        }
    }

    /// Runs the scenario on the sequential full-fidelity driver.
    pub fn run_sequential(&self, sampler: Option<&mut NetSampler>) -> (Network, RunMeta) {
        run_ground_truth_observed(
            self.params,
            self.net_config(),
            None,
            &self.flows,
            self.horizon,
            None,
            sampler,
        )
    }

    /// Runs the scenario under conservative PDES with the partitioning
    /// declared in `[topology.pdes]` (or the caller's override) and the
    /// scenario's fault plan.
    pub fn run_pdes(
        &self,
        partitions: Option<usize>,
        mode: EpochMode,
        sampler: Option<&mut NetSampler>,
    ) -> Result<PdesRun, PdesError> {
        run_pdes_full(
            self.params,
            &self.flows,
            self.horizon,
            partitions.unwrap_or(self.partitions),
            self.machines,
            self.envelope_bytes,
            mode,
            self.faults.clone(),
            sampler,
        )
    }

    /// Runs the scenario sequentially under checkpoint/restore supervision.
    pub fn run_sequential_supervised(
        &self,
        policy: &RecoveryPolicy,
    ) -> Result<SupervisedRun, ElephantError> {
        run_sequential_supervised(
            self.params,
            self.net_config(),
            &self.flows,
            self.horizon,
            policy,
        )
    }

    /// Runs the scenario under supervised PDES: checkpoints at `policy`
    /// intervals, restores on engine faults, and walks the degradation
    /// ladder (adaptive → fixed epochs → sequential) when retries are
    /// exhausted.
    pub fn run_pdes_supervised(
        &self,
        partitions: Option<usize>,
        mode: EpochMode,
        policy: &RecoveryPolicy,
    ) -> Result<SupervisedRun, ElephantError> {
        run_pdes_full_supervised(
            self.params,
            &self.flows,
            self.horizon,
            partitions.unwrap_or(self.partitions),
            self.machines,
            self.envelope_bytes,
            mode,
            self.faults.clone(),
            policy,
        )
    }

    /// The hybrid driver's flow list: the compiled flows elided to
    /// traffic touching the full-fidelity cluster (the paper's §6.2
    /// elision — identical to what the `hybrid` subcommand schedules).
    pub fn hybrid_flows(&self) -> Vec<FlowSpec> {
        filter_touching_cluster(&self.flows, self.hybrid.full_cluster)
    }

    /// Runs the scenario on the sequential hybrid driver: the
    /// `[model]`-selected full cluster at packet fidelity, every other
    /// cluster served by `oracle`.
    pub fn run_hybrid(
        &self,
        oracle: Box<dyn ClusterOracle + Send>,
        sampler: Option<&mut NetSampler>,
    ) -> (Network, RunMeta) {
        run_hybrid_observed(
            self.params,
            self.hybrid.full_cluster,
            oracle,
            self.net_config(),
            &self.hybrid_flows(),
            self.horizon,
            None,
            sampler,
        )
    }

    /// Runs the scenario on the cluster-partitioned PDES hybrid driver.
    /// `oracle_factory` builds partition `p`'s oracle instance.
    pub fn run_pdes_hybrid(
        &self,
        oracle_factory: impl FnMut(usize) -> Box<dyn ClusterOracle + Send>,
        mode: EpochMode,
        sampler: Option<&mut NetSampler>,
    ) -> Result<PdesRun, PdesError> {
        run_pdes_hybrid(
            self.params,
            self.hybrid.full_cluster,
            oracle_factory,
            &self.hybrid_flows(),
            self.horizon,
            self.machines,
            self.envelope_bytes,
            mode,
            self.faults.clone(),
            sampler,
        )
    }

    /// Runs the scenario on the sequential hybrid driver under
    /// checkpoint/restore supervision.
    pub fn run_hybrid_supervised(
        &self,
        oracle: Box<dyn ClusterOracle + Send>,
        policy: &RecoveryPolicy,
    ) -> Result<SupervisedRun, ElephantError> {
        run_hybrid_supervised(
            self.params,
            self.hybrid.full_cluster,
            oracle,
            self.net_config(),
            &self.hybrid_flows(),
            self.horizon,
            policy,
        )
    }

    /// Runs the scenario on the PDES hybrid driver under supervision:
    /// checkpoints, restores, and degrades adaptive → fixed → sequential
    /// hybrid. `sequential_oracle` builds the oracle for the terminal
    /// sequential rung (its seed derivation differs from the per-partition
    /// PDES oracles).
    pub fn run_pdes_hybrid_supervised(
        &self,
        oracle_factory: impl FnMut(usize) -> Box<dyn ClusterOracle + Send>,
        sequential_oracle: impl FnOnce() -> Box<dyn ClusterOracle + Send>,
        mode: EpochMode,
        policy: &RecoveryPolicy,
    ) -> Result<SupervisedRun, ElephantError> {
        run_pdes_hybrid_supervised(
            self.params,
            self.hybrid.full_cluster,
            oracle_factory,
            sequential_oracle,
            &self.hybrid_flows(),
            self.horizon,
            self.machines,
            self.envelope_bytes,
            mode,
            self.faults.clone(),
            policy,
        )
    }
}

/// The run fingerprint: FNV-1a 64 over flow completions, delivered bytes,
/// drops, and every flow-completion time to the nanosecond, order-
/// normalized. Two invocations of the same (scenario, seed) on the same
/// driver must produce equal fingerprints — the determinism contract the
/// CLI prints and tests assert.
pub fn run_fingerprint<'a>(nets: impl IntoIterator<Item = &'a Network>) -> u64 {
    let mut completed = 0u64;
    let mut delivered = 0u64;
    let mut drops = 0u64;
    let mut fct: Vec<(u64, u64, u64)> = Vec::new();
    for net in nets {
        completed += net.stats.flows_completed;
        delivered += net.stats.delivered_bytes;
        drops += net.stats.drops.total();
        fct.extend(
            net.stats
                .fct
                .iter()
                .map(|r| (r.flow.0, r.started.as_nanos(), r.completed.as_nanos())),
        );
    }
    fct.sort_unstable();
    let mut h = Fnv::new();
    h.write(completed);
    h.write(delivered);
    h.write(drops);
    h.write(fct.len() as u64);
    for (flow, started, done) in fct {
        h.write(flow);
        h.write(started);
        h.write(done);
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
