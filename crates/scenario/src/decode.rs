//! Decoding + validation: parsed TOML → [`Scenario`].
//!
//! Every rejection carries the 1-based line of the offending value (or of
//! the table that should have held a missing key), so callers can report
//! `file:line` diagnostics. Validation is structural *and* semantic:
//! unknown keys, wrong types, out-of-range link physics, dangling host
//! selectors, overlapping regime windows, and schema-version mismatches
//! are all rejected here, before anything touches the engines.

use crate::schema::{
    AuditSpec, FaultSpec, GuardSpec, HostSelector, LinkSpecToml, LocalitySpec, ModelSpec,
    OracleSpec, OutputSpec, PdesSpec, ProfileSpec, RecoverySpec, RegimeWindow, RunSpec, Scenario,
    SizeSpec, TopologySpec, TrafficGroup, TrafficKind, SCHEMA_VERSION,
};
use crate::toml::{self, Spanned, Table, TomlValue};
use crate::ScenarioError;
use elephant_net::ClosParams;

fn err(line: u32, msg: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        detail: msg.into(),
    }
}

fn type_err(s: &Spanned, what: &str, wanted: &str) -> ScenarioError {
    err(
        s.line,
        format!("{what}: expected {wanted}, found {}", s.value.type_name()),
    )
}

fn table_of<'a>(s: &'a Spanned, what: &str) -> Result<&'a Table, ScenarioError> {
    match &s.value {
        TomlValue::Table(t) => Ok(t),
        _ => Err(type_err(s, what, "a table")),
    }
}

fn array_of<'a>(s: &'a Spanned, what: &str) -> Result<&'a [Spanned], ScenarioError> {
    match &s.value {
        TomlValue::Array(items) => Ok(items),
        _ => Err(type_err(s, what, "an array")),
    }
}

fn str_of<'a>(s: &'a Spanned, what: &str) -> Result<&'a str, ScenarioError> {
    match &s.value {
        TomlValue::Str(v) => Ok(v),
        _ => Err(type_err(s, what, "a string")),
    }
}

fn bool_of(s: &Spanned, what: &str) -> Result<bool, ScenarioError> {
    match &s.value {
        TomlValue::Bool(v) => Ok(*v),
        _ => Err(type_err(s, what, "a boolean")),
    }
}

fn int_of(s: &Spanned, what: &str) -> Result<i64, ScenarioError> {
    match &s.value {
        TomlValue::Int(v) => Ok(*v),
        _ => Err(type_err(s, what, "an integer")),
    }
}

fn float_of(s: &Spanned, what: &str) -> Result<f64, ScenarioError> {
    let v = match &s.value {
        TomlValue::Float(v) => *v,
        TomlValue::Int(v) => *v as f64,
        _ => return Err(type_err(s, what, "a number")),
    };
    if v.is_finite() {
        Ok(v)
    } else {
        Err(err(s.line, format!("{what}: must be finite, got {v}")))
    }
}

fn u64_of(s: &Spanned, what: &str) -> Result<u64, ScenarioError> {
    let v = int_of(s, what)?;
    u64::try_from(v).map_err(|_| err(s.line, format!("{what}: must be non-negative, got {v}")))
}

fn u32_of(s: &Spanned, what: &str) -> Result<u32, ScenarioError> {
    let v = int_of(s, what)?;
    u32::try_from(v).map_err(|_| err(s.line, format!("{what}: out of range, got {v}")))
}

fn u16_of(s: &Spanned, what: &str) -> Result<u16, ScenarioError> {
    let v = int_of(s, what)?;
    u16::try_from(v).map_err(|_| err(s.line, format!("{what}: out of range, got {v}")))
}

fn usize_of(s: &Spanned, what: &str) -> Result<usize, ScenarioError> {
    let v = int_of(s, what)?;
    usize::try_from(v).map_err(|_| err(s.line, format!("{what}: must be non-negative, got {v}")))
}

fn req<'a>(t: &'a Table, key: &str, what: &str) -> Result<&'a Spanned, ScenarioError> {
    t.get(key)
        .ok_or_else(|| err(t.line, format!("{what}: missing required key `{key}`")))
}

/// Rejects keys outside `allowed` (typo defense: a silently ignored knob
/// is a misconfigured experiment).
fn reject_unknown(t: &Table, what: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    for (k, v) in &t.entries {
        if !allowed.contains(&k.as_str()) {
            return Err(err(
                v.line,
                format!(
                    "{what}: unknown key `{k}` (expected one of: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn positive(v: f64, line: u32, what: &str) -> Result<f64, ScenarioError> {
    if v > 0.0 {
        Ok(v)
    } else {
        Err(err(line, format!("{what}: must be > 0, got {v}")))
    }
}

fn non_negative(v: f64, line: u32, what: &str) -> Result<f64, ScenarioError> {
    if v >= 0.0 {
        Ok(v)
    } else {
        Err(err(line, format!("{what}: must be >= 0, got {v}")))
    }
}

fn probability(v: f64, line: u32, what: &str) -> Result<f64, ScenarioError> {
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(err(line, format!("{what}: must be in [0, 1], got {v}")))
    }
}

/// Decodes and validates a scenario document.
pub fn from_toml_str(src: &str) -> Result<Scenario, ScenarioError> {
    let root = toml::parse(src).map_err(|e| err(e.line, e.msg))?;
    reject_unknown(
        &root,
        "scenario file",
        &[
            "schema", "scenario", "topology", "run", "traffic", "regime", "faults", "guard",
            "recovery", "audit", "model", "oracle", "outputs",
        ],
    )?;

    let schema = req(&root, "schema", "scenario file")?;
    let version = int_of(schema, "schema")?;
    if version != SCHEMA_VERSION {
        return Err(err(
            schema.line,
            format!(
                "unsupported scenario schema version {version} (this build reads {SCHEMA_VERSION})"
            ),
        ));
    }

    let (name, description) = decode_scenario_header(&root)?;
    let topology = decode_topology(table_of(
        req(&root, "topology", "scenario file")?,
        "topology",
    )?)?;
    let run = decode_run(table_of(req(&root, "run", "scenario file")?, "run")?)?;

    let traffic_items = array_of(req(&root, "traffic", "scenario file")?, "traffic")?;
    if traffic_items.is_empty() {
        return Err(err(root.line, "scenario declares no [[traffic]] groups"));
    }
    let mut traffic = Vec::with_capacity(traffic_items.len());
    for (idx, item) in traffic_items.iter().enumerate() {
        let what = format!("[[traffic]] group {idx}");
        traffic.push(decode_traffic(table_of(item, &what)?, idx, &topology)?);
    }

    let regimes = match root.get("regime") {
        None => Vec::new(),
        Some(s) => decode_regimes(array_of(s, "regime")?)?,
    };
    for g in &traffic {
        if let TrafficKind::Poisson {
            profile: ProfileSpec::Schedule,
            ..
        } = g.kind
        {
            if regimes.is_empty() {
                return Err(err(
                    root.line,
                    format!(
                        "traffic group `{}` uses profile = \"schedule\" but the scenario has no \
                         [[regime]] windows",
                        g.name
                    ),
                ));
            }
        }
    }

    let faults = match root.get("faults") {
        None => None,
        Some(s) => Some(decode_faults(table_of(s, "faults")?, &topology.pdes)?),
    };
    let guard = match root.get("guard") {
        None => None,
        Some(s) => Some(decode_guard(table_of(s, "guard")?)?),
    };
    let recovery = match root.get("recovery") {
        None => None,
        Some(s) => Some(decode_recovery(table_of(s, "recovery")?)?),
    };
    let audit = match root.get("audit") {
        None => None,
        Some(s) => Some(decode_audit(table_of(s, "audit")?)?),
    };
    let model = match root.get("model") {
        None => None,
        Some(s) => Some(decode_model(table_of(s, "model")?, &topology)?),
    };
    let oracle = match root.get("oracle") {
        None => OracleSpec::default(),
        Some(s) => decode_oracle(table_of(s, "oracle")?, &topology)?,
    };
    let outputs = match root.get("outputs") {
        None => OutputSpec::default(),
        Some(s) => decode_outputs(table_of(s, "outputs")?)?,
    };

    Ok(Scenario {
        name,
        description,
        topology,
        run,
        traffic,
        regimes,
        faults,
        guard,
        recovery,
        audit,
        model,
        oracle,
        outputs,
    })
}

fn decode_scenario_header(root: &Table) -> Result<(String, String), ScenarioError> {
    let t = table_of(req(root, "scenario", "scenario file")?, "scenario")?;
    reject_unknown(t, "[scenario]", &["name", "description"])?;
    let name_v = req(t, "name", "[scenario]")?;
    let name = str_of(name_v, "scenario.name")?.to_string();
    if name.is_empty() {
        return Err(err(name_v.line, "scenario.name: must be non-empty"));
    }
    let description = match t.get("description") {
        None => String::new(),
        Some(s) => str_of(s, "scenario.description")?.to_string(),
    };
    Ok((name, description))
}

fn decode_link(t: &Table, what: &str) -> Result<LinkSpecToml, ScenarioError> {
    reject_unknown(
        t,
        what,
        &[
            "rate_gbps",
            "prop_delay_us",
            "queue_cap_bytes",
            "ecn_threshold_bytes",
        ],
    )?;
    let mut link = LinkSpecToml::ten_gbe();
    if let Some(s) = t.get("rate_gbps") {
        let w = format!("{what}.rate_gbps");
        link.rate_gbps = positive(float_of(s, &w)?, s.line, &w)?;
    }
    if let Some(s) = t.get("prop_delay_us") {
        let w = format!("{what}.prop_delay_us");
        link.prop_delay_us = non_negative(float_of(s, &w)?, s.line, &w)?;
    }
    if let Some(s) = t.get("queue_cap_bytes") {
        let w = format!("{what}.queue_cap_bytes");
        let v = u64_of(s, &w)?;
        if v == 0 {
            return Err(err(s.line, format!("{w}: must be > 0")));
        }
        link.queue_cap_bytes = v;
    }
    if let Some(s) = t.get("ecn_threshold_bytes") {
        let w = format!("{what}.ecn_threshold_bytes");
        let v = u64_of(s, &w)?;
        if v == 0 {
            return Err(err(s.line, format!("{w}: must be > 0")));
        }
        link.ecn_threshold_bytes = Some(v);
    }
    Ok(link)
}

fn decode_topology(t: &Table) -> Result<TopologySpec, ScenarioError> {
    reject_unknown(
        t,
        "[topology]",
        &[
            "clusters",
            "racks_per_cluster",
            "hosts_per_rack",
            "aggs_per_cluster",
            "cores_per_group",
            "ecmp_seed",
            "host_link",
            "fabric_link",
            "core_link",
            "pdes",
        ],
    )?;
    let count = |key: &str| -> Result<Option<u16>, ScenarioError> {
        match t.get(key) {
            None => Ok(None),
            Some(s) => {
                let w = format!("topology.{key}");
                let v = u16_of(s, &w)?;
                if v == 0 {
                    return Err(err(s.line, format!("{w}: must be >= 1")));
                }
                Ok(Some(v))
            }
        }
    };
    let clusters = count("clusters")?
        .ok_or_else(|| err(t.line, "[topology]: missing required key `clusters`"))?;
    // Unspecified tier widths fall back to the paper's cluster shape.
    let base = ClosParams::paper_cluster(clusters);
    let racks_per_cluster = count("racks_per_cluster")?.unwrap_or(base.racks_per_cluster);
    let hosts_per_rack = count("hosts_per_rack")?.unwrap_or(base.hosts_per_rack);
    let aggs_per_cluster = count("aggs_per_cluster")?.unwrap_or(base.aggs_per_cluster);
    let cores_per_group = count("cores_per_group")?.unwrap_or(base.cores_per_group);
    let ecmp_seed = match t.get("ecmp_seed") {
        None => base.ecmp_seed,
        Some(s) => u64_of(s, "topology.ecmp_seed")?,
    };
    let link = |key: &str| -> Result<LinkSpecToml, ScenarioError> {
        match t.get(key) {
            None => Ok(LinkSpecToml::ten_gbe()),
            Some(s) => {
                let w = format!("[topology.{key}]");
                decode_link(table_of(s, &w)?, &w)
            }
        }
    };
    let (pdes, pdes_explicit) = match t.get("pdes") {
        None => (PdesSpec::default(), false),
        Some(s) => (decode_pdes(table_of(s, "[topology.pdes]")?)?, true),
    };
    let mut spec = TopologySpec {
        clusters,
        racks_per_cluster,
        hosts_per_rack,
        aggs_per_cluster,
        cores_per_group,
        host_link: link("host_link")?,
        fabric_link: link("fabric_link")?,
        core_link: link("core_link")?,
        ecmp_seed,
        pdes,
    };
    let racks = spec.clusters as usize * spec.racks_per_cluster as usize;
    if !pdes_explicit {
        // The implicit default should fit any topology; only an explicit
        // [topology.pdes] request can be over-partitioned.
        spec.pdes.partitions = spec.pdes.partitions.min(racks.max(1));
        spec.pdes.machines = spec.pdes.machines.min(spec.pdes.partitions);
    }
    if spec.pdes.partitions > racks {
        return Err(err(
            t.line,
            format!(
                "topology.pdes.partitions: {} partitions but the topology only has {racks} racks",
                spec.pdes.partitions
            ),
        ));
    }
    Ok(spec)
}

fn decode_pdes(t: &Table) -> Result<PdesSpec, ScenarioError> {
    reject_unknown(
        t,
        "[topology.pdes]",
        &["partitions", "machines", "envelope_bytes"],
    )?;
    let mut spec = PdesSpec::default();
    let field = |key: &str, min: usize| -> Result<Option<usize>, ScenarioError> {
        match t.get(key) {
            None => Ok(None),
            Some(s) => {
                let w = format!("topology.pdes.{key}");
                let v = usize_of(s, &w)?;
                if v < min {
                    return Err(err(s.line, format!("{w}: must be >= {min}, got {v}")));
                }
                Ok(Some(v))
            }
        }
    };
    if let Some(v) = field("partitions", 1)? {
        spec.partitions = v;
    }
    if let Some(v) = field("machines", 1)? {
        spec.machines = v;
    }
    if let Some(v) = field("envelope_bytes", 0)? {
        spec.envelope_bytes = v;
    }
    if spec.machines > spec.partitions {
        return Err(err(
            t.line,
            format!(
                "topology.pdes: {} machines cannot host {} partitions",
                spec.machines, spec.partitions
            ),
        ));
    }
    Ok(spec)
}

fn decode_run(t: &Table) -> Result<RunSpec, ScenarioError> {
    reject_unknown(t, "[run]", &["horizon_ms", "seed", "dctcp"])?;
    let h = req(t, "horizon_ms", "[run]")?;
    let horizon_ms = positive(float_of(h, "run.horizon_ms")?, h.line, "run.horizon_ms")?;
    let seed = match t.get("seed") {
        None => 0,
        Some(s) => u64_of(s, "run.seed")?,
    };
    let dctcp = match t.get("dctcp") {
        None => false,
        Some(s) => bool_of(s, "run.dctcp")?,
    };
    Ok(RunSpec {
        horizon_ms,
        seed,
        dctcp,
    })
}

fn decode_host_triple(s: &Spanned, what: &str) -> Result<(u16, u16, u16), ScenarioError> {
    let items = array_of(s, what)?;
    if items.len() != 3 {
        return Err(err(
            s.line,
            format!(
                "{what}: expected [cluster, rack, host], got {} items",
                items.len()
            ),
        ));
    }
    let part = |i: usize, name: &str| u16_of(&items[i], &format!("{what}.{name}"));
    Ok((part(0, "cluster")?, part(1, "rack")?, part(2, "host")?))
}

fn decode_selector(s: &Spanned, what: &str) -> Result<HostSelector, ScenarioError> {
    match &s.value {
        TomlValue::Str(v) if v == "all" => Ok(HostSelector::All),
        TomlValue::Str(v) => Err(err(
            s.line,
            format!("{what}: unknown selector `{v}` (expected \"all\", a table, or a list)"),
        )),
        TomlValue::Table(t) => {
            reject_unknown(t, what, &["cluster", "rack"])?;
            let c = u16_of(req(t, "cluster", what)?, &format!("{what}.cluster"))?;
            match t.get("rack") {
                None => Ok(HostSelector::Cluster(c)),
                Some(r) => Ok(HostSelector::Rack(c, u16_of(r, &format!("{what}.rack"))?)),
            }
        }
        TomlValue::Array(items) => {
            if items.is_empty() {
                return Err(err(s.line, format!("{what}: host list is empty")));
            }
            let mut list = Vec::with_capacity(items.len());
            for item in items {
                list.push(decode_host_triple(item, what)?);
            }
            Ok(HostSelector::List(list))
        }
        _ => Err(type_err(
            s,
            what,
            "\"all\", a {cluster, rack} table, or a host list",
        )),
    }
}

/// Checks a selector resolves to in-range hosts, pointing at `line` on
/// failure.
fn check_selector(
    sel: &HostSelector,
    topo: &TopologySpec,
    line: u32,
    what: &str,
) -> Result<(), ScenarioError> {
    if let Some((c, r, h)) = sel.dangling(topo) {
        return Err(err(
            line,
            format!(
                "{what}: host [{c}, {r}, {h}] is outside the topology \
                 ({} clusters x {} racks x {} hosts)",
                topo.clusters, topo.racks_per_cluster, topo.hosts_per_rack
            ),
        ));
    }
    Ok(())
}

fn decode_sizes(s: &Spanned, what: &str) -> Result<SizeSpec, ScenarioError> {
    match &s.value {
        TomlValue::Str(v) if v == "web-search" => Ok(SizeSpec::WebSearch),
        TomlValue::Str(v) if v == "data-mining" => Ok(SizeSpec::DataMining),
        TomlValue::Str(v) => Err(err(
            s.line,
            format!(
                "{what}: unknown size distribution `{v}` \
                 (expected \"web-search\", \"data-mining\", or {{ fixed = BYTES }})"
            ),
        )),
        TomlValue::Table(t) => {
            reject_unknown(t, what, &["fixed"])?;
            let f = req(t, "fixed", what)?;
            let bytes = u64_of(f, &format!("{what}.fixed"))?;
            if bytes == 0 {
                return Err(err(f.line, format!("{what}.fixed: must be > 0")));
            }
            Ok(SizeSpec::Fixed(bytes))
        }
        _ => Err(type_err(
            s,
            what,
            "a distribution name or { fixed = BYTES }",
        )),
    }
}

fn decode_locality(s: &Spanned, what: &str) -> Result<LocalitySpec, ScenarioError> {
    match &s.value {
        TomlValue::Str(v) if v == "cluster-heavy" => Ok(LocalitySpec::cluster_heavy()),
        TomlValue::Str(v) if v == "leaf-spine" => Ok(LocalitySpec::leaf_spine()),
        TomlValue::Str(v) => Err(err(
            s.line,
            format!(
                "{what}: unknown locality mix `{v}` (expected \"cluster-heavy\" or \"leaf-spine\")"
            ),
        )),
        TomlValue::Table(t) => {
            reject_unknown(t, what, &["rack_local", "intra_cluster", "inter_cluster"])?;
            let weight = |key: &str| -> Result<f64, ScenarioError> {
                let w = format!("{what}.{key}");
                let s = req(t, key, what)?;
                non_negative(float_of(s, &w)?, s.line, &w)
            };
            let mix = LocalitySpec {
                rack_local: weight("rack_local")?,
                intra_cluster: weight("intra_cluster")?,
                inter_cluster: weight("inter_cluster")?,
            };
            if mix.rack_local + mix.intra_cluster + mix.inter_cluster <= 0.0 {
                return Err(err(s.line, format!("{what}: weights sum to zero")));
            }
            Ok(mix)
        }
        _ => Err(type_err(s, what, "a mix name or a weight table")),
    }
}

fn decode_profile(s: &Spanned, what: &str) -> Result<ProfileSpec, ScenarioError> {
    match &s.value {
        TomlValue::Str(v) if v == "constant" => Ok(ProfileSpec::Constant),
        TomlValue::Str(v) if v == "schedule" => Ok(ProfileSpec::Schedule),
        TomlValue::Str(v) => Err(err(
            s.line,
            format!(
                "{what}: unknown profile `{v}` \
                 (expected \"constant\", \"schedule\", or {{ sinusoid = ... }})"
            ),
        )),
        TomlValue::Table(t) => {
            reject_unknown(t, what, &["sinusoid"])?;
            let sin = table_of(req(t, "sinusoid", what)?, &format!("{what}.sinusoid"))?;
            let w = format!("{what}.sinusoid");
            reject_unknown(sin, &w, &["period_ms", "min", "max"])?;
            let field = |key: &str| -> Result<(f64, u32), ScenarioError> {
                let s = req(sin, key, &w)?;
                Ok((float_of(s, &format!("{w}.{key}"))?, s.line))
            };
            let (period_ms, pl) = field("period_ms")?;
            positive(period_ms, pl, &format!("{w}.period_ms"))?;
            let (min, ml) = field("min")?;
            non_negative(min, ml, &format!("{w}.min"))?;
            let (max, xl) = field("max")?;
            positive(max, xl, &format!("{w}.max"))?;
            if min > max {
                return Err(err(ml, format!("{w}: min {min} exceeds max {max}")));
            }
            Ok(ProfileSpec::Sinusoid {
                period_ms,
                min,
                max,
            })
        }
        _ => Err(type_err(s, what, "a profile name or { sinusoid = ... }")),
    }
}

fn decode_traffic(
    t: &Table,
    idx: usize,
    topo: &TopologySpec,
) -> Result<TrafficGroup, ScenarioError> {
    let what = format!("[[traffic]] group {idx}");
    let kind_v = req(t, "kind", &what)?;
    let kind_name = str_of(kind_v, &format!("{what}.kind"))?;

    let name = match t.get("name") {
        None => format!("group{idx}"),
        Some(s) => str_of(s, &format!("{what}.name"))?.to_string(),
    };
    let start_ms = match t.get("start_ms") {
        None => 0.0,
        Some(s) => {
            let w = format!("{what}.start_ms");
            non_negative(float_of(s, &w)?, s.line, &w)?
        }
    };
    let repeat = match t.get("repeat") {
        None => 1,
        Some(s) => {
            let w = format!("{what}.repeat");
            let v = u32_of(s, &w)?;
            // Upper bound keeps repeat-strided flow ids inside one group's
            // id block (see `compile::REPEAT_STRIDE`).
            if !(1..=999).contains(&v) {
                return Err(err(s.line, format!("{w}: must be in 1..=999, got {v}")));
            }
            v
        }
    };
    let period_ms = match t.get("period_ms") {
        None => {
            if repeat > 1 {
                return Err(err(
                    t.line,
                    format!("{what}: repeat = {repeat} requires `period_ms`"),
                ));
            }
            0.0
        }
        Some(s) => {
            let w = format!("{what}.period_ms");
            positive(float_of(s, &w)?, s.line, &w)?
        }
    };

    let common = &["kind", "name", "start_ms", "repeat", "period_ms"];
    let allowed = |extra: &[&'static str]| -> Vec<&'static str> {
        common.iter().chain(extra.iter()).copied().collect()
    };

    let kind = match kind_name {
        "poisson" => {
            reject_unknown(
                t,
                &what,
                &allowed(&["load", "window_ms", "sizes", "locality", "profile"]),
            )?;
            let l = req(t, "load", &what)?;
            let load = float_of(l, &format!("{what}.load"))?;
            if !(load > 0.0 && load < 1.0) {
                return Err(err(
                    l.line,
                    format!("{what}.load: must be in (0, 1), got {load}"),
                ));
            }
            let window_ms = match t.get("window_ms") {
                None => None,
                Some(w) => Some(positive(
                    float_of(w, &format!("{what}.window_ms"))?,
                    w.line,
                    &format!("{what}.window_ms"),
                )?),
            };
            let sizes = match t.get("sizes") {
                None => SizeSpec::WebSearch,
                Some(s) => decode_sizes(s, &format!("{what}.sizes"))?,
            };
            let locality = match t.get("locality") {
                None if topo.clusters > 1 => LocalitySpec::cluster_heavy(),
                None => LocalitySpec::leaf_spine(),
                Some(s) => decode_locality(s, &format!("{what}.locality"))?,
            };
            let profile = match t.get("profile") {
                None => ProfileSpec::Constant,
                Some(s) => decode_profile(s, &format!("{what}.profile"))?,
            };
            if topo.clusters == 1 && locality.inter_cluster > 0.0 {
                return Err(err(
                    t.line,
                    format!(
                        "{what}.locality: inter_cluster weight > 0 but the topology has one cluster"
                    ),
                ));
            }
            TrafficKind::Poisson {
                load,
                sizes,
                locality,
                window_ms,
                profile,
            }
        }
        "incast" => {
            reject_unknown(t, &what, &allowed(&["senders", "dst", "bytes"]))?;
            let senders = match t.get("senders") {
                None => HostSelector::All,
                Some(s) => {
                    let sel = decode_selector(s, &format!("{what}.senders"))?;
                    check_selector(&sel, topo, s.line, &format!("{what}.senders"))?;
                    sel
                }
            };
            let d = req(t, "dst", &what)?;
            let dst = decode_host_triple(d, &format!("{what}.dst"))?;
            if !topo.contains(dst.0, dst.1, dst.2) {
                return Err(err(
                    d.line,
                    format!(
                        "{what}.dst: host [{}, {}, {}] is outside the topology",
                        dst.0, dst.1, dst.2
                    ),
                ));
            }
            let b = req(t, "bytes", &what)?;
            let bytes = u64_of(b, &format!("{what}.bytes"))?;
            if bytes == 0 {
                return Err(err(b.line, format!("{what}.bytes: must be > 0")));
            }
            let n_senders = senders
                .expand(topo)
                .iter()
                .filter(|a| (a.cluster, a.rack, a.host) != dst)
                .count();
            if n_senders == 0 {
                return Err(err(
                    t.line,
                    format!("{what}: no senders remain after excluding the destination"),
                ));
            }
            TrafficKind::Incast {
                senders,
                dst,
                bytes,
            }
        }
        "all-reduce" => {
            reject_unknown(
                t,
                &what,
                &allowed(&["hosts", "bytes_per_step", "rounds", "step_gap_us"]),
            )?;
            let hosts = decode_participants(t, topo, &what)?;
            let b = req(t, "bytes_per_step", &what)?;
            let bytes_per_step = u64_of(b, &format!("{what}.bytes_per_step"))?;
            if bytes_per_step == 0 {
                return Err(err(b.line, format!("{what}.bytes_per_step: must be > 0")));
            }
            let rounds = match t.get("rounds") {
                None => 1,
                Some(s) => {
                    let w = format!("{what}.rounds");
                    let v = u32_of(s, &w)?;
                    if v == 0 {
                        return Err(err(s.line, format!("{w}: must be >= 1")));
                    }
                    v
                }
            };
            TrafficKind::AllReduce {
                hosts,
                bytes_per_step,
                rounds,
                step_gap_us: decode_step_gap(t, &what)?,
            }
        }
        "all-to-all" => {
            reject_unknown(t, &what, &allowed(&["hosts", "bytes", "step_gap_us"]))?;
            let hosts = decode_participants(t, topo, &what)?;
            let b = req(t, "bytes", &what)?;
            let bytes = u64_of(b, &format!("{what}.bytes"))?;
            if bytes == 0 {
                return Err(err(b.line, format!("{what}.bytes: must be > 0")));
            }
            TrafficKind::AllToAll {
                hosts,
                bytes,
                step_gap_us: decode_step_gap(t, &what)?,
            }
        }
        "permutation" => {
            reject_unknown(t, &what, &allowed(&["bytes"]))?;
            let b = req(t, "bytes", &what)?;
            let bytes = u64_of(b, &format!("{what}.bytes"))?;
            if bytes == 0 {
                return Err(err(b.line, format!("{what}.bytes: must be > 0")));
            }
            TrafficKind::Permutation { bytes }
        }
        other => {
            return Err(err(
                kind_v.line,
                format!(
                    "{what}.kind: unknown kind `{other}` (expected poisson, incast, \
                     all-reduce, all-to-all, or permutation)"
                ),
            ))
        }
    };

    Ok(TrafficGroup {
        name,
        start_ms,
        repeat,
        period_ms,
        kind,
    })
}

/// Decodes the `hosts` selector of a collective group and requires at
/// least two participants.
fn decode_participants(
    t: &Table,
    topo: &TopologySpec,
    what: &str,
) -> Result<HostSelector, ScenarioError> {
    let (sel, line) = match t.get("hosts") {
        None => (HostSelector::All, t.line),
        Some(s) => (decode_selector(s, &format!("{what}.hosts"))?, s.line),
    };
    check_selector(&sel, topo, line, &format!("{what}.hosts"))?;
    let n = sel.expand(topo).len();
    if n < 2 {
        return Err(err(
            line,
            format!("{what}.hosts: a collective needs >= 2 participants, got {n}"),
        ));
    }
    Ok(sel)
}

fn decode_step_gap(t: &Table, what: &str) -> Result<f64, ScenarioError> {
    match t.get("step_gap_us") {
        None => Ok(50.0),
        Some(s) => {
            let w = format!("{what}.step_gap_us");
            non_negative(float_of(s, &w)?, s.line, &w)
        }
    }
}

fn decode_regimes(items: &[Spanned]) -> Result<Vec<RegimeWindow>, ScenarioError> {
    let mut windows: Vec<(RegimeWindow, u32)> = Vec::with_capacity(items.len());
    for (idx, item) in items.iter().enumerate() {
        let what = format!("[[regime]] window {idx}");
        let t = table_of(item, &what)?;
        reject_unknown(t, &what, &["start_ms", "stop_ms", "multiplier"])?;
        let field = |key: &str| -> Result<(f64, u32), ScenarioError> {
            let s = req(t, key, &what)?;
            Ok((float_of(s, &format!("{what}.{key}"))?, s.line))
        };
        let (start_ms, sl) = field("start_ms")?;
        non_negative(start_ms, sl, &format!("{what}.start_ms"))?;
        let (stop_ms, pl) = field("stop_ms")?;
        if stop_ms <= start_ms {
            return Err(err(
                pl,
                format!("{what}: stop_ms {stop_ms} must exceed start_ms {start_ms}"),
            ));
        }
        let (multiplier, ml) = field("multiplier")?;
        positive(multiplier, ml, &format!("{what}.multiplier"))?;
        windows.push((
            RegimeWindow {
                start_ms,
                stop_ms,
                multiplier,
            },
            t.line,
        ));
    }
    // Overlap check against every earlier window (schedules are usually
    // written in order, but the check must not depend on it).
    for i in 0..windows.len() {
        for j in 0..i {
            let (a, line) = (&windows[i].0, windows[i].1);
            let b = &windows[j].0;
            if a.start_ms < b.stop_ms && b.start_ms < a.stop_ms {
                return Err(err(
                    line,
                    format!(
                        "[[regime]] window {i} [{}, {}) overlaps window {j} [{}, {})",
                        a.start_ms, a.stop_ms, b.start_ms, b.stop_ms
                    ),
                ));
            }
        }
    }
    let mut out: Vec<RegimeWindow> = windows.into_iter().map(|(w, _)| w).collect();
    out.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    Ok(out)
}

fn decode_faults(t: &Table, pdes: &PdesSpec) -> Result<FaultSpec, ScenarioError> {
    reject_unknown(
        t,
        "[faults]",
        &[
            "seed",
            "drop_prob",
            "dup_prob",
            "corrupt_prob",
            "slow_partition",
            "stall_partition",
        ],
    )?;
    let mut spec = FaultSpec::default();
    if let Some(s) = t.get("seed") {
        spec.seed = u64_of(s, "faults.seed")?;
    }
    let prob = |key: &str| -> Result<Option<f64>, ScenarioError> {
        match t.get(key) {
            None => Ok(None),
            Some(s) => {
                let w = format!("faults.{key}");
                Ok(Some(probability(float_of(s, &w)?, s.line, &w)?))
            }
        }
    };
    if let Some(v) = prob("drop_prob")? {
        spec.drop_prob = v;
    }
    if let Some(v) = prob("dup_prob")? {
        spec.dup_prob = v;
    }
    if let Some(v) = prob("corrupt_prob")? {
        spec.corrupt_prob = v;
    }
    let partition_of = |t: &Table, what: &str| -> Result<usize, ScenarioError> {
        let s = req(t, "partition", what)?;
        let v = usize_of(s, &format!("{what}.partition"))?;
        if v >= pdes.partitions {
            return Err(err(
                s.line,
                format!(
                    "{what}.partition: partition {v} out of range (topology.pdes.partitions = {})",
                    pdes.partitions
                ),
            ));
        }
        Ok(v)
    };
    if let Some(s) = t.get("slow_partition") {
        let what = "faults.slow_partition";
        let st = table_of(s, what)?;
        reject_unknown(st, what, &["partition", "ms_per_epoch"])?;
        let p = partition_of(st, what)?;
        let m = req(st, "ms_per_epoch", what)?;
        let ms = positive(
            float_of(m, &format!("{what}.ms_per_epoch"))?,
            m.line,
            &format!("{what}.ms_per_epoch"),
        )?;
        spec.slow_partition = Some((p, ms));
    }
    if let Some(s) = t.get("stall_partition") {
        let what = "faults.stall_partition";
        let st = table_of(s, what)?;
        reject_unknown(st, what, &["partition", "after_epochs"])?;
        let p = partition_of(st, what)?;
        let e = req(st, "after_epochs", what)?;
        let epochs = u64_of(e, &format!("{what}.after_epochs"))?;
        spec.stall_partition = Some((p, epochs));
    }
    Ok(spec)
}

fn decode_guard(t: &Table) -> Result<GuardSpec, ScenarioError> {
    reject_unknown(
        t,
        "[guard]",
        &["enabled", "ceiling_ms", "tolerance", "trip_limit"],
    )?;
    let mut spec = GuardSpec::default();
    if let Some(s) = t.get("enabled") {
        spec.enabled = bool_of(s, "guard.enabled")?;
    }
    if let Some(s) = t.get("ceiling_ms") {
        spec.ceiling_ms = positive(float_of(s, "guard.ceiling_ms")?, s.line, "guard.ceiling_ms")?;
    }
    if let Some(s) = t.get("tolerance") {
        spec.tolerance = probability(float_of(s, "guard.tolerance")?, s.line, "guard.tolerance")?;
    }
    if let Some(s) = t.get("trip_limit") {
        let v = u64_of(s, "guard.trip_limit")?;
        if v == 0 {
            return Err(err(s.line, "guard.trip_limit: must be >= 1"));
        }
        spec.trip_limit = v;
    }
    Ok(spec)
}

fn decode_recovery(t: &Table) -> Result<RecoverySpec, ScenarioError> {
    reject_unknown(
        t,
        "[recovery]",
        &["enabled", "checkpoint_every_ms", "max_retries"],
    )?;
    let mut spec = RecoverySpec::default();
    if let Some(s) = t.get("enabled") {
        spec.enabled = bool_of(s, "recovery.enabled")?;
    }
    if let Some(s) = t.get("checkpoint_every_ms") {
        spec.checkpoint_every_ms = positive(
            float_of(s, "recovery.checkpoint_every_ms")?,
            s.line,
            "recovery.checkpoint_every_ms",
        )?;
    }
    if let Some(s) = t.get("max_retries") {
        let v = u64_of(s, "recovery.max_retries")?;
        if v == 0 {
            return Err(err(s.line, "recovery.max_retries: must be >= 1"));
        }
        spec.max_retries = v as u32;
    }
    Ok(spec)
}

fn decode_audit(t: &Table) -> Result<AuditSpec, ScenarioError> {
    reject_unknown(
        t,
        "[audit]",
        &["enabled", "max_drop_rate_error", "max_ks", "max_w1_ratio"],
    )?;
    let mut spec = AuditSpec::default();
    if let Some(s) = t.get("enabled") {
        spec.enabled = bool_of(s, "audit.enabled")?;
    }
    if let Some(s) = t.get("max_drop_rate_error") {
        spec.max_drop_rate_error = probability(
            float_of(s, "audit.max_drop_rate_error")?,
            s.line,
            "audit.max_drop_rate_error",
        )?;
    }
    if let Some(s) = t.get("max_ks") {
        spec.max_ks = probability(float_of(s, "audit.max_ks")?, s.line, "audit.max_ks")?;
    }
    if let Some(s) = t.get("max_w1_ratio") {
        spec.max_w1_ratio = positive(
            float_of(s, "audit.max_w1_ratio")?,
            s.line,
            "audit.max_w1_ratio",
        )?;
    }
    Ok(spec)
}

fn decode_model(t: &Table, topo: &TopologySpec) -> Result<ModelSpec, ScenarioError> {
    reject_unknown(t, "[model]", &["path", "full_cluster", "train_fallback"])?;
    let mut spec = ModelSpec::default();
    if let Some(s) = t.get("path") {
        let p = str_of(s, "model.path")?;
        if p.is_empty() {
            return Err(err(s.line, "model.path: must be non-empty"));
        }
        spec.path = Some(p.to_string());
        spec.path_line = s.line;
    } else {
        // No path: artifact-load diagnostics point at the section header.
        spec.path_line = t.line;
    }
    if let Some(s) = t.get("full_cluster") {
        let v = u16_of(s, "model.full_cluster")?;
        if v >= topo.clusters {
            return Err(err(
                s.line,
                format!(
                    "model.full_cluster: cluster {v} out of range (topology.clusters = {})",
                    topo.clusters
                ),
            ));
        }
        spec.full_cluster = Some(v);
    }
    if let Some(s) = t.get("train_fallback") {
        spec.train_fallback = bool_of(s, "model.train_fallback")?;
    }
    Ok(spec)
}

fn decode_oracle(t: &Table, topo: &TopologySpec) -> Result<OracleSpec, ScenarioError> {
    reject_unknown(t, "[oracle]", &["cache", "cache_cap", "full_cluster"])?;
    let mut spec = OracleSpec::default();
    if let Some(s) = t.get("cache") {
        spec.cache = bool_of(s, "oracle.cache")?;
    }
    if let Some(s) = t.get("cache_cap") {
        let v = usize_of(s, "oracle.cache_cap")?;
        if v == 0 {
            return Err(err(s.line, "oracle.cache_cap: must be >= 1"));
        }
        spec.cache_cap = v;
    }
    if let Some(s) = t.get("full_cluster") {
        let v = u16_of(s, "oracle.full_cluster")?;
        if v >= topo.clusters {
            return Err(err(
                s.line,
                format!(
                    "oracle.full_cluster: cluster {v} out of range (topology.clusters = {})",
                    topo.clusters
                ),
            ));
        }
        spec.full_cluster = v;
    }
    Ok(spec)
}

fn decode_outputs(t: &Table) -> Result<OutputSpec, ScenarioError> {
    reject_unknown(t, "[outputs]", &["sample_every_us"])?;
    let mut spec = OutputSpec::default();
    if let Some(s) = t.get("sample_every_us") {
        let v = u64_of(s, "outputs.sample_every_us")?;
        if v == 0 {
            return Err(err(s.line, "outputs.sample_every_us: must be >= 1"));
        }
        spec.sample_every_us = Some(v);
    }
    Ok(spec)
}
