//! Typed scenario model: what a validated scenario file means.
//!
//! A [`Scenario`] is the in-memory form of one `scenarios/*.toml` file:
//! topology shape + link physics + PDES partitioning, a traffic matrix of
//! [`TrafficGroup`]s (Poisson mixes, incasts, collective phases), an
//! optional regime schedule, an optional PDES fault plan, and guard /
//! oracle-cache / output knobs. Everything here is plain data — the
//! lowering to engine types lives in [`crate::compile`].
//!
//! The emitter ([`Scenario::to_toml_string`]) writes the same schema the
//! decoder reads, so scenarios round-trip: programmatically built ones can
//! be committed, and committed ones can be re-emitted canonically.

use elephant_des::SimDuration;
use elephant_net::{ClosParams, HostAddr, LinkSpec};

/// The schema version this build reads and writes (`schema = 1`).
pub const SCHEMA_VERSION: i64 = 1;

/// A validated declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Short machine-friendly name (shown by `--list-scenarios`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Network shape and PDES partitioning.
    pub topology: TopologySpec,
    /// Horizon, default seed, TCP flavor.
    pub run: RunSpec,
    /// The traffic matrix: one or more flow groups.
    pub traffic: Vec<TrafficGroup>,
    /// Load-regime schedule consumed by `profile = "schedule"` groups.
    pub regimes: Vec<RegimeWindow>,
    /// Optional PDES fault plan (ignored by the sequential driver).
    pub faults: Option<FaultSpec>,
    /// Optional oracle guardrail configuration (hybrid runs).
    pub guard: Option<GuardSpec>,
    /// Optional checkpoint/restore + retry-ladder configuration.
    pub recovery: Option<RecoverySpec>,
    /// Optional paired-run divergence bounds (`elephant audit`).
    pub audit: Option<AuditSpec>,
    /// Optional learned-model artifact binding (hybrid runs).
    pub model: Option<ModelSpec>,
    /// Oracle-cache configuration (hybrid runs).
    pub oracle: OracleSpec,
    /// Sampler / artifact outputs.
    pub outputs: OutputSpec,
}

/// Clos topology description plus PDES partitioning defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologySpec {
    /// Number of clusters (1 = leaf-spine, no core layer).
    pub clusters: u16,
    /// Racks (ToR switches) per cluster.
    pub racks_per_cluster: u16,
    /// Servers per rack.
    pub hosts_per_rack: u16,
    /// Cluster switches per cluster.
    pub aggs_per_cluster: u16,
    /// Core switches per group (ignored when `clusters == 1`).
    pub cores_per_group: u16,
    /// Host ↔ ToR link physics.
    pub host_link: LinkSpecToml,
    /// ToR ↔ Cluster-switch link physics.
    pub fabric_link: LinkSpecToml,
    /// Cluster-switch ↔ Core link physics.
    pub core_link: LinkSpecToml,
    /// ECMP hash salt seed.
    pub ecmp_seed: u64,
    /// PDES partitioning used by `run-scenario --pdes` and benches.
    pub pdes: PdesSpec,
}

impl TopologySpec {
    /// The paper's Figure-5 cluster shape, scenario-spec form.
    pub fn paper_cluster(clusters: u16) -> Self {
        let p = ClosParams::paper_cluster(clusters);
        TopologySpec {
            clusters,
            racks_per_cluster: p.racks_per_cluster,
            hosts_per_rack: p.hosts_per_rack,
            aggs_per_cluster: p.aggs_per_cluster,
            cores_per_group: p.cores_per_group,
            host_link: LinkSpecToml::from_link(&p.host_link),
            fabric_link: LinkSpecToml::from_link(&p.fabric_link),
            core_link: LinkSpecToml::from_link(&p.core_link),
            ecmp_seed: p.ecmp_seed,
            pdes: PdesSpec::default(),
        }
    }

    /// Lowers to the engine's [`ClosParams`]. `dctcp` enables ECN marking
    /// on every layer at the workspace's standard 30 kB threshold when the
    /// links don't already carry their own thresholds.
    pub fn params(&self, dctcp: bool) -> ClosParams {
        let lower = |l: &LinkSpecToml| {
            let mut spec = l.to_link();
            if dctcp && spec.ecn_threshold_bytes.is_none() {
                spec = spec.with_ecn(30_000);
            }
            spec
        };
        ClosParams {
            clusters: self.clusters,
            racks_per_cluster: self.racks_per_cluster,
            hosts_per_rack: self.hosts_per_rack,
            aggs_per_cluster: self.aggs_per_cluster,
            cores_per_group: self.cores_per_group,
            host_link: lower(&self.host_link),
            fabric_link: lower(&self.fabric_link),
            core_link: lower(&self.core_link),
            ecmp_seed: self.ecmp_seed,
        }
    }

    /// Total server count.
    pub fn total_hosts(&self) -> u32 {
        self.clusters as u32 * self.racks_per_cluster as u32 * self.hosts_per_rack as u32
    }

    /// True if `(cluster, rack, host)` addresses a real server.
    pub fn contains(&self, c: u16, r: u16, h: u16) -> bool {
        c < self.clusters && r < self.racks_per_cluster && h < self.hosts_per_rack
    }
}

/// Link physics, scenario-file units (µs, Gb/s, bytes).
#[derive(Clone, Debug, PartialEq)]
pub struct LinkSpecToml {
    /// Line rate in gigabits per second.
    pub rate_gbps: f64,
    /// Propagation delay in microseconds.
    pub prop_delay_us: f64,
    /// Output queue capacity in bytes.
    pub queue_cap_bytes: u64,
    /// ECN marking threshold in bytes; `None` disables marking.
    pub ecn_threshold_bytes: Option<u64>,
}

impl LinkSpecToml {
    /// 10 GbE defaults (the paper's everywhere-link).
    pub fn ten_gbe() -> Self {
        LinkSpecToml::from_link(&LinkSpec::ten_gbe())
    }

    /// Converts from the engine's [`LinkSpec`].
    pub fn from_link(l: &LinkSpec) -> Self {
        LinkSpecToml {
            rate_gbps: l.rate_gbps,
            prop_delay_us: l.prop_delay.as_secs_f64() * 1e6,
            queue_cap_bytes: l.queue_cap_bytes,
            ecn_threshold_bytes: l.ecn_threshold_bytes,
        }
    }

    /// Converts to the engine's [`LinkSpec`].
    pub fn to_link(&self) -> LinkSpec {
        LinkSpec {
            rate_gbps: self.rate_gbps,
            prop_delay: SimDuration::from_secs_f64(self.prop_delay_us / 1e6),
            queue_cap_bytes: self.queue_cap_bytes,
            ecn_threshold_bytes: self.ecn_threshold_bytes,
        }
    }
}

/// PDES partitioning defaults for this scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct PdesSpec {
    /// Rack partitions (the CLI's `--pdes N` overrides this).
    pub partitions: usize,
    /// Emulated machines the partitions are dealt over.
    pub machines: usize,
    /// MPI-style envelope bytes per marshalled message.
    pub envelope_bytes: usize,
}

impl Default for PdesSpec {
    fn default() -> Self {
        PdesSpec {
            partitions: 2,
            machines: 1,
            envelope_bytes: 64,
        }
    }
}

/// Run-level knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Simulated horizon in milliseconds.
    pub horizon_ms: f64,
    /// Default experiment seed (the CLI's `--seed` overrides this).
    pub seed: u64,
    /// DCTCP + ECN-marking switches instead of New Reno.
    pub dctcp: bool,
}

/// Selects a set of hosts in the topology.
#[derive(Clone, Debug, PartialEq)]
pub enum HostSelector {
    /// Every host.
    All,
    /// Every host of one cluster.
    Cluster(u16),
    /// Every host of one rack.
    Rack(u16, u16),
    /// An explicit `(cluster, rack, host)` list.
    List(Vec<(u16, u16, u16)>),
}

impl HostSelector {
    /// Expands to concrete host addresses, ordered by
    /// `(cluster, rack, host)` (explicit lists keep their order).
    pub fn expand(&self, topo: &TopologySpec) -> Vec<HostAddr> {
        let mut out = Vec::new();
        let push_rack = |c: u16, r: u16, out: &mut Vec<HostAddr>| {
            for h in 0..topo.hosts_per_rack {
                out.push(HostAddr::new(c, r, h));
            }
        };
        match self {
            HostSelector::All => {
                for c in 0..topo.clusters {
                    for r in 0..topo.racks_per_cluster {
                        push_rack(c, r, &mut out);
                    }
                }
            }
            HostSelector::Cluster(c) => {
                for r in 0..topo.racks_per_cluster {
                    push_rack(*c, r, &mut out);
                }
            }
            HostSelector::Rack(c, r) => push_rack(*c, *r, &mut out),
            HostSelector::List(list) => {
                out.extend(list.iter().map(|&(c, r, h)| HostAddr::new(c, r, h)));
            }
        }
        out
    }

    /// The first out-of-range address this selector names, if any.
    pub fn dangling(&self, topo: &TopologySpec) -> Option<(u16, u16, u16)> {
        match self {
            HostSelector::All => None,
            HostSelector::Cluster(c) => (!topo.contains(*c, 0, 0)).then_some((*c, 0, 0)),
            HostSelector::Rack(c, r) => (!topo.contains(*c, *r, 0)).then_some((*c, *r, 0)),
            HostSelector::List(list) => list
                .iter()
                .find(|&&(c, r, h)| !topo.contains(c, r, h))
                .copied(),
        }
    }
}

/// One flow group of the traffic matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficGroup {
    /// Group label (defaults to `group<index>`).
    pub name: String,
    /// When the group's window opens, in milliseconds.
    pub start_ms: f64,
    /// Number of copies of the window's flows (time-shifted bursts).
    pub repeat: u32,
    /// Shift between copies, in milliseconds (required when `repeat > 1`).
    pub period_ms: f64,
    /// What the group emits.
    pub kind: TrafficKind,
}

/// The flavor of a traffic group.
#[derive(Clone, Debug, PartialEq)]
pub enum TrafficKind {
    /// Per-host Poisson arrivals over a locality mix (the workspace's
    /// standard synthetic workload).
    Poisson {
        /// Per-host offered load fraction, in `(0, 1)`.
        load: f64,
        /// Flow-size distribution.
        sizes: SizeSpec,
        /// Destination locality mix.
        locality: LocalitySpec,
        /// Length of the arrival window in milliseconds. `None` extends
        /// to the run horizon (one-shot groups) or to the repeat period
        /// (bursty groups).
        window_ms: Option<f64>,
        /// Time-varying load multiplier.
        profile: ProfileSpec,
    },
    /// A synchronized incast: every selected sender fires `bytes` at
    /// `dst` simultaneously (the §2.1 pathology).
    Incast {
        /// Sending hosts (the destination is excluded automatically).
        senders: HostSelector,
        /// `(cluster, rack, host)` of the victim.
        dst: (u16, u16, u16),
        /// Bytes per sender.
        bytes: u64,
    },
    /// Ring all-reduce phases: `2·(n−1)` steps per round, each host
    /// sending one chunk to its ring successor per step (HyGra /
    /// "Supercharging" style LLM-training collective).
    AllReduce {
        /// Participating hosts, ring-ordered by `(cluster, rack, host)`.
        hosts: HostSelector,
        /// Chunk bytes each host sends per step.
        bytes_per_step: u64,
        /// Number of all-reduce rounds.
        rounds: u32,
        /// Gap between steps, in microseconds.
        step_gap_us: f64,
    },
    /// Windowed all-to-all: step `s` shifts every host's destination by
    /// `s` positions, so `n−1` steps exchange all pairs without `n²`
    /// simultaneous flows.
    AllToAll {
        /// Participating hosts.
        hosts: HostSelector,
        /// Bytes per pairwise transfer.
        bytes: u64,
        /// Gap between permutation steps, in microseconds.
        step_gap_us: f64,
    },
    /// Every host sends one flow to a rotated partner.
    Permutation {
        /// Bytes per flow.
        bytes: u64,
    },
}

impl TrafficKind {
    /// The kind tag used in scenario files.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TrafficKind::Poisson { .. } => "poisson",
            TrafficKind::Incast { .. } => "incast",
            TrafficKind::AllReduce { .. } => "all-reduce",
            TrafficKind::AllToAll { .. } => "all-to-all",
            TrafficKind::Permutation { .. } => "permutation",
        }
    }
}

/// Flow-size distribution selector.
#[derive(Clone, Debug, PartialEq)]
pub enum SizeSpec {
    /// The DCTCP web-search CDF.
    WebSearch,
    /// The VL2 data-mining CDF (heavier tail).
    DataMining,
    /// Every flow the same size.
    Fixed(u64),
}

/// Destination locality mix (weights need not be normalized).
#[derive(Clone, Debug, PartialEq)]
pub struct LocalitySpec {
    /// Weight of same-rack destinations.
    pub rack_local: f64,
    /// Weight of same-cluster, different-rack destinations.
    pub intra_cluster: f64,
    /// Weight of other-cluster destinations.
    pub inter_cluster: f64,
}

impl LocalitySpec {
    /// The multi-cluster experiments' mix.
    pub fn cluster_heavy() -> Self {
        LocalitySpec {
            rack_local: 0.1,
            intra_cluster: 0.3,
            inter_cluster: 0.6,
        }
    }

    /// The single-cluster leaf-spine mix.
    pub fn leaf_spine() -> Self {
        LocalitySpec {
            rack_local: 0.2,
            intra_cluster: 0.8,
            inter_cluster: 0.0,
        }
    }
}

/// Time-varying load multiplier for a Poisson group.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileSpec {
    /// Constant multiplier 1.
    Constant,
    /// Compressed-diurnal sinusoid.
    Sinusoid {
        /// Cycle length in milliseconds.
        period_ms: f64,
        /// Trough multiplier.
        min: f64,
        /// Crest multiplier.
        max: f64,
    },
    /// Follow the scenario's `[[regime]]` schedule.
    Schedule,
}

/// One window of the scenario-level regime schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeWindow {
    /// Window start, milliseconds.
    pub start_ms: f64,
    /// Window end, milliseconds (exclusive).
    pub stop_ms: f64,
    /// Load multiplier inside the window (outside any window it is 1).
    pub multiplier: f64,
}

/// Declarative PDES fault plan, scenario-file units.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed for the per-partition fault streams.
    pub seed: u64,
    /// Cross-machine message drop probability.
    pub drop_prob: f64,
    /// Cross-machine message duplication probability.
    pub dup_prob: f64,
    /// Cross-machine message corruption probability (aborts the run with
    /// a typed `PdesError::Corrupt` when it fires).
    pub corrupt_prob: f64,
    /// `(partition, ms per epoch)` wall-clock slowdown of one worker.
    pub slow_partition: Option<(usize, f64)>,
    /// `(partition, epochs)` scripted stall (trips the watchdog).
    pub stall_partition: Option<(usize, u64)>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            corrupt_prob: 0.0,
            slow_partition: None,
            stall_partition: None,
        }
    }
}

/// Checkpoint/restore + degradation-ladder configuration for supervised
/// runs (`[recovery]`).
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverySpec {
    /// Whether the run is supervised at all.
    pub enabled: bool,
    /// Simulated milliseconds between checkpoints.
    pub checkpoint_every_ms: f64,
    /// Checkpoint restores per ladder rung before degrading.
    pub max_retries: u32,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        RecoverySpec {
            enabled: true,
            checkpoint_every_ms: 10.0,
            max_retries: 2,
        }
    }
}

/// Divergence bounds for the paired-run accuracy audit (`[audit]`).
///
/// The defaults mirror the reference bounds the oracle-cache accuracy
/// tests hold the hybrid to; scenarios tighten or loosen them per
/// workload.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditSpec {
    /// Whether `elephant audit` gates this scenario at all.
    pub enabled: bool,
    /// Max absolute drop-rate error between truth and hybrid.
    pub max_drop_rate_error: f64,
    /// Max Kolmogorov-Smirnov distance between FCT distributions.
    pub max_ks: f64,
    /// Max Wasserstein-1 distance as a fraction of the truth mean FCT.
    pub max_w1_ratio: f64,
}

impl Default for AuditSpec {
    fn default() -> Self {
        AuditSpec {
            enabled: true,
            max_drop_rate_error: 0.01,
            max_ks: 0.35,
            max_w1_ratio: 0.05,
        }
    }
}

/// Oracle guardrail configuration for hybrid runs.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardSpec {
    /// Whether the guard wraps the oracle at all.
    pub enabled: bool,
    /// Latency ceiling in milliseconds.
    pub ceiling_ms: f64,
    /// Allowed drop-rate drift around the training rate.
    pub tolerance: f64,
    /// Trips before permanent fallback.
    pub trip_limit: u64,
}

impl Default for GuardSpec {
    fn default() -> Self {
        GuardSpec {
            enabled: true,
            ceiling_ms: 100.0,
            tolerance: 0.10,
            trip_limit: 64,
        }
    }
}

/// Oracle-cache configuration for hybrid runs.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleSpec {
    /// Memoize verdicts for quantized feature keys.
    pub cache: bool,
    /// Cache capacity in verdicts.
    pub cache_cap: usize,
    /// The cluster kept at packet fidelity.
    pub full_cluster: u16,
}

impl Default for OracleSpec {
    fn default() -> Self {
        OracleSpec {
            cache: false,
            cache_cap: 65_536,
            full_cluster: 0,
        }
    }
}

/// Learned-model artifact binding for hybrid runs (`[model]`).
///
/// A scenario with this section runs on the hybrid driver: `path` names a
/// versioned model artifact (the CLI's `--model` flag overrides it),
/// `full_cluster` overrides `[oracle] full_cluster` when present, and
/// `train_fallback` mirrors the `hybrid` subcommand's behavior of
/// capturing + training a small default model when no artifact exists.
#[derive(Clone, Debug, Default)]
pub struct ModelSpec {
    /// Path to the versioned model artifact (JSON), relative to the
    /// process working directory. `None` requires either the CLI's
    /// `--model` flag or `train_fallback = true`.
    pub path: Option<String>,
    /// Source line of the `path` key (0 when built programmatically) —
    /// lets artifact-load failures report `file:line` scenario context.
    pub path_line: u32,
    /// The cluster kept at packet fidelity; overrides
    /// `[oracle] full_cluster` when set.
    pub full_cluster: Option<u16>,
    /// Capture + train a small default model when `path` is absent or
    /// names a missing file (mirrors the `hybrid` subcommand).
    pub train_fallback: bool,
}

// `path_line` is provenance, not meaning: two specs naming the same
// artifact are equal regardless of where the key sat in the file, which
// is what keeps the emit → re-parse round trip an equality.
impl PartialEq for ModelSpec {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path
            && self.full_cluster == other.full_cluster
            && self.train_fallback == other.train_fallback
    }
}

/// Sampler / timeline outputs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OutputSpec {
    /// Sample queue/load/macro time series every this many microseconds.
    pub sample_every_us: Option<u64>,
}

// ---------------------------------------------------------------------------
// Emission: Scenario -> canonical TOML text.
// ---------------------------------------------------------------------------

/// Formats an f64 so it re-parses as a TOML float (always with a point or
/// exponent).
fn toml_f64(v: f64) -> String {
    let s = format!("{v:?}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn emit_link(out: &mut String, section: &str, l: &LinkSpecToml) {
    out.push_str(&format!("\n[topology.{section}]\n"));
    out.push_str(&format!("rate_gbps = {}\n", toml_f64(l.rate_gbps)));
    out.push_str(&format!("prop_delay_us = {}\n", toml_f64(l.prop_delay_us)));
    out.push_str(&format!("queue_cap_bytes = {}\n", l.queue_cap_bytes));
    if let Some(t) = l.ecn_threshold_bytes {
        out.push_str(&format!("ecn_threshold_bytes = {t}\n"));
    }
}

fn emit_selector(key: &str, s: &HostSelector) -> String {
    match s {
        HostSelector::All => format!("{key} = \"all\"\n"),
        HostSelector::Cluster(c) => format!("{key} = {{ cluster = {c} }}\n"),
        HostSelector::Rack(c, r) => format!("{key} = {{ cluster = {c}, rack = {r} }}\n"),
        HostSelector::List(list) => {
            let items: Vec<String> = list
                .iter()
                .map(|(c, r, h)| format!("[{c}, {r}, {h}]"))
                .collect();
            format!("{key} = [{}]\n", items.join(", "))
        }
    }
}

impl Scenario {
    /// Renders the scenario as canonical TOML, the inverse of the decoder.
    pub fn to_toml_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("schema = {SCHEMA_VERSION}\n"));
        out.push_str("\n[scenario]\n");
        out.push_str(&format!("name = {:?}\n", self.name));
        out.push_str(&format!("description = {:?}\n", self.description));

        let t = &self.topology;
        out.push_str("\n[topology]\n");
        out.push_str(&format!("clusters = {}\n", t.clusters));
        out.push_str(&format!("racks_per_cluster = {}\n", t.racks_per_cluster));
        out.push_str(&format!("hosts_per_rack = {}\n", t.hosts_per_rack));
        out.push_str(&format!("aggs_per_cluster = {}\n", t.aggs_per_cluster));
        out.push_str(&format!("cores_per_group = {}\n", t.cores_per_group));
        out.push_str(&format!("ecmp_seed = {}\n", t.ecmp_seed));
        emit_link(&mut out, "host_link", &t.host_link);
        emit_link(&mut out, "fabric_link", &t.fabric_link);
        emit_link(&mut out, "core_link", &t.core_link);
        out.push_str("\n[topology.pdes]\n");
        out.push_str(&format!("partitions = {}\n", t.pdes.partitions));
        out.push_str(&format!("machines = {}\n", t.pdes.machines));
        out.push_str(&format!("envelope_bytes = {}\n", t.pdes.envelope_bytes));

        out.push_str("\n[run]\n");
        out.push_str(&format!("horizon_ms = {}\n", toml_f64(self.run.horizon_ms)));
        out.push_str(&format!("seed = {}\n", self.run.seed));
        out.push_str(&format!("dctcp = {}\n", self.run.dctcp));

        for g in &self.traffic {
            out.push_str("\n[[traffic]]\n");
            out.push_str(&format!("kind = {:?}\n", g.kind.kind_name()));
            out.push_str(&format!("name = {:?}\n", g.name));
            out.push_str(&format!("start_ms = {}\n", toml_f64(g.start_ms)));
            if g.repeat != 1 {
                out.push_str(&format!("repeat = {}\n", g.repeat));
                out.push_str(&format!("period_ms = {}\n", toml_f64(g.period_ms)));
            }
            match &g.kind {
                TrafficKind::Poisson {
                    load,
                    sizes,
                    locality,
                    window_ms,
                    profile,
                } => {
                    out.push_str(&format!("load = {}\n", toml_f64(*load)));
                    if let Some(w) = window_ms {
                        out.push_str(&format!("window_ms = {}\n", toml_f64(*w)));
                    }
                    match sizes {
                        SizeSpec::WebSearch => out.push_str("sizes = \"web-search\"\n"),
                        SizeSpec::DataMining => out.push_str("sizes = \"data-mining\"\n"),
                        SizeSpec::Fixed(b) => out.push_str(&format!("sizes = {{ fixed = {b} }}\n")),
                    }
                    out.push_str(&format!(
                        "locality = {{ rack_local = {}, intra_cluster = {}, inter_cluster = {} }}\n",
                        toml_f64(locality.rack_local),
                        toml_f64(locality.intra_cluster),
                        toml_f64(locality.inter_cluster)
                    ));
                    match profile {
                        ProfileSpec::Constant => out.push_str("profile = \"constant\"\n"),
                        ProfileSpec::Schedule => out.push_str("profile = \"schedule\"\n"),
                        ProfileSpec::Sinusoid {
                            period_ms,
                            min,
                            max,
                        } => out.push_str(&format!(
                            "profile = {{ sinusoid = {{ period_ms = {}, min = {}, max = {} }} }}\n",
                            toml_f64(*period_ms),
                            toml_f64(*min),
                            toml_f64(*max)
                        )),
                    }
                }
                TrafficKind::Incast {
                    senders,
                    dst,
                    bytes,
                } => {
                    out.push_str(&emit_selector("senders", senders));
                    out.push_str(&format!("dst = [{}, {}, {}]\n", dst.0, dst.1, dst.2));
                    out.push_str(&format!("bytes = {bytes}\n"));
                }
                TrafficKind::AllReduce {
                    hosts,
                    bytes_per_step,
                    rounds,
                    step_gap_us,
                } => {
                    out.push_str(&emit_selector("hosts", hosts));
                    out.push_str(&format!("bytes_per_step = {bytes_per_step}\n"));
                    out.push_str(&format!("rounds = {rounds}\n"));
                    out.push_str(&format!("step_gap_us = {}\n", toml_f64(*step_gap_us)));
                }
                TrafficKind::AllToAll {
                    hosts,
                    bytes,
                    step_gap_us,
                } => {
                    out.push_str(&emit_selector("hosts", hosts));
                    out.push_str(&format!("bytes = {bytes}\n"));
                    out.push_str(&format!("step_gap_us = {}\n", toml_f64(*step_gap_us)));
                }
                TrafficKind::Permutation { bytes } => {
                    out.push_str(&format!("bytes = {bytes}\n"));
                }
            }
        }

        for r in &self.regimes {
            out.push_str("\n[[regime]]\n");
            out.push_str(&format!("start_ms = {}\n", toml_f64(r.start_ms)));
            out.push_str(&format!("stop_ms = {}\n", toml_f64(r.stop_ms)));
            out.push_str(&format!("multiplier = {}\n", toml_f64(r.multiplier)));
        }

        if let Some(f) = &self.faults {
            out.push_str("\n[faults]\n");
            out.push_str(&format!("seed = {}\n", f.seed));
            out.push_str(&format!("drop_prob = {}\n", toml_f64(f.drop_prob)));
            out.push_str(&format!("dup_prob = {}\n", toml_f64(f.dup_prob)));
            out.push_str(&format!("corrupt_prob = {}\n", toml_f64(f.corrupt_prob)));
            if let Some((p, ms)) = f.slow_partition {
                out.push_str(&format!(
                    "slow_partition = {{ partition = {p}, ms_per_epoch = {} }}\n",
                    toml_f64(ms)
                ));
            }
            if let Some((p, epochs)) = f.stall_partition {
                out.push_str(&format!(
                    "stall_partition = {{ partition = {p}, after_epochs = {epochs} }}\n"
                ));
            }
        }

        if let Some(g) = &self.guard {
            out.push_str("\n[guard]\n");
            out.push_str(&format!("enabled = {}\n", g.enabled));
            out.push_str(&format!("ceiling_ms = {}\n", toml_f64(g.ceiling_ms)));
            out.push_str(&format!("tolerance = {}\n", toml_f64(g.tolerance)));
            out.push_str(&format!("trip_limit = {}\n", g.trip_limit));
        }

        if let Some(r) = &self.recovery {
            out.push_str("\n[recovery]\n");
            out.push_str(&format!("enabled = {}\n", r.enabled));
            out.push_str(&format!(
                "checkpoint_every_ms = {}\n",
                toml_f64(r.checkpoint_every_ms)
            ));
            out.push_str(&format!("max_retries = {}\n", r.max_retries));
        }

        if let Some(a) = &self.audit {
            out.push_str("\n[audit]\n");
            out.push_str(&format!("enabled = {}\n", a.enabled));
            out.push_str(&format!(
                "max_drop_rate_error = {}\n",
                toml_f64(a.max_drop_rate_error)
            ));
            out.push_str(&format!("max_ks = {}\n", toml_f64(a.max_ks)));
            out.push_str(&format!("max_w1_ratio = {}\n", toml_f64(a.max_w1_ratio)));
        }

        if let Some(m) = &self.model {
            out.push_str("\n[model]\n");
            if let Some(p) = &m.path {
                out.push_str(&format!("path = {p:?}\n"));
            }
            if let Some(c) = m.full_cluster {
                out.push_str(&format!("full_cluster = {c}\n"));
            }
            if m.train_fallback {
                out.push_str("train_fallback = true\n");
            }
        }

        let o = &self.oracle;
        let defaults = OracleSpec::default();
        if *o != defaults {
            out.push_str("\n[oracle]\n");
            out.push_str(&format!("cache = {}\n", o.cache));
            out.push_str(&format!("cache_cap = {}\n", o.cache_cap));
            out.push_str(&format!("full_cluster = {}\n", o.full_cluster));
        }

        if let Some(us) = self.outputs.sample_every_us {
            out.push_str("\n[outputs]\n");
            out.push_str(&format!("sample_every_us = {us}\n"));
        }
        out
    }
}
