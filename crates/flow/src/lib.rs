//! # elephant-flow — flow-level fluid simulation baseline
//!
//! The related-work comparison point (paper §2/§8): "when simulating large
//! networks, the predominant approach is to sacrifice granularity by
//! eschewing packet-level analysis entirely. Flow-level simulation is one
//! example of this approach … these simulators can provide insight into the
//! general behavior of the system, but miss out on many important network
//! effects, particularly in the presence of bursty traffic."
//!
//! This crate is that simulator: flows are fluids, links are pipes, and
//! bandwidth is allocated by **max-min fairness** via progressive filling —
//! the steady state an ideal congestion-control protocol would reach.
//! Rates are recomputed at every flow arrival and completion, and the
//! simulation jumps straight between those instants, so its cost is
//! `O(events × links)` instead of `O(packets)`.
//!
//! What it deliberately cannot express — queues, drops, retransmissions,
//! RTT dynamics, slow start, the §2.1 minimum-window pathology — is
//! exactly what the `baseline_flow` experiment quantifies against the
//! packet-level simulator.

#![warn(missing_docs)]

use std::collections::HashMap;

use elephant_des::{SimDuration, SimTime};
use elephant_net::{FlowId, FlowSpec, NodeId, NodeKind, PortId, Topology};

/// Result of one fluid simulation.
#[derive(Clone, Debug, Default)]
pub struct FluidResult {
    /// Completion record per finished flow.
    pub fct: Vec<FluidFct>,
    /// Rate recomputations performed (the simulator's unit of work).
    pub recomputes: u64,
    /// Flows still active (or never started) at the horizon.
    pub unfinished: usize,
}

/// One completed fluid flow.
#[derive(Clone, Copy, Debug)]
pub struct FluidFct {
    /// The flow.
    pub id: FlowId,
    /// Bytes transferred.
    pub bytes: u64,
    /// Start time.
    pub started: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

impl FluidFct {
    /// Flow completion time.
    pub fn fct(&self) -> SimDuration {
        self.completed.saturating_since(self.started)
    }
}

impl FluidResult {
    /// Mean FCT in seconds over completed flows.
    pub fn mean_fct_secs(&self) -> f64 {
        if self.fct.is_empty() {
            return 0.0;
        }
        self.fct.iter().map(|f| f.fct().as_secs_f64()).sum::<f64>() / self.fct.len() as f64
    }
}

/// A directed link: a node's output port.
type LinkKey = (NodeId, PortId);

struct ActiveFlow {
    id: FlowId,
    remaining: f64,
    bytes: u64,
    started: SimTime,
    links: Vec<usize>, // indices into the dense link table
    rate: f64,         // bytes per second
}

/// Runs the fluid model over `flows` on `topo` until `horizon`.
///
/// Flow paths are the same ECMP paths the packet simulator would use, so
/// both simulators contend on identical links. Panics if any flow touches
/// a stub cluster (fluid simulation needs the real fabric).
pub fn simulate(topo: &Topology, flows: &[FlowSpec], horizon: SimTime) -> FluidResult {
    // Dense link table: discover links lazily per path.
    let mut link_index: HashMap<LinkKey, usize> = HashMap::new();
    let mut link_cap: Vec<f64> = Vec::new(); // bytes/sec

    // Pre-resolve every flow's path.
    let mut arrivals: Vec<(SimTime, usize)> = Vec::with_capacity(flows.len());
    let mut paths: Vec<Vec<usize>> = Vec::with_capacity(flows.len());
    for (i, f) in flows.iter().enumerate() {
        assert_ne!(f.src, f.dst, "self-flow {:?}", f.id);
        let mut links = Vec::new();
        let mut at = topo.host_node(f.src);
        let dst_node = topo.host_node(f.dst);
        for _hop in 0..10 {
            if at == dst_node {
                break;
            }
            assert!(
                !matches!(topo.node(at).kind, NodeKind::Boundary { .. }),
                "fluid simulation cannot cross stub fabrics"
            );
            let port = topo.route(at, f.dst, f.id);
            let key = (at, port);
            let idx = *link_index.entry(key).or_insert_with(|| {
                let spec = topo.node(at).ports[port.idx()];
                link_cap.push(spec.link.rate_gbps * 1e9 / 8.0);
                link_cap.len() - 1
            });
            links.push(idx);
            at = topo.node(at).ports[port.idx()].peer_node;
        }
        assert_eq!(at, dst_node, "path resolution failed for {:?}", f.id);
        arrivals.push((f.start, i));
        paths.push(links);
    }
    arrivals.sort_by_key(|&(t, i)| (t, i));

    let mut result = FluidResult::default();
    let mut active: Vec<ActiveFlow> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut next_arrival = 0usize;

    loop {
        // Recompute max-min rates: we reach this point exactly after
        // membership changes.
        if !active.is_empty() {
            max_min_rates(&mut active, &link_cap);
            result.recomputes += 1;
        }

        // Earliest completion among active flows. Round the interval *up*
        // to a whole nanosecond: rounding down can produce a zero-length
        // step that drains no fluid and loops forever when a completion is
        // less than half a nanosecond away.
        let completion_t = active
            .iter()
            .map(|f| f.remaining / f.rate)
            .min_by(|a, b| a.partial_cmp(b).expect("rates are finite"))
            .map(|dt| {
                now + SimDuration::from_nanos((dt.max(0.0) * 1e9).ceil() as u64)
                    .max(SimDuration::from_nanos(1))
            });
        let arrival_t = arrivals.get(next_arrival).map(|&(t, _)| t);

        // Pick the next event.
        let event_t = match (arrival_t, completion_t) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (Some(a), Some(c)) => a.min(c),
        };
        if event_t > horizon {
            break;
        }

        // Drain fluid for the elapsed interval.
        let dt = event_t.saturating_since(now).as_secs_f64();
        for f in &mut active {
            f.remaining -= f.rate * dt;
        }
        now = event_t;

        // Apply all events at this instant: completions first (they free
        // capacity for simultaneous arrivals), then arrivals.
        let mut k = 0;
        while k < active.len() {
            if active[k].remaining <= 0.5 {
                let f = active.swap_remove(k);
                result.fct.push(FluidFct {
                    id: f.id,
                    bytes: f.bytes,
                    started: f.started,
                    completed: now,
                });
            } else {
                k += 1;
            }
        }
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 == now {
            let (_, i) = arrivals[next_arrival];
            next_arrival += 1;
            let f = &flows[i];
            active.push(ActiveFlow {
                id: f.id,
                remaining: f.bytes as f64,
                bytes: f.bytes,
                started: now,
                links: paths[i].clone(),
                rate: 0.0,
            });
        }
    }

    result.unfinished = active.len() + (arrivals.len() - next_arrival);
    result.fct.sort_by_key(|f| (f.completed, f.id.0));
    result
}

/// Computes the max-min fair allocation directly: `paths[k]` lists the
/// link indices flow `k` crosses, `caps[l]` is link `l`'s capacity in
/// bytes per second. Returns one rate per flow.
///
/// This is the allocator the simulator uses internally, exposed so its
/// fairness invariants can be property-tested against arbitrary
/// flow/link graphs.
pub fn max_min_allocation(paths: &[Vec<usize>], caps: &[f64]) -> Vec<f64> {
    let mut active: Vec<ActiveFlow> = paths
        .iter()
        .enumerate()
        .map(|(k, links)| {
            assert!(!links.is_empty(), "flow {k} crosses no link");
            assert!(
                links.iter().all(|&l| l < caps.len()),
                "flow {k} uses unknown link"
            );
            ActiveFlow {
                id: FlowId(k as u64),
                remaining: 1.0,
                bytes: 1,
                started: SimTime::ZERO,
                links: links.clone(),
                rate: 0.0,
            }
        })
        .collect();
    max_min_rates(&mut active, caps);
    active.iter().map(|f| f.rate).collect()
}

/// Progressive filling: all unfrozen flows' rates rise together; each link
/// saturates at level `(cap − frozen)/unfrozen`, and the flows crossing the
/// first link to saturate freeze at that level.
fn max_min_rates(active: &mut [ActiveFlow], link_cap: &[f64]) {
    let nl = link_cap.len();
    let mut frozen_sum = vec![0.0f64; nl];
    let mut unfrozen_count = vec![0u32; nl];
    for f in active.iter() {
        for &l in &f.links {
            unfrozen_count[l] += 1;
        }
    }
    let mut frozen = vec![false; active.len()];
    let mut remaining = active.len();

    while remaining > 0 {
        // The saturation level of each link still carrying unfrozen flows.
        let mut level = f64::INFINITY;
        for l in 0..nl {
            if unfrozen_count[l] > 0 {
                let s = (link_cap[l] - frozen_sum[l]) / unfrozen_count[l] as f64;
                if s < level {
                    level = s;
                }
            }
        }
        assert!(level.is_finite(), "unfrozen flow on no link");
        let level = level.max(0.0);

        // Freeze every unfrozen flow crossing a link saturating at
        // (numerically) this level.
        let mut froze_any = false;
        for (k, f) in active.iter_mut().enumerate() {
            if frozen[k] {
                continue;
            }
            let bottleneck = f.links.iter().any(|&l| {
                let s = (link_cap[l] - frozen_sum[l]) / unfrozen_count[l] as f64;
                s <= level * (1.0 + 1e-9) + 1e-9
            });
            if bottleneck {
                frozen[k] = true;
                froze_any = true;
                f.rate = level.max(1.0); // ≥1 byte/s so completions terminate
                remaining -= 1;
            }
        }
        assert!(froze_any, "progressive filling failed to make progress");
        // Rebuild the per-link accounting from scratch for the next round;
        // at these model sizes clarity beats the incremental update.
        for l in 0..nl {
            frozen_sum[l] = 0.0;
            unfrozen_count[l] = 0;
        }
        for (k, f) in active.iter().enumerate() {
            for &l in &f.links {
                if frozen[k] {
                    frozen_sum[l] += f.rate;
                } else {
                    unfrozen_count[l] += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephant_net::{ClosParams, HostAddr};

    fn topo() -> Topology {
        Topology::clos(ClosParams::paper_cluster(2))
    }

    fn flow(id: u64, src: HostAddr, dst: HostAddr, bytes: u64, start_us: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src,
            dst,
            bytes,
            start: SimTime::from_micros(start_us),
        }
    }

    #[test]
    fn lone_flow_gets_line_rate() {
        let t = topo();
        // 10 Gbps = 1.25 GB/s; 1.25 MB should take exactly 1 ms.
        let flows = [flow(
            1,
            HostAddr::new(0, 0, 0),
            HostAddr::new(1, 0, 0),
            1_250_000,
            0,
        )];
        let r = simulate(&t, &flows, SimTime::from_secs(1));
        assert_eq!(r.fct.len(), 1);
        let fct = r.fct[0].fct().as_secs_f64();
        assert!((fct - 1e-3).abs() < 1e-6, "fct {fct}");
        assert_eq!(r.unfinished, 0);
    }

    #[test]
    fn two_flows_share_a_bottleneck_fairly() {
        let t = topo();
        // Both flows target the same host: its ToR-to-host link is the
        // bottleneck; each gets 5 Gbps.
        let dst = HostAddr::new(1, 0, 0);
        let flows = [
            flow(1, HostAddr::new(0, 0, 0), dst, 1_250_000, 0),
            flow(2, HostAddr::new(0, 0, 1), dst, 1_250_000, 0),
        ];
        let r = simulate(&t, &flows, SimTime::from_secs(1));
        assert_eq!(r.fct.len(), 2);
        for f in &r.fct {
            let fct = f.fct().as_secs_f64();
            assert!((fct - 2e-3).abs() < 1e-5, "fair-share fct {fct}");
        }
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let t = topo();
        let dst = HostAddr::new(1, 0, 0);
        let flows = [
            flow(1, HostAddr::new(0, 0, 0), dst, 12_500_000, 0), // 10 ms alone
            flow(2, HostAddr::new(0, 0, 1), dst, 625_000, 0),    // 0.5 ms alone
        ];
        let r = simulate(&t, &flows, SimTime::from_secs(1));
        // Short flow at 5 Gb/s: 1 ms. Long flow: 1 ms at half rate
        // (0.625 MB done) then 11.875 MB at full rate = 9.5 ms; total 10.5 ms.
        let by_id: HashMap<u64, f64> = r
            .fct
            .iter()
            .map(|f| (f.id.0, f.fct().as_secs_f64()))
            .collect();
        assert!((by_id[&2] - 1e-3).abs() < 1e-5, "short {}", by_id[&2]);
        assert!((by_id[&1] - 10.5e-3).abs() < 1e-4, "long {}", by_id[&1]);
    }

    #[test]
    fn many_random_flows_all_complete() {
        let t = topo();
        let flows: Vec<FlowSpec> = (0..12)
            .map(|i| {
                flow(
                    i + 1,
                    HostAddr::new(0, (i % 2) as u16, (i % 4) as u16),
                    HostAddr::new(1, ((i + 1) % 2) as u16, ((i + 2) % 4) as u16),
                    1_000_000,
                    i * 13,
                )
            })
            .collect();
        let r = simulate(&t, &flows, SimTime::from_secs(10));
        assert_eq!(r.fct.len(), 12);
        assert_eq!(r.unfinished, 0);
        assert!(
            r.recomputes >= 12,
            "recomputes track membership changes, got {}",
            r.recomputes
        );
    }

    #[test]
    fn sub_nanosecond_completions_terminate() {
        // Regression: a flow whose remaining bytes drain in under half a
        // nanosecond used to produce a zero-length step and livelock.
        let t = topo();
        let flows: Vec<FlowSpec> = (0..6)
            .map(|i| {
                flow(
                    i + 1,
                    HostAddr::new(0, 0, (i % 4) as u16),
                    HostAddr::new(1, 0, ((i + 1) % 4) as u16),
                    1 + i, // 1..6 bytes: completions land at sub-ns offsets
                    0,
                )
            })
            .collect();
        let r = simulate(&t, &flows, SimTime::from_secs(1));
        assert_eq!(r.fct.len(), 6);
    }

    #[test]
    fn horizon_truncates() {
        let t = topo();
        let flows = [flow(
            1,
            HostAddr::new(0, 0, 0),
            HostAddr::new(1, 0, 0),
            u64::MAX / 4,
            0,
        )];
        let r = simulate(&t, &flows, SimTime::from_millis(1));
        assert_eq!(r.fct.len(), 0);
        assert_eq!(r.unfinished, 1);
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| {
                flow(
                    i + 1,
                    HostAddr::new((i % 2) as u16, (i % 2) as u16, (i % 4) as u16),
                    HostAddr::new(((i + 1) % 2) as u16, 0, ((i + 3) % 4) as u16),
                    100_000 + i * 999,
                    i * 7,
                )
            })
            .collect();
        let a = simulate(&t, &flows, SimTime::from_secs(5));
        let b = simulate(&t, &flows, SimTime::from_secs(5));
        assert_eq!(a.fct.len(), b.fct.len());
        for (x, y) in a.fct.iter().zip(b.fct.iter()) {
            assert_eq!(x.completed, y.completed);
        }
    }

    #[test]
    fn fluid_incast_completes_serenely() {
        // Structural statement of the baseline's blind spot: the result
        // type has no drop counter at all, and an incast that devastates
        // the packet simulator completes here with zero anomalies.
        let t = topo();
        let dst = HostAddr::new(0, 0, 0);
        let flows: Vec<FlowSpec> = (0..8)
            .map(|i| {
                flow(
                    i + 1,
                    HostAddr::new(1, (i % 2) as u16, ((i / 2) % 4) as u16),
                    dst,
                    500_000,
                    0,
                )
            })
            .collect();
        let r = simulate(&t, &flows, SimTime::from_secs(1));
        assert_eq!(r.fct.len(), 8, "fluid incast completes serenely");
    }
}
