//! Distribution-level accuracy metrics.
//!
//! The paper compares CDFs rather than per-packet values because "the
//! interaction of TCP congestion control and the imperfect model
//! predictions during run time will cause latencies to diverge … a
//! packet-to-packet comparison is not as meaningful" (§6.1). This module
//! quantifies what Figure 4 eyeballs: the Kolmogorov–Smirnov distance and
//! a table of per-quantile relative errors.

use elephant_des::EmpiricalCdf;
use elephant_net::BoundaryRecord;
use elephant_nn::MicroNet;

use crate::error::ElephantError;
use crate::features::LatencyCodec;
use crate::macro_model::{MacroConfig, MacroModel};
use crate::train::build_samples;

/// One quantile's comparison.
#[derive(Clone, Copy, Debug)]
pub struct PercentileRow {
    /// The quantile in `[0, 1]`.
    pub q: f64,
    /// Ground-truth value at `q`.
    pub truth: f64,
    /// Approximate-simulation value at `q`.
    pub approx: f64,
}

impl PercentileRow {
    /// Signed relative error `(approx − truth)/truth`.
    pub fn rel_error(&self) -> f64 {
        if self.truth == 0.0 {
            if self.approx == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.approx - self.truth) / self.truth
        }
    }
}

/// Full distribution comparison.
#[derive(Clone, Debug)]
pub struct CdfComparison {
    /// Kolmogorov–Smirnov distance (0 identical, 1 disjoint).
    pub ks: f64,
    /// Quantile table at the standard reporting points.
    pub rows: Vec<PercentileRow>,
    /// Ground-truth sample count.
    pub truth_samples: usize,
    /// Approximate sample count.
    pub approx_samples: usize,
}

/// The quantiles every comparison reports.
pub const REPORT_QUANTILES: [f64; 7] = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999];

/// Compares two empirical distributions (e.g. the Figure-4 RTT CDFs).
pub fn compare_cdfs(truth: &EmpiricalCdf, approx: &EmpiricalCdf) -> CdfComparison {
    let rows = REPORT_QUANTILES
        .iter()
        .map(|&q| PercentileRow {
            q,
            truth: truth.quantile(q),
            approx: approx.quantile(q),
        })
        .collect();
    CdfComparison {
        ks: truth.ks_distance(approx),
        rows,
        truth_samples: truth.len(),
        approx_samples: approx.len(),
    }
}

impl CdfComparison {
    /// The median-quantile relative error magnitude — a one-number summary
    /// for ablation sweeps.
    pub fn median_abs_rel_error(&self) -> f64 {
        let mut errs: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.rel_error().abs())
            .filter(|e| e.is_finite())
            .collect();
        if errs.is_empty() {
            return f64::INFINITY;
        }
        errs.sort_by(f64::total_cmp);
        errs[errs.len() / 2]
    }
}

/// Confusion matrix of the deployed (auto-regressive) macro classifier
/// against the ground-truth-driven one, over the same boundary stream.
///
/// At training time the macro model observes measured latencies and drops;
/// at simulation time it observes the micro model's *predictions*. This
/// diagnostic quantifies how far that auto-regression drifts: it replays
/// `records` twice — once feeding ground truth, once feeding the micro
/// models' teacher-forced predictions — and counts state agreements.
/// `confusion[truth][predicted]` in [`crate::MacroState`] index order.
///
/// Errors with [`ElephantError::StreamMisaligned`] if the feature-sample
/// streams built from `records` run out before the records do — which can
/// only happen when the two inputs were produced from different captures.
pub fn macro_confusion(
    records: &[BoundaryRecord],
    up: &MicroNet,
    down: &MicroNet,
    macro_cfg: MacroConfig,
    codec: LatencyCodec,
    params: &elephant_net::ClosParams,
) -> Result<[[u64; 4]; 4], ElephantError> {
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| records[i].t_in);

    // Features are teacher-forced from ground truth (same stream both
    // replays), so the only divergence measured is the macro feedback loop.
    let (up_samples, down_samples) = build_samples(records, params, macro_cfg, codec);
    let mut up_iter = up_samples.iter();
    let mut down_iter = down_samples.iter();
    let mut up_state = up.init_state();
    let mut down_state = down.init_state();

    let mut truth_macro = MacroModel::new(macro_cfg);
    let mut pred_macro = MacroModel::new(macro_cfg);
    let mut confusion = [[0u64; 4]; 4];

    for &i in &order {
        let r = &records[i];
        let t = truth_macro.state();
        let p = pred_macro.state();
        confusion[t.index()][p.index()] += 1;

        // Advance the truth-fed classifier on the measurement…
        truth_macro.observe(
            if r.dropped {
                None
            } else {
                Some(r.latency.as_secs_f64())
            },
            r.dropped,
        );
        // …and the deployed-style classifier on the model's prediction.
        let (sample, net, state) = match r.direction {
            elephant_net::Direction::Up => (
                up_iter
                    .next()
                    .ok_or_else(|| ElephantError::StreamMisaligned {
                        detail: "up-direction sample stream shorter than record stream".into(),
                    })?,
                up,
                &mut up_state,
            ),
            elephant_net::Direction::Down => (
                down_iter
                    .next()
                    .ok_or_else(|| ElephantError::StreamMisaligned {
                        detail: "down-direction sample stream shorter than record stream".into(),
                    })?,
                down,
                &mut down_state,
            ),
        };
        let pred = net.predict(&sample.features, state);
        if pred.drop_prob >= 0.5 {
            pred_macro.observe(None, true);
        } else {
            let lat = codec.decode(pred.latency);
            pred_macro.observe(Some(lat.as_secs_f64()), false);
        }
    }
    Ok(confusion)
}

/// Agreement rate of a [`macro_confusion`] matrix (trace over total).
pub fn macro_agreement(confusion: &[[u64; 4]; 4]) -> f64 {
    let total: u64 = confusion.iter().flatten().sum();
    if total == 0 {
        return 1.0;
    }
    let agree: u64 = (0..4).map(|i| confusion[i][i]).sum();
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephant_des::{SimDuration, SimTime};
    use elephant_net::{ClosParams, Direction, FabricPath, FlowId, HostAddr};
    use elephant_nn::{MicroNet, MicroNetConfig, RnnKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> MicroNet {
        let cfg = MicroNetConfig {
            input: crate::features::FEATURE_DIM,
            hidden: 4,
            layers: 1,
            alpha: 0.5,
            rnn: RnnKind::Lstm,
        };
        MicroNet::new(cfg, &mut SmallRng::seed_from_u64(seed))
    }

    fn records(n: usize) -> Vec<elephant_net::BoundaryRecord> {
        (0..n)
            .map(|i| elephant_net::BoundaryRecord {
                t_in: SimTime::from_micros(i as u64 * 7),
                direction: if i % 2 == 0 {
                    Direction::Up
                } else {
                    Direction::Down
                },
                flow: FlowId(i as u64),
                src: HostAddr::new(1, 0, (i % 4) as u16),
                dst: HostAddr::new(0, 0, ((i + 1) % 4) as u16),
                size: 1500,
                path: FabricPath {
                    src_tor: 0,
                    src_agg: 0,
                    core: Some(0),
                    dst_agg: 0,
                    dst_tor: 0,
                },
                dropped: false,
                latency: SimDuration::from_micros(5 + (i % 3) as u64),
            })
            .collect()
    }

    #[test]
    fn macro_confusion_conserves_and_bounds() {
        let params = ClosParams::paper_cluster(2);
        let recs = records(200);
        let up = tiny_net(1);
        let down = tiny_net(2);
        let c = macro_confusion(
            &recs,
            &up,
            &down,
            MacroConfig::default(),
            LatencyCodec::default(),
            &params,
        )
        .expect("aligned streams");
        let total: u64 = c.iter().flatten().sum();
        assert_eq!(total, 200, "one cell per record");
        let a = macro_agreement(&c);
        assert!((0.0..=1.0).contains(&a));
        // Deterministic.
        let c2 = macro_confusion(
            &recs,
            &up,
            &down,
            MacroConfig::default(),
            LatencyCodec::default(),
            &params,
        )
        .expect("aligned streams");
        assert_eq!(c, c2);
    }

    #[test]
    fn macro_agreement_of_empty_is_one() {
        assert_eq!(macro_agreement(&[[0; 4]; 4]), 1.0);
        let mut m = [[0u64; 4]; 4];
        m[0][0] = 3;
        m[1][2] = 1;
        assert!((macro_agreement(&m) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_compare_clean() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-5).collect();
        let a = EmpiricalCdf::from_samples(&samples);
        let c = compare_cdfs(&a, &a);
        assert_eq!(c.ks, 0.0);
        for r in &c.rows {
            assert_eq!(r.truth, r.approx);
            assert_eq!(r.rel_error(), 0.0);
        }
        assert_eq!(c.median_abs_rel_error(), 0.0);
    }

    #[test]
    fn shifted_distribution_shows_signed_error() {
        let truth: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let approx: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.8).collect();
        let c = compare_cdfs(
            &EmpiricalCdf::from_samples(&truth),
            &EmpiricalCdf::from_samples(&approx),
        );
        assert!(c.ks > 0.15, "ks {}", c.ks);
        for r in &c.rows {
            assert!(
                (r.rel_error() + 0.2).abs() < 0.01,
                "underestimates by 20%: {:?}",
                r
            );
        }
        assert!((c.median_abs_rel_error() - 0.2).abs() < 0.01);
    }

    #[test]
    fn nan_quantiles_do_not_panic_the_summary() {
        // A degenerate comparison whose quantiles contain NaN must not
        // panic the median (the old partial_cmp comparator aborted here);
        // NaN rows are non-finite and thus excluded from the summary.
        let rows = vec![
            PercentileRow {
                q: 0.5,
                truth: f64::NAN,
                approx: 1.0,
            },
            PercentileRow {
                q: 0.9,
                truth: 2.0,
                approx: f64::NAN,
            },
            PercentileRow {
                q: 0.99,
                truth: 10.0,
                approx: 11.0,
            },
        ];
        let c = CdfComparison {
            ks: 0.0,
            rows,
            truth_samples: 3,
            approx_samples: 3,
        };
        assert!((c.median_abs_rel_error() - 0.1).abs() < 1e-12);
        let all_nan = CdfComparison {
            ks: 0.0,
            rows: vec![PercentileRow {
                q: 0.5,
                truth: f64::NAN,
                approx: f64::NAN,
            }],
            truth_samples: 1,
            approx_samples: 1,
        };
        assert!(all_nan.median_abs_rel_error().is_infinite());
    }

    #[test]
    fn zero_truth_quantile_handled() {
        let r = PercentileRow {
            q: 0.5,
            truth: 0.0,
            approx: 1.0,
        };
        assert!(r.rel_error().is_infinite());
        let r0 = PercentileRow {
            q: 0.5,
            truth: 0.0,
            approx: 0.0,
        };
        assert_eq!(r0.rel_error(), 0.0);
    }
}
