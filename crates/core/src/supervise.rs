//! Supervised runs: checkpoint-backed retry with a deterministic
//! degradation ladder.
//!
//! The experiment drivers in [`crate::experiment`] throw the whole run
//! away on the first [`PdesError`]; at hour-long, 100k-host scale that is
//! untenable. A supervised run instead takes a checkpoint
//! ([`elephant_des::PdesCheckpoint`] / [`elephant_des::SimCheckpoint`])
//! every [`RecoveryPolicy::checkpoint_every`] of simulated time — at an
//! epoch barrier under PDES, between `run_until` chunks sequentially —
//! and reacts to failures by climbing down a *ladder*:
//!
//! 1. **Retry**: restore the latest checkpoint and re-run the failed
//!    chunk, up to [`RecoveryPolicy::max_retries`] times per rung.
//! 2. **Adaptive → fixed epochs**: restore and switch the epoch planner
//!    to [`EpochMode::Fixed`] — the conservative planner with no frontier
//!    jumping — then retry the chunk with a fresh retry budget.
//! 3. **PDES → sequential**: abandon parallel execution and re-run the
//!    whole scenario on the sequential engine from time zero. Remote
//!    delivery uses plan-independent `(time, sender, seq)` keys, so a
//!    healthy sequential run is bit-identical to the PDES run it
//!    replaces — degrading preserves the fingerprint. Exchange-layer
//!    fault injection does not exist sequentially, so scripted stalls
//!    (and drop/dup fault plans) cannot follow the run down this rung.
//!
//! Every transition is observable: a `recovery/*` counter and a
//! [`elephant_obs::PID_RECOVERY`] timeline instant per checkpoint,
//! restore, and degradation. The [`RecoveryLog`] records the same
//! transitions as plain data, so tests can assert that identical failure
//! sequences produce identical ladders.
//!
//! Determinism: restoring a checkpoint rewinds *everything that shapes
//! the simulation* (FEL, per-flow TCP state, fault-plan RNG position,
//! epoch counters), so a run that failed and recovered produces the same
//! fingerprint as one that never failed. Global observability (metrics
//! registry, timeline) is deliberately outside checkpoint scope: counters
//! are monotonic telemetry and keep the failed attempts' contributions.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::ElephantError;
use crate::experiment::{build_full_partitions, build_hybrid_partitions};

use elephant_des::{
    EpochMode, FaultPlan, PdesConfig, PdesError, PdesReport, PdesRunner, SimDuration, SimTime,
    Simulator, StopReason,
};
use elephant_net::{
    schedule_flows, ClosParams, ClusterOracle, FlowSpec, NetConfig, Network, RttScope, Topology,
};
use elephant_obs::{TraceRecord, PID_RECOVERY};

/// Default checkpoint interval: 10 simulated milliseconds.
pub const DEFAULT_CHECKPOINT_EVERY: SimDuration = SimDuration::from_millis(10);
/// Default retry budget per ladder rung.
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Knobs for a supervised run.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Simulated time between checkpoints (also the granularity of lost
    /// work on a restore). Clamped to at least one nanosecond.
    pub checkpoint_every: SimDuration,
    /// Restores attempted per ladder rung before degrading to the next.
    pub max_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            max_retries: DEFAULT_MAX_RETRIES,
        }
    }
}

impl RecoveryPolicy {
    fn interval(&self) -> SimDuration {
        self.checkpoint_every.max(SimDuration::from_nanos(1))
    }
}

/// A rung of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// PDES with the adaptive epoch planner.
    Adaptive,
    /// PDES with fixed-increment epochs.
    Fixed,
    /// The sequential engine (terminal rung).
    Sequential,
}

impl Rung {
    /// Short label for metrics and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Rung::Adaptive => "pdes-adaptive",
            Rung::Fixed => "pdes-fixed",
            Rung::Sequential => "sequential",
        }
    }
}

/// One ladder transition, as plain comparable data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A checkpoint restore followed by a retry on the same rung.
    Restored {
        /// Simulated time of the failure that triggered the restore.
        at: SimTime,
        /// The rung the retry runs on.
        rung: Rung,
        /// Failure family ("stalled", "corrupt", "panicked").
        cause: &'static str,
    },
    /// A step down the ladder after the retry budget ran out.
    Degraded {
        /// Simulated time of the exhausting failure.
        at: SimTime,
        /// The abandoned rung.
        from: Rung,
        /// The rung the run continues on.
        to: Rung,
    },
}

/// What the supervisor did, as plain data: counters plus the ordered
/// transition list. Two supervised runs over identical failure sequences
/// produce equal logs — the determinism contract tests assert.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Checkpoints captured (including the time-zero baseline).
    pub checkpoints_taken: u64,
    /// Checkpoint restores performed (retries and degradations alike).
    pub restores: u64,
    /// Ladder steps taken.
    pub degradations: u64,
    /// Every restore and degradation, in order.
    pub transitions: Vec<RecoveryEvent>,
    /// The rung the run finished on.
    pub final_rung: Rung,
}

impl RecoveryLog {
    fn new(rung: Rung) -> Self {
        RecoveryLog {
            checkpoints_taken: 0,
            restores: 0,
            degradations: 0,
            transitions: Vec::new(),
            final_rung: rung,
        }
    }

    /// One-line summary for run reports (greppable by CI).
    pub fn summary(&self) -> String {
        format!(
            "recovery: checkpoints={} restores={} degradations={} final_rung={}",
            self.checkpoints_taken,
            self.restores,
            self.degradations,
            self.final_rung.label()
        )
    }

    fn note_checkpoint(&mut self, at: SimTime) {
        self.checkpoints_taken += 1;
        if elephant_obs::enabled() {
            elephant_obs::counter("recovery/checkpoints", "").inc();
        }
        instant("checkpoint", at);
    }

    fn note_restore(&mut self, at: SimTime, rung: Rung, cause: &'static str) {
        self.restores += 1;
        self.transitions
            .push(RecoveryEvent::Restored { at, rung, cause });
        if elephant_obs::enabled() {
            elephant_obs::counter("recovery/restores", cause).inc();
        }
        instant("restore", at);
    }

    fn note_degrade(&mut self, at: SimTime, from: Rung, to: Rung) {
        self.degradations += 1;
        self.transitions
            .push(RecoveryEvent::Degraded { at, from, to });
        self.final_rung = to;
        if elephant_obs::enabled() {
            elephant_obs::counter(
                "recovery/degradations",
                format!("{}->{}", from.label(), to.label()),
            )
            .inc();
        }
        instant("degrade", at);
    }

    /// Folds a nested run's log (the sequential rung re-runs under its own
    /// supervisor) into this one.
    fn absorb(&mut self, inner: RecoveryLog) {
        self.checkpoints_taken += inner.checkpoints_taken;
        self.restores += inner.restores;
        self.degradations += inner.degradations;
        self.transitions.extend(inner.transitions);
        self.final_rung = inner.final_rung;
    }
}

fn instant(name: &'static str, at: SimTime) {
    if elephant_obs::timeline_enabled() {
        elephant_obs::timeline().record(TraceRecord::instant(
            PID_RECOVERY,
            0,
            name,
            at.as_secs_f64() * 1e6,
        ));
    }
}

/// A completed supervised run.
pub struct SupervisedRun {
    /// Final network state: one per partition under PDES, a single entry
    /// after sequential completion (initial run or terminal-rung restart).
    pub nets: Vec<Network>,
    /// Events executed on the *successful* path (failed attempts between a
    /// checkpoint and their restore are excluded, exactly as if the
    /// failure never happened).
    pub events: u64,
    /// Wall-clock duration including all failed attempts and restores.
    pub wall: Duration,
    /// Merged kernel report; `None` once the run degraded to (or started
    /// on) the sequential engine.
    pub report: Option<PdesReport>,
    /// What the supervisor did.
    pub log: RecoveryLog,
}

fn cause_label(e: &PdesError) -> &'static str {
    match e {
        PdesError::Stalled { .. } => "stalled",
        PdesError::Corrupt { .. } => "corrupt",
        PdesError::Panicked { .. } => "panicked",
    }
}

fn failure_time(e: &PdesError) -> SimTime {
    match e {
        PdesError::Stalled { at, .. }
        | PdesError::Corrupt { at, .. }
        | PdesError::Panicked { at, .. } => *at,
    }
}

/// Runs the full-fidelity simulator under PDES with checkpointing and the
/// retry ladder. Constructed identically to
/// [`crate::run_pdes_full`] (same partitions, lookahead, flow seeding), so
/// a supervised run that never fails produces the same fingerprint as an
/// unsupervised one.
#[allow(clippy::too_many_arguments)] // an experiment spec, not an API surface
pub fn run_pdes_full_supervised(
    params: ClosParams,
    flows: &[FlowSpec],
    horizon: SimTime,
    partitions: usize,
    machines: usize,
    envelope_bytes: usize,
    mode: EpochMode,
    faults: Option<FaultPlan>,
    policy: &RecoveryPolicy,
) -> Result<SupervisedRun, ElephantError> {
    let _span = elephant_obs::span("pdes_supervised");
    let t0 = Instant::now();
    let (parts, lookahead) = build_full_partitions(params, flows, partitions);
    let mut pdes_cfg = PdesConfig::round_robin(partitions, machines, lookahead, envelope_bytes)
        .with_epoch_mode(mode);
    if let Some(plan) = faults.clone() {
        pdes_cfg = pdes_cfg.with_faults(plan);
    }
    let mut runner = PdesRunner::new(parts, pdes_cfg);

    let mut rung = match mode {
        EpochMode::Adaptive => Rung::Adaptive,
        EpochMode::Fixed => Rung::Fixed,
    };
    let mut log = RecoveryLog::new(rung);
    let mut checkpoint = runner.checkpoint();
    log.note_checkpoint(SimTime::ZERO);

    let interval = policy.interval();
    let mut cursor = SimTime::ZERO;
    let mut retries = 0u32;
    let mut total: Option<PdesReport> = None;

    loop {
        let next = (cursor + interval).min(horizon);
        match runner.run_until(next) {
            Ok(chunk) => {
                match &mut total {
                    None => total = Some(chunk),
                    Some(t) => t.merge(&chunk),
                }
                cursor = next;
                if cursor >= horizon {
                    break;
                }
                checkpoint = runner.checkpoint();
                log.note_checkpoint(cursor);
            }
            Err(e) => {
                let at = failure_time(&e);
                if retries < policy.max_retries {
                    retries += 1;
                    runner.restore(&checkpoint);
                    log.note_restore(at, rung, cause_label(&e));
                    // `total` covers exactly [0, last checkpoint]; the
                    // failed attempt's partial report is discarded along
                    // with its state.
                } else {
                    match rung {
                        Rung::Adaptive => {
                            runner.restore(&checkpoint);
                            runner.set_epoch_mode(EpochMode::Fixed);
                            log.note_degrade(at, Rung::Adaptive, Rung::Fixed);
                            rung = Rung::Fixed;
                            retries = 0;
                        }
                        Rung::Fixed => {
                            // Terminal rung: restart sequentially from
                            // time zero with the same construction the
                            // PDES partitions had (fingerprint-preserving
                            // for fault-free dynamics).
                            log.note_degrade(at, Rung::Fixed, Rung::Sequential);
                            let cfg = NetConfig {
                                rtt_scope: RttScope::None,
                                ..Default::default()
                            };
                            let mut inner =
                                run_sequential_supervised(params, cfg, flows, horizon, policy)?;
                            log.absorb(std::mem::replace(
                                &mut inner.log,
                                RecoveryLog::new(Rung::Sequential),
                            ));
                            return Ok(SupervisedRun {
                                nets: inner.nets,
                                events: inner.events,
                                wall: t0.elapsed(),
                                report: None,
                                log,
                            });
                        }
                        Rung::Sequential => unreachable!("sequential runs have no PDES errors"),
                    }
                }
            }
        }
    }

    log.final_rung = rung;
    let report = total.expect("supervised run executes at least one chunk");
    let events = report.events_executed;
    let nets = runner
        .into_partitions()
        .into_iter()
        .map(|p| p.into_world().net)
        .collect();
    Ok(SupervisedRun {
        nets,
        events,
        wall: t0.elapsed(),
        report: Some(report),
        log,
    })
}

/// Runs the hybrid simulator under PDES with checkpointing and the retry
/// ladder. Constructed identically to [`crate::run_pdes_hybrid`] (same
/// cluster partitioning, lookahead, per-partition oracles), so a
/// supervised hybrid run that never fails produces the same fingerprint
/// as an unsupervised one. The terminal rung restarts the whole scenario
/// on the sequential hybrid engine with the oracle `sequential_oracle`
/// builds (per-partition oracles use partition-salted seeds; the
/// sequential engine needs the unsalted one).
#[allow(clippy::too_many_arguments)] // an experiment spec, not an API surface
pub fn run_pdes_hybrid_supervised(
    params: ClosParams,
    full_cluster: u16,
    mut oracle_factory: impl FnMut(usize) -> Box<dyn ClusterOracle + Send>,
    sequential_oracle: impl FnOnce() -> Box<dyn ClusterOracle + Send>,
    flows: &[FlowSpec],
    horizon: SimTime,
    machines: usize,
    envelope_bytes: usize,
    mode: EpochMode,
    faults: Option<FaultPlan>,
    policy: &RecoveryPolicy,
) -> Result<SupervisedRun, ElephantError> {
    let _span = elephant_obs::span("pdes_hybrid_supervised");
    let t0 = Instant::now();
    let (parts, lookahead, partitions) =
        build_hybrid_partitions(params, full_cluster, &mut oracle_factory, flows);
    let mut pdes_cfg = PdesConfig::round_robin(partitions, machines, lookahead, envelope_bytes)
        .with_epoch_mode(mode);
    if let Some(plan) = faults.clone() {
        pdes_cfg = pdes_cfg.with_faults(plan);
    }
    let mut runner = PdesRunner::new(parts, pdes_cfg);

    let mut rung = match mode {
        EpochMode::Adaptive => Rung::Adaptive,
        EpochMode::Fixed => Rung::Fixed,
    };
    let mut log = RecoveryLog::new(rung);
    let mut checkpoint = runner.checkpoint();
    log.note_checkpoint(SimTime::ZERO);

    let interval = policy.interval();
    let mut cursor = SimTime::ZERO;
    let mut retries = 0u32;
    let mut total: Option<PdesReport> = None;

    loop {
        let next = (cursor + interval).min(horizon);
        match runner.run_until(next) {
            Ok(chunk) => {
                match &mut total {
                    None => total = Some(chunk),
                    Some(t) => t.merge(&chunk),
                }
                cursor = next;
                if cursor >= horizon {
                    break;
                }
                checkpoint = runner.checkpoint();
                log.note_checkpoint(cursor);
            }
            Err(e) => {
                let at = failure_time(&e);
                if retries < policy.max_retries {
                    retries += 1;
                    runner.restore(&checkpoint);
                    log.note_restore(at, rung, cause_label(&e));
                } else {
                    match rung {
                        Rung::Adaptive => {
                            runner.restore(&checkpoint);
                            runner.set_epoch_mode(EpochMode::Fixed);
                            log.note_degrade(at, Rung::Adaptive, Rung::Fixed);
                            rung = Rung::Fixed;
                            retries = 0;
                        }
                        Rung::Fixed => {
                            // Terminal rung: restart on the sequential
                            // hybrid engine from time zero with a fresh
                            // oracle (fingerprint-preserving for
                            // fault-free dynamics).
                            log.note_degrade(at, Rung::Fixed, Rung::Sequential);
                            let mut inner = run_hybrid_supervised(
                                params,
                                full_cluster,
                                sequential_oracle(),
                                NetConfig::default(),
                                flows,
                                horizon,
                                policy,
                            )?;
                            log.absorb(std::mem::replace(
                                &mut inner.log,
                                RecoveryLog::new(Rung::Sequential),
                            ));
                            return Ok(SupervisedRun {
                                nets: inner.nets,
                                events: inner.events,
                                wall: t0.elapsed(),
                                report: None,
                                log,
                            });
                        }
                        Rung::Sequential => unreachable!("sequential runs have no PDES errors"),
                    }
                }
            }
        }
    }

    log.final_rung = rung;
    let report = total.expect("supervised run executes at least one chunk");
    let events = report.events_executed;
    let nets = runner
        .into_partitions()
        .into_iter()
        .map(|p| p.into_world().net)
        .collect();
    Ok(SupervisedRun {
        nets,
        events,
        wall: t0.elapsed(),
        report: Some(report),
        log,
    })
}

/// Runs the sequential full-fidelity simulator with checkpointing. The
/// sequential engine has no barrier to stall and no exchange to corrupt;
/// the failures it survives are model panics, caught at the chunk
/// boundary, rolled back to the latest checkpoint, and retried up to
/// [`RecoveryPolicy::max_retries`] times. A failure that persists past
/// the budget is [`ElephantError::RecoveryExhausted`] — there is no rung
/// below sequential.
pub fn run_sequential_supervised(
    params: ClosParams,
    cfg: NetConfig,
    flows: &[FlowSpec],
    horizon: SimTime,
    policy: &RecoveryPolicy,
) -> Result<SupervisedRun, ElephantError> {
    let _span = elephant_obs::span("sequential_supervised");
    let t0 = Instant::now();
    let topo = Arc::new(Topology::clos(params));
    let mut sim = Simulator::new(Network::new(topo, cfg));
    schedule_flows(&mut sim, flows);
    supervise_simulator(sim, horizon, policy, t0)
}

/// Runs the sequential *hybrid* simulator with checkpointing: constructed
/// exactly like [`crate::run_hybrid`] (stub topology, forced RTT scope,
/// oracle installed before the first event), so a supervised hybrid run
/// that never fails produces the same fingerprint as an unsupervised one.
/// Checkpoints deep-copy the installed oracle stack via
/// `ClusterOracle::clone_box`, so guard state and cached verdicts rewind
/// with the network.
pub fn run_hybrid_supervised(
    params: ClosParams,
    full_cluster: u16,
    oracle: Box<dyn ClusterOracle + Send>,
    mut cfg: NetConfig,
    flows: &[FlowSpec],
    horizon: SimTime,
    policy: &RecoveryPolicy,
) -> Result<SupervisedRun, ElephantError> {
    assert!(
        params.clusters >= 2,
        "hybrid simulation needs clusters to approximate"
    );
    let _span = elephant_obs::span("hybrid_supervised");
    let t0 = Instant::now();
    let stubs: Vec<u16> = (0..params.clusters)
        .filter(|&c| c != full_cluster)
        .collect();
    cfg.capture_cluster = None;
    cfg.rtt_scope = RttScope::Cluster(full_cluster);
    let topo = Arc::new(Topology::clos_with_stubs(params, &stubs));
    let mut net = Network::new(topo, cfg);
    net.set_oracle(oracle);
    let mut sim = Simulator::new(net);
    schedule_flows(&mut sim, flows);
    supervise_simulator(sim, horizon, policy, t0)
}

/// The shared sequential supervision loop: checkpoint every interval,
/// catch model panics at chunk boundaries, restore and retry.
fn supervise_simulator(
    mut sim: Simulator<Network>,
    horizon: SimTime,
    policy: &RecoveryPolicy,
    t0: Instant,
) -> Result<SupervisedRun, ElephantError> {
    let mut log = RecoveryLog::new(Rung::Sequential);
    let mut checkpoint = sim.checkpoint();
    log.note_checkpoint(SimTime::ZERO);

    let interval = policy.interval();
    let mut cursor = SimTime::ZERO;
    let mut retries = 0u32;

    loop {
        let next = (cursor + interval).min(horizon);
        match catch_unwind(AssertUnwindSafe(|| sim.run_until(next))) {
            Ok(stop) => {
                cursor = next;
                if cursor >= horizon || stop == StopReason::Exhausted {
                    break;
                }
                checkpoint = sim.checkpoint();
                log.note_checkpoint(cursor);
            }
            Err(payload) => {
                if retries >= policy.max_retries {
                    return Err(ElephantError::RecoveryExhausted {
                        detail: format!(
                            "sequential model panic persisted through {} retries \
                             of the chunk ending at {next}: {}",
                            policy.max_retries,
                            panic_message(payload.as_ref()),
                        ),
                    });
                }
                retries += 1;
                sim.restore(&checkpoint);
                log.note_restore(cursor, Rung::Sequential, "panicked");
            }
        }
    }

    let events = sim.scheduler().executed_total();
    Ok(SupervisedRun {
        nets: vec![sim.into_world()],
        events,
        wall: t0.elapsed(),
        report: None,
        log,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephant_trace::{generate, WorkloadConfig};

    fn drill_flows(params: &ClosParams, horizon: SimTime) -> Vec<FlowSpec> {
        generate(params, &WorkloadConfig::paper_default(horizon, 17))
    }

    #[test]
    fn supervised_without_failures_matches_unsupervised() {
        let params = ClosParams::paper_cluster(2);
        let horizon = SimTime::from_millis(8);
        let flows = drill_flows(&params, horizon);

        let clean = crate::run_pdes_full(
            params,
            &flows,
            horizon,
            4,
            2,
            0,
            EpochMode::Adaptive,
            None,
            None,
        )
        .expect("clean run");
        let policy = RecoveryPolicy {
            checkpoint_every: SimDuration::from_millis(2),
            max_retries: 2,
        };
        let sup = run_pdes_full_supervised(
            params,
            &flows,
            horizon,
            4,
            2,
            0,
            EpochMode::Adaptive,
            None,
            &policy,
        )
        .expect("supervised run");
        assert_eq!(sup.log.restores, 0);
        assert_eq!(sup.log.degradations, 0);
        assert!(sup.log.checkpoints_taken >= 2, "{}", sup.log.summary());
        assert_eq!(sup.events, clean.events());
        let clean_completed: u64 = clean.nets.iter().map(|n| n.stats.flows_completed).sum();
        let sup_completed: u64 = sup.nets.iter().map(|n| n.stats.flows_completed).sum();
        assert_eq!(sup_completed, clean_completed);
    }

    #[test]
    fn scripted_stall_restores_and_degrades_deterministically() {
        let params = ClosParams::paper_cluster(2);
        let horizon = SimTime::from_millis(8);
        let flows = drill_flows(&params, horizon);
        // A stall that re-arms every restore (epoch progress is part of
        // the checkpoint, so the stall re-fires deterministically): the
        // ladder must walk adaptive → fixed → sequential and complete.
        let faults = FaultPlan {
            stall_partition: Some((1, 8)),
            ..Default::default()
        };
        let policy = RecoveryPolicy {
            checkpoint_every: SimDuration::from_millis(2),
            max_retries: 1,
        };
        let run_once = || {
            run_pdes_full_supervised(
                params,
                &flows,
                horizon,
                4,
                2,
                0,
                EpochMode::Adaptive,
                Some(faults.clone()),
                &policy,
            )
            .expect("ladder bottoms out sequentially")
        };
        let a = run_once();
        assert_eq!(a.log.final_rung, Rung::Sequential);
        assert!(a.log.restores >= 2, "{}", a.log.summary());
        assert_eq!(a.log.degradations, 2, "{}", a.log.summary());
        assert!(
            a.report.is_none(),
            "sequential completion has no PDES report"
        );

        // Identical failure sequence → identical ladder.
        let b = run_once();
        assert_eq!(a.log, b.log);

        // The degraded run's outcome matches a clean sequential run.
        let cfg = NetConfig {
            rtt_scope: RttScope::None,
            ..Default::default()
        };
        let clean = run_sequential_supervised(params, cfg, &flows, horizon, &policy)
            .expect("clean sequential");
        assert_eq!(
            a.nets[0].stats.flows_completed,
            clean.nets[0].stats.flows_completed
        );
        assert_eq!(
            a.nets[0].stats.delivered_bytes,
            clean.nets[0].stats.delivered_bytes
        );
    }
}
