//! The macro model: a fast auto-regressive classifier of congestion regime.
//!
//! Paper §4.1: traffic exhibits multi-scale structure — second-scale
//! regime shifts as queues fill and drain, microsecond-scale jitter as
//! flows come and go — so the system layers a cheap "macro" classifier
//! over the per-packet "micro" LSTM. Four regimes:
//!
//! 1. **Minimal** congestion — queues mostly empty, minimal queueing delay;
//! 2. **Increasing** congestion — paths congesting, latency not yet peaked;
//! 3. **High** congestion — significant drops from full queues;
//! 4. **Decreasing** congestion — queues draining.
//!
//! Classification follows the paper's auto-regressive rules: high drop
//! rate ⇒ High; low latency ⇒ Minimal; otherwise Increasing or Decreasing
//! according to whether the latency trend is rising or falling. (The
//! paper's prose maps "drops relatively high" to state (4); read against
//! its own state definitions that is a typo for state (3), and we
//! implement the definition.)
//!
//! The classifier is fed *observations* — at training time the ground
//! truth from boundary capture, at simulation time the oracle's own
//! predictions, which is what makes it auto-regressive.

use elephant_des::Ewma;
use serde::{Deserialize, Serialize};

/// The four congestion regimes of §4.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MacroState {
    /// Queues mostly empty.
    Minimal,
    /// Latency climbing, not yet peaked.
    Increasing,
    /// Queues full; significant drops.
    High,
    /// Congestion subsiding, queues draining.
    Decreasing,
}

impl MacroState {
    /// Stable index for one-hot feature encoding.
    pub fn index(self) -> usize {
        match self {
            MacroState::Minimal => 0,
            MacroState::Increasing => 1,
            MacroState::High => 2,
            MacroState::Decreasing => 3,
        }
    }

    /// All states, in index order.
    pub const ALL: [MacroState; 4] = [
        MacroState::Minimal,
        MacroState::Increasing,
        MacroState::High,
        MacroState::Decreasing,
    ];
}

/// Thresholds and smoothing constants of the classifier.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MacroConfig {
    /// Smoothed latency at or below this (seconds) reads as Minimal.
    pub latency_low: f64,
    /// Windowed drop rate at or above this reads as High.
    pub drop_high: f64,
    /// Fast latency EWMA factor (tracks the current level).
    pub fast_alpha: f64,
    /// Slow latency EWMA factor (tracks the trend baseline).
    pub slow_alpha: f64,
    /// Observations in the sliding drop-rate window.
    pub drop_window: usize,
}

impl Default for MacroConfig {
    fn default() -> Self {
        MacroConfig {
            latency_low: 50e-6, // 50 µs — a few uncongested fabric hops
            drop_high: 0.02,
            fast_alpha: 0.1,
            slow_alpha: 0.01,
            drop_window: 256,
        }
    }
}

impl MacroConfig {
    /// Calibrates thresholds from training observations: `latency_low` is
    /// the 40th percentile of delivered latencies (seconds); `drop_high`
    /// is twice the overall drop rate, floored at 1%. Non-finite latency
    /// samples (NaN, ±∞) are ignored rather than panicking the sort —
    /// corrupt captures degrade to the defaults instead of aborting.
    pub fn calibrate(latencies: &[f64], drop_rate: f64) -> Self {
        let mut cfg = MacroConfig::default();
        let mut sorted: Vec<f64> = latencies
            .iter()
            .copied()
            .filter(|l| l.is_finite())
            .collect();
        if !sorted.is_empty() {
            sorted.sort_by(f64::total_cmp);
            cfg.latency_low = sorted[(sorted.len() - 1) * 2 / 5];
        }
        cfg.drop_high = (2.0 * drop_rate).max(0.01);
        cfg
    }
}

/// Runtime state of the classifier (one per approximated cluster).
#[derive(Clone, Debug)]
pub struct MacroModel {
    cfg: MacroConfig,
    fast: Ewma,
    slow: Ewma,
    window: Vec<bool>,
    window_pos: usize,
    drops_in_window: usize,
    state: MacroState,
}

impl MacroModel {
    /// Fresh classifier in the Minimal state.
    pub fn new(cfg: MacroConfig) -> Self {
        assert!(cfg.drop_window >= 1);
        MacroModel {
            fast: Ewma::new(cfg.fast_alpha),
            slow: Ewma::new(cfg.slow_alpha),
            window: Vec::with_capacity(cfg.drop_window),
            window_pos: 0,
            drops_in_window: 0,
            state: MacroState::Minimal,
            cfg,
        }
    }

    /// The current regime.
    pub fn state(&self) -> MacroState {
        self.state
    }

    /// The current windowed drop rate.
    pub fn drop_rate(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.drops_in_window as f64 / self.window.len() as f64
        }
    }

    /// Feeds one boundary observation: `latency` in seconds for delivered
    /// packets, `None` for drops. Returns the updated regime.
    pub fn observe(&mut self, latency: Option<f64>, dropped: bool) -> MacroState {
        debug_assert_eq!(latency.is_none(), dropped, "drops carry no latency");
        // Sliding drop window (ring buffer).
        if self.window.len() < self.cfg.drop_window {
            self.window.push(dropped);
            if dropped {
                self.drops_in_window += 1;
            }
        } else {
            let old = std::mem::replace(&mut self.window[self.window_pos], dropped);
            self.drops_in_window = self.drops_in_window + dropped as usize - old as usize;
            self.window_pos = (self.window_pos + 1) % self.cfg.drop_window;
        }
        if let Some(lat) = latency {
            self.fast.record(lat);
            self.slow.record(lat);
        }

        let drop_rate = self.drop_rate();
        let lat_fast = self.fast.value_or_zero();
        let lat_slow = self.slow.value_or_zero();
        self.state = if drop_rate >= self.cfg.drop_high {
            MacroState::High
        } else if lat_fast <= self.cfg.latency_low {
            MacroState::Minimal
        } else if lat_fast >= lat_slow {
            MacroState::Increasing
        } else {
            MacroState::Decreasing
        };
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MacroModel {
        MacroModel::new(MacroConfig {
            latency_low: 100e-6,
            drop_high: 0.1,
            fast_alpha: 0.3,
            slow_alpha: 0.05,
            drop_window: 20,
        })
    }

    #[test]
    fn starts_minimal_and_stays_under_light_load() {
        let mut m = model();
        for _ in 0..100 {
            assert_eq!(m.observe(Some(10e-6), false), MacroState::Minimal);
        }
    }

    #[test]
    fn rising_latency_reads_increasing() {
        let mut m = model();
        for i in 0..100 {
            m.observe(Some(10e-6 + i as f64 * 20e-6), false);
        }
        assert_eq!(m.state(), MacroState::Increasing);
    }

    #[test]
    fn heavy_drops_read_high() {
        let mut m = model();
        for i in 0..100 {
            if i % 3 == 0 {
                m.observe(None, true);
            } else {
                m.observe(Some(500e-6), false);
            }
        }
        assert_eq!(m.state(), MacroState::High);
        assert!(m.drop_rate() > 0.1);
    }

    #[test]
    fn falling_latency_reads_decreasing() {
        let mut m = model();
        // Climb high, then fall (still above the Minimal threshold).
        for i in 0..50 {
            m.observe(Some(10e-6 + i as f64 * 40e-6), false);
        }
        for i in 0..10 {
            m.observe(Some(1500e-6 - i as f64 * 100e-6), false);
        }
        assert_eq!(m.state(), MacroState::Decreasing);
    }

    #[test]
    fn full_cycle_visits_all_states() {
        let mut m = model();
        let mut seen = std::collections::HashSet::new();
        // Calm → climb → drop storm → drain → calm.
        for _ in 0..30 {
            seen.insert(m.observe(Some(5e-6), false));
        }
        for i in 0..60 {
            seen.insert(m.observe(Some(5e-6 + i as f64 * 30e-6), false));
        }
        for _ in 0..40 {
            seen.insert(m.observe(None, true));
        }
        for i in 0..40 {
            seen.insert(m.observe(Some((1800e-6 - i as f64 * 45e-6).max(120e-6)), false));
        }
        for _ in 0..200 {
            seen.insert(m.observe(Some(5e-6), false));
        }
        for s in MacroState::ALL {
            assert!(seen.contains(&s), "never visited {s:?}");
        }
        assert_eq!(m.state(), MacroState::Minimal, "returns to calm");
    }

    #[test]
    fn calibrate_uses_latency_percentile_and_drop_floor() {
        let lats: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-6).collect();
        let cfg = MacroConfig::calibrate(&lats, 0.001);
        assert!(
            (cfg.latency_low - 40e-6).abs() < 2e-6,
            "p40 = {}",
            cfg.latency_low
        );
        assert_eq!(cfg.drop_high, 0.01, "floored at 1%");
        let cfg2 = MacroConfig::calibrate(&lats, 0.2);
        assert!((cfg2.drop_high - 0.4).abs() < 1e-12);
    }

    #[test]
    fn calibrate_ignores_non_finite_latencies() {
        // The old comparator panicked on NaN; now corrupt samples are
        // dropped and the percentile comes from the finite remainder.
        let mut lats: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-6).collect();
        lats.push(f64::NAN);
        lats.push(f64::INFINITY);
        lats.push(f64::NEG_INFINITY);
        let cfg = MacroConfig::calibrate(&lats, 0.001);
        assert!(
            (cfg.latency_low - 40e-6).abs() < 2e-6,
            "p40 over finite samples = {}",
            cfg.latency_low
        );
        // All-NaN input degrades to the default threshold.
        let cfg_nan = MacroConfig::calibrate(&[f64::NAN, f64::NAN], 0.0);
        assert_eq!(cfg_nan.latency_low, MacroConfig::default().latency_low);
    }

    #[test]
    fn index_is_stable() {
        for (i, s) in MacroState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
