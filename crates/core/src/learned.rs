//! The learned cluster oracle: macro classifier + micro LSTMs, deployed
//! behind the engine's [`ClusterOracle`] seam.
//!
//! One [`ClusterModel`] holds the trained artifacts — separate ingress and
//! egress micro models ("we train one model for packets entering the
//! approximated cluster and one for packets leaving because the
//! distribution of flows in either direction can differ significantly",
//! §4.2), the calibrated macro thresholds, and the latency codec. A
//! [`LearnedOracle`] instantiates per-cluster runtime state around it, so
//! the same weights serve all 63-of-64 approximated clusters, exactly as
//! Figure 3 sketches ("we can then reuse the trained cluster model in
//! large-scale simulations").

use std::collections::HashMap;

use elephant_des::SimTime;
use elephant_net::{
    ClosParams, ClusterOracle, Direction, OracleCtx, OracleVerdict, Packet, RawVerdict,
};
use elephant_nn::{MicroNet, MicroNetState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, CacheStatsHandle, FeatureQuantizer, QuantizerConfig, VerdictCache};
use crate::error::ElephantError;
use crate::features::{FeatureExtractor, LatencyCodec};
use crate::macro_model::{MacroConfig, MacroModel, MacroState};

/// Magic string identifying a versioned elephant model artifact.
pub const MODEL_MAGIC: &str = "ELEPHANT-MODEL";
/// Model artifact format version this build writes and reads.
pub const MODEL_VERSION: u32 = 1;

/// Training-time statistics embedded in the model, used at deployment to
/// derive guardrail tolerance bands (e.g. the expected drop rate for
/// [`elephant_net::GuardConfig`]).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Overall drop rate of the training capture.
    #[serde(default)]
    pub train_drop_rate: f64,
    /// Median delivered latency of the training capture, seconds.
    #[serde(default)]
    pub train_latency_p50: f64,
    /// 99th-percentile delivered latency of the training capture, seconds.
    #[serde(default)]
    pub train_latency_p99: f64,
    /// Number of boundary records the model was trained on.
    #[serde(default)]
    pub train_records: u64,
    /// Feature-quantization parameters for the verdict cache, pinned in
    /// the artifact so cache keys stay stable across save/load (absent in
    /// legacy artifacts; defaults apply).
    #[serde(default)]
    pub quantizer: QuantizerConfig,
}

/// Everything learned from one training run, serializable as JSON.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Micro model for host → core traversals (the paper's "leaving").
    pub up: MicroNet,
    /// Micro model for core → host traversals (the paper's "entering").
    pub down: MicroNet,
    /// Calibrated macro-classifier thresholds.
    pub macro_cfg: MacroConfig,
    /// Latency target codec.
    pub codec: LatencyCodec,
    /// Training-time stats for deployment guardrails (absent in legacy
    /// artifacts; defaults to zeros, which disables derived bands).
    #[serde(default)]
    pub meta: ModelMeta,
}

/// On-disk envelope for a [`ClusterModel`]: versioned, checksummed header
/// plus the model itself. [`ClusterModel::to_file_json`] writes one;
/// [`ClusterModel::load_json`] validates magic, version, checksum, and
/// weight finiteness before handing the model out.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelFile {
    /// Must equal [`MODEL_MAGIC`].
    pub magic: String,
    /// Must equal [`MODEL_VERSION`].
    pub version: u32,
    /// FNV-1a over both micro models' weight bits, in parameter order.
    pub checksum: u64,
    /// The payload.
    pub model: ClusterModel,
}

impl ModelFile {
    /// Validates the header and payload, yielding the model.
    pub fn into_model(self) -> Result<ClusterModel, ElephantError> {
        if self.magic != MODEL_MAGIC {
            return Err(ElephantError::ModelMagic { found: self.magic });
        }
        if self.version != MODEL_VERSION {
            return Err(ElephantError::ModelVersion {
                found: self.version,
                expected: MODEL_VERSION,
            });
        }
        let actual = self.model.weight_checksum();
        if actual != self.checksum {
            return Err(ElephantError::ModelChecksum {
                expected: self.checksum,
                actual,
            });
        }
        self.model.validate_weights()?;
        Ok(self.model)
    }
}

impl ClusterModel {
    /// Serializes the bare model to JSON (no header; used inside
    /// fingerprints and legacy paths).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserializes a bare (headerless) model from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serializes to the versioned, checksummed on-disk format.
    pub fn to_file_json(&self) -> String {
        let file = ModelFile {
            magic: MODEL_MAGIC.to_string(),
            version: MODEL_VERSION,
            checksum: self.weight_checksum(),
            model: self.clone(),
        };
        serde_json::to_string(&file).expect("model file serializes")
    }

    /// Loads a model from JSON, accepting both the versioned format (with
    /// full header validation) and legacy bare-model JSON (weight
    /// finiteness is still checked). All failure modes are typed.
    pub fn load_json(s: &str) -> Result<Self, ElephantError> {
        match serde_json::from_str::<ModelFile>(s) {
            Ok(file) => file.into_model(),
            Err(_) => {
                let model: ClusterModel =
                    serde_json::from_str(s).map_err(|e| ElephantError::ModelParse {
                        detail: e.to_string(),
                    })?;
                model.validate_weights()?;
                Ok(model)
            }
        }
    }

    /// Combined checksum over both directional micro models' weights.
    pub fn weight_checksum(&self) -> u64 {
        self.up
            .weight_checksum()
            .wrapping_mul(0x0000_0100_0000_01b3)
            ^ self.down.weight_checksum()
    }

    /// Fails if either micro model carries NaN or infinite weights.
    pub fn validate_weights(&self) -> Result<(), ElephantError> {
        let count = self.up.non_finite_params() + self.down.non_finite_params();
        if count > 0 {
            return Err(ElephantError::ModelNonFinite { count });
        }
        Ok(())
    }
}

/// How a drop probability becomes a binary decision.
#[derive(Clone, Copy, Debug)]
pub enum DropPolicy {
    /// Bernoulli sample with the predicted probability (default: keeps
    /// aggregate drop rates calibrated).
    Sample,
    /// Drop iff probability ≥ the threshold (deterministic).
    Threshold(f32),
}

/// Per-oracle counters for diagnostics and the evaluation harnesses.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleStats {
    /// Verdicts issued.
    pub classified: u64,
    /// Drop verdicts.
    pub drops: u64,
    /// Verdicts issued in each macro state (by index).
    pub per_state: [u64; 4],
}

#[derive(Clone)]
struct ClusterRuntime {
    macro_model: MacroModel,
    up_fx: FeatureExtractor,
    down_fx: FeatureExtractor,
    up_state: MicroNetState,
    down_state: MicroNetState,
    /// Reused per call so steady-state feature extraction allocates nothing.
    feat_buf: Vec<f32>,
    /// Verdict memo for this cluster's boundary stream (None = cache off).
    cache: Option<VerdictCache>,
}

/// Cache parameters shared by all of one oracle's per-cluster caches.
#[derive(Clone)]
struct CacheCfg {
    capacity: usize,
    quantizer: FeatureQuantizer,
    stats: CacheStatsHandle,
}

/// Cached metrics-registry handles; resolved once per oracle so the
/// per-verdict cost while disabled is a relaxed flag load.
#[derive(Clone)]
struct OracleMetrics {
    elided: elephant_obs::Counter,
    drops: elephant_obs::Counter,
    per_state: [elephant_obs::Counter; 4],
    infer: elephant_obs::HistogramHandle,
}

impl OracleMetrics {
    fn new() -> Self {
        OracleMetrics {
            elided: elephant_obs::counter("hybrid/oracle/elided_packets", ""),
            drops: elephant_obs::counter("hybrid/oracle/drops", ""),
            per_state: std::array::from_fn(|i| {
                elephant_obs::counter(
                    "hybrid/macro/occupancy",
                    format!("{:?}", MacroState::ALL[i]).to_lowercase(),
                )
            }),
            infer: elephant_obs::histogram("hybrid/oracle/infer_seconds", ""),
        }
    }
}

/// A [`ClusterOracle`] that serves [`ClusterModel`] predictions.
///
/// Cloning (for checkpoint/restore) deep-copies *everything that shapes
/// verdicts*: the weights, the drop-sampling RNG position, and every
/// cluster's macro regime, RNN states, feature extractors, and verdict
/// cache — so a restored run issues bit-identical verdicts to an
/// uninterrupted one. Metrics and cache-stats handles are shared with the
/// original (monotonic observability, outside checkpoint scope).
#[derive(Clone)]
pub struct LearnedOracle {
    model: ClusterModel,
    params: ClosParams,
    policy: DropPolicy,
    rng: SmallRng,
    clusters: HashMap<u16, ClusterRuntime>,
    stats: OracleStats,
    metrics: OracleMetrics,
    cache_cfg: Option<CacheCfg>,
}

impl LearnedOracle {
    /// Wraps a trained model for deployment on networks shaped by
    /// `params`. `seed` drives the (deterministic) drop sampling.
    pub fn new(model: ClusterModel, params: ClosParams, policy: DropPolicy, seed: u64) -> Self {
        LearnedOracle {
            model,
            params,
            policy,
            rng: SmallRng::seed_from_u64(seed),
            clusters: HashMap::new(),
            stats: OracleStats::default(),
            metrics: OracleMetrics::new(),
            cache_cfg: None,
        }
    }

    /// Like [`Self::new`], but with per-cluster verdict memoization
    /// bounded at `cache_capacity` entries per cluster. Quantization
    /// follows the model's own [`ModelMeta::quantizer`] so cache keys are
    /// pinned to the artifact. The cache must be deployed *under* any
    /// [`elephant_net::GuardedOracle`]: hits are raw verdicts and receive
    /// the same guard validation as fresh inference.
    pub fn with_cache(
        model: ClusterModel,
        params: ClosParams,
        policy: DropPolicy,
        seed: u64,
        cache_capacity: usize,
    ) -> Self {
        let quantizer = FeatureQuantizer::new(model.meta.quantizer);
        let mut oracle = Self::new(model, params, policy, seed);
        oracle.cache_cfg = Some(CacheCfg {
            capacity: cache_capacity.max(1),
            quantizer,
            stats: CacheStatsHandle::new(),
        });
        oracle
    }

    /// Counters.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// Point-in-time cache counters (zeros when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_cfg
            .as_ref()
            .map(|c| c.stats.snapshot())
            .unwrap_or_default()
    }

    /// A live handle onto the cache counters, valid after the oracle is
    /// boxed into the network. `None` when the cache is disabled.
    pub fn cache_stats_handle(&self) -> Option<CacheStatsHandle> {
        self.cache_cfg.as_ref().map(|c| c.stats.clone())
    }

    /// The macro state currently attributed to `cluster` (Minimal if the
    /// cluster has seen no traffic yet).
    pub fn macro_state(&self, cluster: u16) -> MacroState {
        self.clusters
            .get(&cluster)
            .map(|c| c.macro_model.state())
            .unwrap_or(MacroState::Minimal)
    }
}

/// Fetches (or lazily creates) the runtime for `cluster`. A free function
/// so the caller keeps disjoint borrows of the model and the runtime map.
fn runtime<'a>(
    clusters: &'a mut HashMap<u16, ClusterRuntime>,
    model: &ClusterModel,
    params: &ClosParams,
    cache_cfg: Option<&CacheCfg>,
    cluster: u16,
) -> &'a mut ClusterRuntime {
    clusters.entry(cluster).or_insert_with(|| ClusterRuntime {
        macro_model: MacroModel::new(model.macro_cfg),
        up_fx: FeatureExtractor::new(params),
        down_fx: FeatureExtractor::new(params),
        up_state: model.up.init_state(),
        down_state: model.down.init_state(),
        feat_buf: Vec::with_capacity(crate::features::FEATURE_DIM),
        cache: cache_cfg.map(|c| VerdictCache::new(c.capacity, c.stats.clone())),
    })
}

impl ClusterOracle for LearnedOracle {
    fn classify(&mut self, ctx: &OracleCtx<'_>, pkt: &Packet, now: SimTime) -> OracleVerdict {
        // The unguarded path: convert the raw prediction directly. A model
        // emitting NaN or negative latency panics here — deploy behind an
        // [`elephant_net::GuardedOracle`] to degrade gracefully instead.
        match self.classify_raw(ctx, pkt, now) {
            RawVerdict::Drop => OracleVerdict::Drop,
            RawVerdict::Deliver { latency_secs } => OracleVerdict::Deliver {
                latency: elephant_des::SimDuration::from_secs_f64(latency_secs),
            },
        }
    }

    fn macro_state_of(&self, cluster: u16) -> Option<u8> {
        Some(self.macro_state(cluster).index() as u8)
    }

    fn clone_box(&self) -> Option<Box<dyn ClusterOracle + Send>> {
        Some(Box::new(self.clone()))
    }

    fn classify_raw(&mut self, ctx: &OracleCtx<'_>, pkt: &Packet, now: SimTime) -> RawVerdict {
        let LearnedOracle {
            model,
            params,
            policy,
            rng,
            clusters,
            stats,
            metrics,
            cache_cfg,
        } = self;
        let observing = elephant_obs::enabled();
        stats.classified += 1;
        if observing {
            metrics.elided.inc();
        }
        let rt = runtime(clusters, model, params, cache_cfg.as_ref(), ctx.cluster);
        let state = rt.macro_model.state();
        stats.per_state[state.index()] += 1;
        if observing {
            metrics.per_state[state.index()].inc();
        }

        let (net, fx, net_state): (&MicroNet, _, _) = match ctx.direction {
            Direction::Up => (&model.up, &mut rt.up_fx, &mut rt.up_state),
            Direction::Down => (&model.down, &mut rt.down_fx, &mut rt.down_state),
        };
        fx.extract_into(
            pkt.src,
            pkt.dst,
            pkt.wire_bytes(),
            ctx.direction,
            &ctx.path,
            now,
            state,
            &mut rt.feat_buf,
        );

        // Fast path: a packet landing in an already-seen quantization
        // bucket replays the memoized verdict — no inference, no drop
        // sampling. The macro model still advances on the served verdict
        // (auto-regression must not stall), and a state transition flushes
        // the cache so the new regime is never served stale verdicts.
        let key = rt.cache.as_ref().map(|_| {
            let cfg = cache_cfg.as_ref().expect("cache implies config");
            cfg.quantizer
                .key(&rt.feat_buf, ctx.direction, state.index() as u8)
        });
        if let (Some(cache), Some(key)) = (rt.cache.as_mut(), key.as_ref()) {
            if let Some(verdict) = cache.get(key) {
                match verdict {
                    RawVerdict::Drop => {
                        stats.drops += 1;
                        metrics.drops.inc();
                        rt.macro_model.observe(None, true);
                    }
                    RawVerdict::Deliver { latency_secs } => {
                        if latency_secs.is_finite() && latency_secs >= 0.0 {
                            rt.macro_model
                                .observe(Some((latency_secs * 1e9).round() / 1e9), false);
                        }
                    }
                }
                if rt.macro_model.state() != state {
                    cache.invalidate();
                }
                return verdict;
            }
        }

        let pred = if observing {
            let t0 = std::time::Instant::now();
            let pred = net.predict(&rt.feat_buf, net_state);
            metrics.infer.record(t0.elapsed().as_secs_f64());
            pred
        } else {
            net.predict(&rt.feat_buf, net_state)
        };

        let drop = match *policy {
            DropPolicy::Sample => rng.gen::<f32>() < pred.drop_prob,
            DropPolicy::Threshold(t) => pred.drop_prob >= t,
        };
        let verdict = if drop {
            stats.drops += 1;
            metrics.drops.inc();
            rt.macro_model.observe(None, true);
            RawVerdict::Drop
        } else {
            let latency_secs = model.codec.decode_secs(pred.latency);
            // Auto-regression: the macro model advances on the oracle's own
            // output, since ground truth does not exist at simulation time.
            // The observed value is rounded to nanoseconds — identical to the
            // SimDuration round-trip the validated path performs — so guarded
            // and unguarded runs evolve the same macro state. A non-finite
            // prediction is skipped here; the caller decides the verdict.
            if latency_secs.is_finite() && latency_secs >= 0.0 {
                rt.macro_model
                    .observe(Some((latency_secs * 1e9).round() / 1e9), false);
            }
            RawVerdict::Deliver { latency_secs }
        };
        if let (Some(cache), Some(key)) = (rt.cache.as_mut(), key) {
            cache.insert(key, verdict);
            if rt.macro_model.state() != state {
                cache.invalidate();
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;
    use elephant_des::SimDuration;
    use elephant_net::{Ecn, FlowId, HostAddr, TcpFlags, TcpSegment, Topology};
    use elephant_nn::MicroNetConfig;

    fn tiny_model() -> ClusterModel {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = MicroNetConfig {
            input: FEATURE_DIM,
            hidden: 8,
            layers: 1,
            alpha: 0.5,
            rnn: elephant_nn::RnnKind::Lstm,
        };
        ClusterModel {
            up: MicroNet::new(cfg, &mut rng),
            down: MicroNet::new(cfg, &mut rng),
            macro_cfg: MacroConfig::default(),
            codec: LatencyCodec::default(),
            meta: ModelMeta::default(),
        }
    }

    fn pkt(src: HostAddr, dst: HostAddr) -> Packet {
        Packet {
            id: 1,
            flow: FlowId(7),
            src,
            dst,
            seg: TcpSegment {
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
                payload_len: 1460,
                ece: false,
                cwr: false,
            },
            ecn: Ecn::NotCapable,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn verdicts_are_physical_and_counted() {
        let params = ClosParams::paper_cluster(4);
        let topo = Topology::clos_with_stubs(params, &[1, 2, 3]);
        let mut oracle = LearnedOracle::new(tiny_model(), params, DropPolicy::Sample, 9);
        let src = HostAddr::new(1, 0, 0);
        let dst = HostAddr::new(0, 0, 0);
        let path = topo.fabric_path(src, dst, FlowId(7));
        let p = pkt(src, dst);
        let mut delivered = 0;
        for i in 0..200 {
            let ctx = OracleCtx {
                topo: &topo,
                cluster: 1,
                direction: Direction::Up,
                path,
            };
            match oracle.classify(&ctx, &p, SimTime::from_micros(i * 10)) {
                OracleVerdict::Deliver { latency } => {
                    delivered += 1;
                    assert!(latency >= SimDuration::from_secs_f64(1e-6));
                    assert!(latency <= SimDuration::from_secs(1));
                }
                OracleVerdict::Drop => {}
            }
        }
        assert_eq!(oracle.stats().classified, 200);
        assert_eq!(
            oracle.stats().drops + delivered,
            200,
            "every verdict is a drop or a delivery"
        );
        assert_eq!(oracle.stats().per_state.iter().sum::<u64>(), 200);
    }

    #[test]
    fn threshold_policy_is_deterministic() {
        let params = ClosParams::paper_cluster(2);
        let topo = Topology::clos_with_stubs(params, &[1]);
        let run = || {
            let mut oracle =
                LearnedOracle::new(tiny_model(), params, DropPolicy::Threshold(0.5), 1);
            let src = HostAddr::new(1, 0, 0);
            let dst = HostAddr::new(0, 0, 0);
            let path = topo.fabric_path(src, dst, FlowId(7));
            let p = pkt(src, dst);
            (0..50)
                .map(|i| {
                    let ctx = OracleCtx {
                        topo: &topo,
                        cluster: 1,
                        direction: Direction::Up,
                        path,
                    };
                    match oracle.classify(&ctx, &p, SimTime::from_micros(i * 5)) {
                        OracleVerdict::Drop => -1.0,
                        OracleVerdict::Deliver { latency } => latency.as_secs_f64(),
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_cluster_state_is_independent() {
        let params = ClosParams::paper_cluster(4);
        let topo = Topology::clos_with_stubs(params, &[1, 2, 3]);
        let mut oracle = LearnedOracle::new(tiny_model(), params, DropPolicy::Threshold(1.1), 2);
        let src = HostAddr::new(1, 0, 0);
        let dst = HostAddr::new(0, 0, 0);
        let path = topo.fabric_path(src, dst, FlowId(7));
        let p = pkt(src, dst);
        // Hammer cluster 1 only; cluster 2's state must stay fresh.
        for i in 0..100 {
            let ctx = OracleCtx {
                topo: &topo,
                cluster: 1,
                direction: Direction::Up,
                path,
            };
            oracle.classify(&ctx, &p, SimTime::from_micros(i));
        }
        assert_eq!(oracle.macro_state(2), MacroState::Minimal);
        assert_eq!(oracle.clusters.len(), 1, "cluster 2 never materialized");
    }

    #[test]
    fn model_json_round_trip() {
        let m = tiny_model();
        let back = ClusterModel::from_json(&m.to_json()).unwrap();
        let x = vec![0.1f32; FEATURE_DIM];
        let a = m.up.predict(&x, &mut m.up.init_state());
        let b = back.up.predict(&x, &mut back.up.init_state());
        assert_eq!(a.drop_prob, b.drop_prob);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn versioned_file_round_trips_and_validates() {
        let m = tiny_model();
        let json = m.to_file_json();
        let back = ClusterModel::load_json(&json).expect("valid file loads");
        assert_eq!(back.weight_checksum(), m.weight_checksum());
        // Legacy bare-model JSON still loads.
        let legacy = ClusterModel::load_json(&m.to_json()).expect("legacy loads");
        assert_eq!(legacy.weight_checksum(), m.weight_checksum());
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let m = tiny_model();
        let file = ModelFile {
            magic: "NOT-A-MODEL".to_string(),
            version: MODEL_VERSION,
            checksum: m.weight_checksum(),
            model: m.clone(),
        };
        let err = ClusterModel::load_json(&serde_json::to_string(&file).unwrap()).unwrap_err();
        assert!(matches!(err, ElephantError::ModelMagic { .. }), "{err}");

        let file = ModelFile {
            magic: MODEL_MAGIC.to_string(),
            version: MODEL_VERSION + 7,
            checksum: m.weight_checksum(),
            model: m,
        };
        let err = ClusterModel::load_json(&serde_json::to_string(&file).unwrap()).unwrap_err();
        assert!(
            matches!(err, ElephantError::ModelVersion { found, .. } if found == MODEL_VERSION + 7)
        );
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let m = tiny_model();
        let file = ModelFile {
            magic: MODEL_MAGIC.to_string(),
            version: MODEL_VERSION,
            checksum: m.weight_checksum() ^ 1,
            model: m,
        };
        let err = ClusterModel::load_json(&serde_json::to_string(&file).unwrap()).unwrap_err();
        assert!(matches!(err, ElephantError::ModelChecksum { .. }), "{err}");
    }

    #[test]
    fn nan_weights_refuse_to_load() {
        let mut m = tiny_model();
        m.up.param_slices()[0][0] = f32::NAN;
        // At the envelope layer (checksum covers the NaN bits, so it
        // matches) the finiteness validator is what rejects the model.
        let file = ModelFile {
            magic: MODEL_MAGIC.to_string(),
            version: MODEL_VERSION,
            checksum: m.weight_checksum(),
            model: m.clone(),
        };
        let err = file.into_model().unwrap_err();
        assert!(
            matches!(err, ElephantError::ModelNonFinite { count } if count == 1),
            "{err}"
        );
        // Through JSON the NaN serializes as `null` and parses back as
        // NaN (the writer/reader are symmetric about non-finite floats),
        // so the same finiteness validator is what refuses the artifact.
        let err = ClusterModel::load_json(&m.to_file_json()).unwrap_err();
        assert!(
            matches!(err, ElephantError::ModelNonFinite { count } if count == 1),
            "{err}"
        );
    }

    #[test]
    fn truncated_json_is_a_parse_error() {
        let m = tiny_model();
        let json = m.to_file_json();
        let err = ClusterModel::load_json(&json[..json.len() / 2]).unwrap_err();
        assert!(matches!(err, ElephantError::ModelParse { .. }), "{err}");
    }
}
