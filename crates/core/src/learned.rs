//! The learned cluster oracle: macro classifier + micro LSTMs, deployed
//! behind the engine's [`ClusterOracle`] seam.
//!
//! One [`ClusterModel`] holds the trained artifacts — separate ingress and
//! egress micro models ("we train one model for packets entering the
//! approximated cluster and one for packets leaving because the
//! distribution of flows in either direction can differ significantly",
//! §4.2), the calibrated macro thresholds, and the latency codec. A
//! [`LearnedOracle`] instantiates per-cluster runtime state around it, so
//! the same weights serve all 63-of-64 approximated clusters, exactly as
//! Figure 3 sketches ("we can then reuse the trained cluster model in
//! large-scale simulations").

use std::collections::HashMap;

use elephant_des::SimTime;
use elephant_net::{ClosParams, ClusterOracle, Direction, OracleCtx, OracleVerdict, Packet};
use elephant_nn::{MicroNet, MicroNetState};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::features::{FeatureExtractor, LatencyCodec};
use crate::macro_model::{MacroConfig, MacroModel, MacroState};

/// Everything learned from one training run, serializable as JSON.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Micro model for host → core traversals (the paper's "leaving").
    pub up: MicroNet,
    /// Micro model for core → host traversals (the paper's "entering").
    pub down: MicroNet,
    /// Calibrated macro-classifier thresholds.
    pub macro_cfg: MacroConfig,
    /// Latency target codec.
    pub codec: LatencyCodec,
}

impl ClusterModel {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// How a drop probability becomes a binary decision.
#[derive(Clone, Copy, Debug)]
pub enum DropPolicy {
    /// Bernoulli sample with the predicted probability (default: keeps
    /// aggregate drop rates calibrated).
    Sample,
    /// Drop iff probability ≥ the threshold (deterministic).
    Threshold(f32),
}

/// Per-oracle counters for diagnostics and the evaluation harnesses.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleStats {
    /// Verdicts issued.
    pub classified: u64,
    /// Drop verdicts.
    pub drops: u64,
    /// Verdicts issued in each macro state (by index).
    pub per_state: [u64; 4],
}

struct ClusterRuntime {
    macro_model: MacroModel,
    up_fx: FeatureExtractor,
    down_fx: FeatureExtractor,
    up_state: MicroNetState,
    down_state: MicroNetState,
}

/// Cached metrics-registry handles; resolved once per oracle so the
/// per-verdict cost while disabled is a relaxed flag load.
struct OracleMetrics {
    elided: elephant_obs::Counter,
    drops: elephant_obs::Counter,
    per_state: [elephant_obs::Counter; 4],
    infer: elephant_obs::HistogramHandle,
}

impl OracleMetrics {
    fn new() -> Self {
        OracleMetrics {
            elided: elephant_obs::counter("hybrid/oracle/elided_packets", ""),
            drops: elephant_obs::counter("hybrid/oracle/drops", ""),
            per_state: std::array::from_fn(|i| {
                elephant_obs::counter(
                    "hybrid/macro/occupancy",
                    format!("{:?}", MacroState::ALL[i]).to_lowercase(),
                )
            }),
            infer: elephant_obs::histogram("hybrid/oracle/infer_seconds", ""),
        }
    }
}

/// A [`ClusterOracle`] that serves [`ClusterModel`] predictions.
pub struct LearnedOracle {
    model: ClusterModel,
    params: ClosParams,
    policy: DropPolicy,
    rng: SmallRng,
    clusters: HashMap<u16, ClusterRuntime>,
    stats: OracleStats,
    metrics: OracleMetrics,
}

impl LearnedOracle {
    /// Wraps a trained model for deployment on networks shaped by
    /// `params`. `seed` drives the (deterministic) drop sampling.
    pub fn new(model: ClusterModel, params: ClosParams, policy: DropPolicy, seed: u64) -> Self {
        LearnedOracle {
            model,
            params,
            policy,
            rng: SmallRng::seed_from_u64(seed),
            clusters: HashMap::new(),
            stats: OracleStats::default(),
            metrics: OracleMetrics::new(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// The macro state currently attributed to `cluster` (Minimal if the
    /// cluster has seen no traffic yet).
    pub fn macro_state(&self, cluster: u16) -> MacroState {
        self.clusters
            .get(&cluster)
            .map(|c| c.macro_model.state())
            .unwrap_or(MacroState::Minimal)
    }
}

/// Fetches (or lazily creates) the runtime for `cluster`. A free function
/// so the caller keeps disjoint borrows of the model and the runtime map.
fn runtime<'a>(
    clusters: &'a mut HashMap<u16, ClusterRuntime>,
    model: &ClusterModel,
    params: &ClosParams,
    cluster: u16,
) -> &'a mut ClusterRuntime {
    clusters.entry(cluster).or_insert_with(|| ClusterRuntime {
        macro_model: MacroModel::new(model.macro_cfg),
        up_fx: FeatureExtractor::new(params),
        down_fx: FeatureExtractor::new(params),
        up_state: model.up.init_state(),
        down_state: model.down.init_state(),
    })
}

impl ClusterOracle for LearnedOracle {
    fn classify(&mut self, ctx: &OracleCtx<'_>, pkt: &Packet, now: SimTime) -> OracleVerdict {
        let LearnedOracle {
            model,
            params,
            policy,
            rng,
            clusters,
            stats,
            metrics,
        } = self;
        let observing = elephant_obs::enabled();
        stats.classified += 1;
        if observing {
            metrics.elided.inc();
        }
        let rt = runtime(clusters, model, params, ctx.cluster);
        let state = rt.macro_model.state();
        stats.per_state[state.index()] += 1;
        if observing {
            metrics.per_state[state.index()].inc();
        }

        let (net, fx, net_state): (&MicroNet, _, _) = match ctx.direction {
            Direction::Up => (&model.up, &mut rt.up_fx, &mut rt.up_state),
            Direction::Down => (&model.down, &mut rt.down_fx, &mut rt.down_state),
        };
        let features = fx.extract(
            pkt.src,
            pkt.dst,
            pkt.wire_bytes(),
            ctx.direction,
            &ctx.path,
            now,
            state,
        );
        let pred = if observing {
            let t0 = std::time::Instant::now();
            let pred = net.predict(&features, net_state);
            metrics.infer.record(t0.elapsed().as_secs_f64());
            pred
        } else {
            net.predict(&features, net_state)
        };

        let drop = match *policy {
            DropPolicy::Sample => rng.gen::<f32>() < pred.drop_prob,
            DropPolicy::Threshold(t) => pred.drop_prob >= t,
        };
        if drop {
            stats.drops += 1;
            metrics.drops.inc();
            rt.macro_model.observe(None, true);
            return OracleVerdict::Drop;
        }
        let latency = model.codec.decode(pred.latency);
        // Auto-regression: the macro model advances on the oracle's own
        // output, since ground truth does not exist at simulation time.
        rt.macro_model.observe(Some(latency.as_secs_f64()), false);
        OracleVerdict::Deliver { latency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;
    use elephant_des::SimDuration;
    use elephant_net::{Ecn, FlowId, HostAddr, TcpFlags, TcpSegment, Topology};
    use elephant_nn::MicroNetConfig;

    fn tiny_model() -> ClusterModel {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = MicroNetConfig {
            input: FEATURE_DIM,
            hidden: 8,
            layers: 1,
            alpha: 0.5,
            rnn: elephant_nn::RnnKind::Lstm,
        };
        ClusterModel {
            up: MicroNet::new(cfg, &mut rng),
            down: MicroNet::new(cfg, &mut rng),
            macro_cfg: MacroConfig::default(),
            codec: LatencyCodec::default(),
        }
    }

    fn pkt(src: HostAddr, dst: HostAddr) -> Packet {
        Packet {
            id: 1,
            flow: FlowId(7),
            src,
            dst,
            seg: TcpSegment {
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
                payload_len: 1460,
                ece: false,
                cwr: false,
            },
            ecn: Ecn::NotCapable,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn verdicts_are_physical_and_counted() {
        let params = ClosParams::paper_cluster(4);
        let topo = Topology::clos_with_stubs(params, &[1, 2, 3]);
        let mut oracle = LearnedOracle::new(tiny_model(), params, DropPolicy::Sample, 9);
        let src = HostAddr::new(1, 0, 0);
        let dst = HostAddr::new(0, 0, 0);
        let path = topo.fabric_path(src, dst, FlowId(7));
        let p = pkt(src, dst);
        let mut delivered = 0;
        for i in 0..200 {
            let ctx = OracleCtx {
                topo: &topo,
                cluster: 1,
                direction: Direction::Up,
                path,
            };
            match oracle.classify(&ctx, &p, SimTime::from_micros(i * 10)) {
                OracleVerdict::Deliver { latency } => {
                    delivered += 1;
                    assert!(latency >= SimDuration::from_secs_f64(1e-6));
                    assert!(latency <= SimDuration::from_secs(1));
                }
                OracleVerdict::Drop => {}
            }
        }
        assert_eq!(oracle.stats().classified, 200);
        assert_eq!(
            oracle.stats().drops + delivered,
            200,
            "every verdict is a drop or a delivery"
        );
        assert_eq!(oracle.stats().per_state.iter().sum::<u64>(), 200);
    }

    #[test]
    fn threshold_policy_is_deterministic() {
        let params = ClosParams::paper_cluster(2);
        let topo = Topology::clos_with_stubs(params, &[1]);
        let run = || {
            let mut oracle =
                LearnedOracle::new(tiny_model(), params, DropPolicy::Threshold(0.5), 1);
            let src = HostAddr::new(1, 0, 0);
            let dst = HostAddr::new(0, 0, 0);
            let path = topo.fabric_path(src, dst, FlowId(7));
            let p = pkt(src, dst);
            (0..50)
                .map(|i| {
                    let ctx = OracleCtx {
                        topo: &topo,
                        cluster: 1,
                        direction: Direction::Up,
                        path,
                    };
                    match oracle.classify(&ctx, &p, SimTime::from_micros(i * 5)) {
                        OracleVerdict::Drop => -1.0,
                        OracleVerdict::Deliver { latency } => latency.as_secs_f64(),
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn per_cluster_state_is_independent() {
        let params = ClosParams::paper_cluster(4);
        let topo = Topology::clos_with_stubs(params, &[1, 2, 3]);
        let mut oracle = LearnedOracle::new(tiny_model(), params, DropPolicy::Threshold(1.1), 2);
        let src = HostAddr::new(1, 0, 0);
        let dst = HostAddr::new(0, 0, 0);
        let path = topo.fabric_path(src, dst, FlowId(7));
        let p = pkt(src, dst);
        // Hammer cluster 1 only; cluster 2's state must stay fresh.
        for i in 0..100 {
            let ctx = OracleCtx {
                topo: &topo,
                cluster: 1,
                direction: Direction::Up,
                path,
            };
            oracle.classify(&ctx, &p, SimTime::from_micros(i));
        }
        assert_eq!(oracle.macro_state(2), MacroState::Minimal);
        assert_eq!(oracle.clusters.len(), 1, "cluster 2 never materialized");
    }

    #[test]
    fn model_json_round_trip() {
        let m = tiny_model();
        let back = ClusterModel::from_json(&m.to_json()).unwrap();
        let x = vec![0.1f32; FEATURE_DIM];
        let a = m.up.predict(&x, &mut m.up.init_state());
        let b = back.up.predict(&x, &mut back.up.init_state());
        assert_eq!(a.drop_prob, b.drop_prob);
        assert_eq!(a.latency, b.latency);
    }
}
