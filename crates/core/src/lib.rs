//! # elephant-core — fast network simulation through approximation
//!
//! The paper's contribution, on top of the workspace's substrates: replace
//! most of a data center's cluster fabrics with learned approximations and
//! keep one cluster (plus the core layer) at packet fidelity, so
//! simulations run orders of magnitude less work while full-fidelity
//! statistics can still be drawn from the un-approximated region.
//!
//! The pieces, mapped to the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | §4.1 macro states (4-regime auto-regressive classifier) | [`MacroModel`], [`MacroState`] |
//! | §4.2 per-packet features from headers + routing knowledge | [`FeatureExtractor`], [`FEATURE_DIM`] |
//! | §4.2 micro models (ingress + egress LSTM, joint drop/latency heads) | [`ClusterModel`] (built on `elephant_nn::MicroNet`) |
//! | §4.2 impossible-schedule conflict rule | enforced by the engine (`elephant_net`'s boundary gate) |
//! | §3 workflow: simulate small → train → assemble large | [`run_ground_truth`] → [`train_cluster_model`] → [`run_hybrid`] |
//! | §6.1 CDF-level accuracy comparison | [`compare_cdfs`] |
//!
//! ## The full workflow
//!
//! ```no_run
//! use elephant_core::{
//!     run_ground_truth, run_hybrid, train_cluster_model, DropPolicy, LearnedOracle,
//!     TrainingOptions,
//! };
//! use elephant_des::SimTime;
//! use elephant_net::{ClosParams, NetConfig};
//! use elephant_trace::{filter_touching_cluster, generate, WorkloadConfig};
//!
//! // 1. Ground truth: two clusters, capture around cluster 1.
//! let small = ClosParams::paper_cluster(2);
//! let horizon = SimTime::from_millis(200);
//! let flows = generate(&small, &WorkloadConfig::paper_default(horizon, 1));
//! let (net, _) = run_ground_truth(small, NetConfig::default(), Some(1), &flows, horizon);
//! let records = elephant_core::capture_records(net).expect("capture was enabled");
//!
//! // 2. Train the macro + micro models from the capture.
//! let (model, report) = train_cluster_model(&records, &small, &TrainingOptions::default());
//! println!("held-out drop accuracy: {:.3}", report.up.eval.drop_accuracy);
//!
//! // 3. Reuse the trained cluster model at 16x scale, eliding traffic
//! //    that never touches the observed cluster.
//! let big = ClosParams::paper_cluster(16);
//! let big_flows = filter_touching_cluster(
//!     &generate(&big, &WorkloadConfig::paper_default(horizon, 2)), 0);
//! let oracle = LearnedOracle::new(model, big, DropPolicy::Sample, 3);
//! let (hybrid, meta) =
//!     run_hybrid(big, 0, Box::new(oracle), NetConfig::default(), &big_flows, horizon);
//! println!("{} events, RTT p99 = {:?}", meta.events, hybrid.stats.rtt_cdf().quantile(0.99));
//! ```

#![warn(missing_docs)]

mod accuracy;
mod audit;
mod cache;
mod error;
mod experiment;
mod features;
mod learned;
mod ledger;
mod macro_model;
mod supervise;
mod train;

pub use accuracy::{
    compare_cdfs, macro_agreement, macro_confusion, CdfComparison, PercentileRow, REPORT_QUANTILES,
};
pub use audit::{run_audit, AuditHooks, AuditRun};
pub use cache::{
    CacheStats, CacheStatsHandle, FeatureQuantizer, QuantizerConfig, VerdictCache, VerdictKey,
    DEFAULT_LEVELS, KEY_BYTES, NAN_BUCKET,
};
pub use error::ElephantError;
pub use experiment::{
    capture_records, run_ground_truth, run_ground_truth_observed, run_hybrid, run_hybrid_observed,
    run_pdes_full, run_pdes_hybrid, PdesRun, RunMeta,
};
pub use features::{FeatureExtractor, LatencyCodec, FEATURE_DIM};
pub use learned::{
    ClusterModel, DropPolicy, LearnedOracle, ModelFile, ModelMeta, OracleStats, MODEL_MAGIC,
    MODEL_VERSION,
};
pub use ledger::{compare_ledgers, fnv1a_64, RunLedger, LEDGER_SCHEMA_VERSION};
pub use macro_model::{MacroConfig, MacroModel, MacroState};
pub use supervise::{
    run_hybrid_supervised, run_pdes_full_supervised, run_pdes_hybrid_supervised,
    run_sequential_supervised, RecoveryEvent, RecoveryLog, RecoveryPolicy, Rung, SupervisedRun,
    DEFAULT_CHECKPOINT_EVERY, DEFAULT_MAX_RETRIES,
};
pub use train::{
    build_samples, calibrate_macro, evaluate, model_meta, train_cluster_model, DirectionReport,
    EvalMetrics, TrainReport, TrainingOptions,
};
