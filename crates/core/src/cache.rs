//! Verdict memoization for the learned-oracle fast path.
//!
//! Every boundary crossing in hybrid mode pays a full per-packet LSTM
//! forward pass, yet packets that are near-identical in feature space
//! (same endpoints, same path, similar timing, same congestion regime)
//! keep receiving near-identical verdicts. The [`VerdictCache`] exploits
//! that: the §4.2 feature vector plus direction and macro-regime index is
//! quantized into a compact fixed-width key, and the [`RawVerdict`] served
//! for one key is replayed for every later packet that lands in the same
//! bucket — skipping feature-to-verdict inference entirely.
//!
//! Two rules keep the shortcut honest:
//!
//! 1. **The key carries the regime, and transitions invalidate.** The
//!    macro state index is part of the key *and* any observed macro-state
//!    transition flushes the whole cache, so a regime change is never
//!    served a verdict learned under the previous regime — even verdicts
//!    whose bucket happens to collide across regimes die at the boundary.
//! 2. **The cache sits *under* [`elephant_net::GuardedOracle`].** Hits are
//!    raw verdicts and flow through the same guard validation as fresh
//!    inference, so a cached-but-malformed prediction still trips the
//!    guard on every serve.
//!
//! The LRU index is a slab of doubly-linked slots — no per-entry
//! allocation after the slab reaches the capacity bound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use elephant_net::{Direction, RawVerdict};
use serde::{Deserialize, Serialize};

use crate::features::FEATURE_DIM;

/// Width of a [`VerdictKey`]: one quantized byte per feature, plus the
/// direction and the macro-regime index.
pub const KEY_BYTES: usize = FEATURE_DIM + 2;

/// Bucket reserved for NaN feature values. Real buckets never reach it:
/// quantization levels are capped one below.
pub const NAN_BUCKET: u8 = u8::MAX;

/// Serializable quantizer parameters, embedded in
/// [`crate::learned::ModelMeta`] so a model artifact pins the bucketing
/// its cache keys were validated under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizerConfig {
    /// Buckets per feature dimension over the nominal `[0, 1)` range.
    /// `0` (what a legacy artifact without the field deserializes to)
    /// means "use [`DEFAULT_LEVELS`]"; live values are clamped to
    /// `[1, 254]` so [`NAN_BUCKET`] stays unreachable.
    #[serde(default)]
    pub levels: u8,
}

/// Bucket count used when [`QuantizerConfig::levels`] is unset.
pub const DEFAULT_LEVELS: u8 = 16;

impl QuantizerConfig {
    /// The bucket count after default substitution and clamping.
    pub fn effective_levels(&self) -> u8 {
        if self.levels == 0 {
            DEFAULT_LEVELS
        } else {
            self.levels.min(NAN_BUCKET - 1)
        }
    }
}

impl Default for QuantizerConfig {
    fn default() -> Self {
        QuantizerConfig {
            levels: DEFAULT_LEVELS,
        }
    }
}

/// Maps feature vectors to fixed-width cache keys. Total (NaN gets its own
/// bucket, infinities saturate) and monotone in every dimension.
#[derive(Clone, Copy, Debug)]
pub struct FeatureQuantizer {
    levels: f32,
    top: u8,
}

impl FeatureQuantizer {
    /// Builds a quantizer from its serialized configuration.
    pub fn new(cfg: QuantizerConfig) -> Self {
        let levels = cfg.effective_levels();
        FeatureQuantizer {
            levels: levels as f32,
            top: levels - 1,
        }
    }

    /// The bucket for one feature value: `floor(v * levels)` clamped to
    /// `[0, levels-1]`; NaN maps to [`NAN_BUCKET`].
    pub fn bucket(&self, v: f32) -> u8 {
        if v.is_nan() {
            return NAN_BUCKET;
        }
        let scaled = (v * self.levels).floor();
        if scaled <= 0.0 {
            0
        } else if scaled >= self.top as f32 {
            self.top
        } else {
            scaled as u8
        }
    }

    /// The cache key for one boundary crossing. `features` beyond
    /// [`FEATURE_DIM`] are ignored; missing trailing dimensions quantize
    /// as zero.
    pub fn key(&self, features: &[f32], direction: Direction, state_idx: u8) -> VerdictKey {
        let mut bytes = [0u8; KEY_BYTES];
        for (b, &v) in bytes.iter_mut().zip(features.iter()) {
            *b = self.bucket(v);
        }
        bytes[FEATURE_DIM] = match direction {
            Direction::Up => 0,
            Direction::Down => 1,
        };
        bytes[FEATURE_DIM + 1] = state_idx;
        VerdictKey(bytes)
    }
}

/// A quantized (features, direction, macro regime) triple — the memo key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VerdictKey([u8; KEY_BYTES]);

impl VerdictKey {
    /// The raw key bytes (feature buckets, then direction, then regime).
    pub fn bytes(&self) -> &[u8; KEY_BYTES] {
        &self.0
    }
}

#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// Point-in-time copy of a cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to inference.
    pub misses: u64,
    /// Entries displaced by the LRU capacity bound.
    pub evictions: u64,
    /// Whole-cache flushes on macro-state transitions.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Cloneable, lock-free view of one oracle's cache counters (shared across
/// that oracle's per-cluster caches). Obtain it with
/// [`crate::learned::LearnedOracle::cache_stats_handle`] *before* boxing
/// the oracle into the network, mirroring
/// [`elephant_net::GuardStatsHandle`].
#[derive(Clone, Default)]
pub struct CacheStatsHandle(Arc<CacheCounters>);

impl CacheStatsHandle {
    /// A fresh handle with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current counter values.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.0.hits.load(Ordering::Relaxed),
            misses: self.0.misses.load(Ordering::Relaxed),
            evictions: self.0.evictions.load(Ordering::Relaxed),
            invalidations: self.0.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Mirrors the snapshot into the global metrics registry under
    /// `hybrid/cache/*` (no-op while observability is disabled).
    pub fn publish_metrics(&self) {
        if !elephant_obs::enabled() {
            return;
        }
        let snap = self.snapshot();
        elephant_obs::counter("hybrid/cache/hits", "").add(snap.hits);
        elephant_obs::counter("hybrid/cache/misses", "").add(snap.misses);
        elephant_obs::counter("hybrid/cache/evictions", "").add(snap.evictions);
        elephant_obs::counter("hybrid/cache/invalidations", "").add(snap.invalidations);
    }
}

/// Sentinel for "no slot" in the intrusive LRU links.
const NIL: u32 = u32::MAX;

#[derive(Clone)]
struct Slot {
    key: VerdictKey,
    verdict: RawVerdict,
    prev: u32,
    next: u32,
}

/// Bounded LRU memo from [`VerdictKey`] to the [`RawVerdict`] last served
/// for that bucket. Recency links live in a slab, so steady-state
/// operation performs no per-entry allocation once the slab is full.
///
/// Cloning (for checkpoint/restore) deep-copies the map and slab, so a
/// restored run replays the same hit/miss sequence as an uninterrupted
/// one; the stats handle is shared with the original — cache counters are
/// monotonic observability, outside checkpoint scope.
#[derive(Clone)]
pub struct VerdictCache {
    cap: usize,
    map: HashMap<VerdictKey, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    stats: CacheStatsHandle,
}

impl VerdictCache {
    /// An empty cache bounded at `cap` entries (minimum 1), reporting into
    /// `stats`.
    pub fn new(cap: usize, stats: CacheStatsHandle) -> Self {
        let cap = cap.max(1).min(NIL as usize - 1);
        VerdictCache {
            cap,
            map: HashMap::with_capacity(cap.min(1 << 16)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &VerdictKey) -> Option<RawVerdict> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.0.hits.fetch_add(1, Ordering::Relaxed);
                if self.head != idx {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(self.slots[idx as usize].verdict)
            }
            None => {
                self.stats.0.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes `verdict` under `key`, evicting the least-recently-used
    /// entry at capacity. Returns `true` when an eviction happened.
    pub fn insert(&mut self, key: VerdictKey, verdict: RawVerdict) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx as usize].verdict = verdict;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return false;
        }
        let mut evicted = false;
        let idx = if self.map.len() >= self.cap {
            // Reuse the LRU slot in place.
            let idx = self.tail;
            debug_assert_ne!(idx, NIL);
            self.unlink(idx);
            let old_key = self.slots[idx as usize].key;
            self.map.remove(&old_key);
            let s = &mut self.slots[idx as usize];
            s.key = key;
            s.verdict = verdict;
            self.stats.0.evictions.fetch_add(1, Ordering::Relaxed);
            evicted = true;
            idx
        } else if let Some(idx) = self.free.pop() {
            let s = &mut self.slots[idx as usize];
            s.key = key;
            s.verdict = verdict;
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                key,
                verdict,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Flushes every entry (macro-state transition). The slab is retained,
    /// so refilling allocates nothing.
    pub fn invalidate(&mut self) {
        self.stats.0.invalidations.fetch_add(1, Ordering::Relaxed);
        self.map.clear();
        self.free.clear();
        self.free.extend((0..self.slots.len() as u32).rev());
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(levels: u8) -> FeatureQuantizer {
        FeatureQuantizer::new(QuantizerConfig { levels })
    }

    fn deliver(s: f64) -> RawVerdict {
        RawVerdict::Deliver { latency_secs: s }
    }

    #[test]
    fn buckets_are_total_and_saturating() {
        let fq = q(16);
        assert_eq!(fq.bucket(f32::NAN), NAN_BUCKET);
        assert_eq!(fq.bucket(f32::NEG_INFINITY), 0);
        assert_eq!(fq.bucket(f32::INFINITY), 15);
        assert_eq!(fq.bucket(-3.0), 0);
        assert_eq!(fq.bucket(0.0), 0);
        assert_eq!(fq.bucket(0.999), 15);
        assert_eq!(fq.bucket(57.0), 15);
    }

    #[test]
    fn buckets_are_monotone() {
        let fq = q(32);
        let mut prev = 0u8;
        for i in 0..=2000 {
            let v = -0.5 + i as f32 * 0.001;
            let b = fq.bucket(v);
            assert!(b >= prev, "bucket({v}) = {b} < {prev}");
            prev = b;
        }
    }

    #[test]
    fn key_encodes_direction_and_state() {
        let fq = q(16);
        let f = [0.5f32; FEATURE_DIM];
        let up = fq.key(&f, Direction::Up, 2);
        let down = fq.key(&f, Direction::Down, 2);
        let other_state = fq.key(&f, Direction::Up, 3);
        assert_ne!(up, down);
        assert_ne!(up, other_state);
        assert_eq!(up.bytes()[FEATURE_DIM], 0);
        assert_eq!(down.bytes()[FEATURE_DIM], 1);
        assert_eq!(up.bytes()[FEATURE_DIM + 1], 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let h = CacheStatsHandle::new();
        let fq = q(16);
        let mut c = VerdictCache::new(2, h.clone());
        let key = |i: usize| {
            let mut f = [0.0f32; FEATURE_DIM];
            f[0] = i as f32 / 16.0;
            fq.key(&f, Direction::Up, 0)
        };
        c.insert(key(1), deliver(1.0));
        c.insert(key(2), deliver(2.0));
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&key(1)), Some(deliver(1.0)));
        assert!(c.insert(key(3), deliver(3.0)), "evicts at capacity");
        assert_eq!(c.get(&key(2)), None, "2 was evicted");
        assert_eq!(c.get(&key(1)), Some(deliver(1.0)));
        assert_eq!(c.get(&key(3)), Some(deliver(3.0)));
        let s = h.snapshot();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn invalidate_flushes_and_reuses_slab() {
        let h = CacheStatsHandle::new();
        let fq = q(16);
        let mut c = VerdictCache::new(8, h.clone());
        let key = |i: usize| {
            let mut f = [0.0f32; FEATURE_DIM];
            f[0] = i as f32 / 16.0;
            fq.key(&f, Direction::Up, 0)
        };
        for i in 0..4 {
            c.insert(key(i), deliver(i as f64));
        }
        assert_eq!(c.len(), 4);
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.get(&key(0)), None);
        for i in 0..4 {
            c.insert(key(i), deliver(i as f64));
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(&key(3)), Some(deliver(3.0)));
        assert_eq!(h.snapshot().invalidations, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let h = CacheStatsHandle::new();
        let fq = q(16);
        let mut c = VerdictCache::new(4, h);
        let k = fq.key(&[0.5f32; FEATURE_DIM], Direction::Up, 0);
        assert!(!c.insert(k, deliver(1.0)));
        assert!(!c.insert(k, RawVerdict::Drop));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k), Some(RawVerdict::Drop));
    }

    #[test]
    fn quantizer_config_round_trips() {
        let cfg = QuantizerConfig { levels: 32 };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: QuantizerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // A legacy artifact without the field deserializes to the unset
        // sentinel, which quantizes exactly like the default config.
        let legacy: QuantizerConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(legacy.effective_levels(), DEFAULT_LEVELS);
        let a = FeatureQuantizer::new(legacy);
        let b = FeatureQuantizer::new(QuantizerConfig::default());
        for i in 0..100 {
            let v = i as f32 * 0.013 - 0.1;
            assert_eq!(a.bucket(v), b.bucket(v));
        }
    }
}
