//! The training pipeline: ground-truth records → feature streams →
//! trained [`ClusterModel`].
//!
//! Paper §3's workflow: "we first briefly simulate a small network in full
//! packet-level fidelity to generate training and testing sets for a
//! machine learning model that can take incoming packets as inputs and
//! generate properly timed outgoing packets." The boundary capture in
//! `elephant-net` produces those sets; this module replays them through
//! the *same* macro classifier and feature extractor the deployed oracle
//! uses, trains the two directional micro models, and evaluates on a
//! held-out time suffix (split by time, not at random, so no future
//! leaks into the past).

use elephant_net::{BoundaryRecord, ClosParams, Direction};
use elephant_nn::{MicroNet, MicroNetConfig, RnnKind, Sample, TrainConfig, Trainer, WindowLoss};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::features::{FeatureExtractor, LatencyCodec, FEATURE_DIM};
use crate::learned::{ClusterModel, ModelMeta};
use crate::macro_model::{MacroConfig, MacroModel};

/// Hyper-parameters of a training run.
#[derive(Clone, Copy, Debug)]
pub struct TrainingOptions {
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Stacked LSTM layers.
    pub layers: usize,
    /// Loss balance α (paper: 0 < α ≤ 1).
    pub alpha: f32,
    /// Recurrent architecture of the micro-model trunk (§7 variants).
    pub rnn: RnnKind,
    /// Optimizer settings (paper defaults: lr 1e-4, momentum 0.9, batch 64).
    pub train: TrainConfig,
    /// Passes over the training windows.
    pub epochs: usize,
    /// BPTT window length (packets per sequence).
    pub window: usize,
    /// Fraction of the record stream (by time) held out for evaluation.
    pub holdout: f64,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
    /// Overrides the calibrated macro thresholds (ablations: a config
    /// whose thresholds can never fire pins the macro feature to
    /// `Minimal`, removing its information content).
    pub macro_override: Option<MacroConfig>,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            hidden: 32,
            layers: 2,
            alpha: 0.5,
            rnn: RnnKind::Lstm,
            train: TrainConfig {
                lr: 0.05,
                momentum: 0.9,
                batch: 16,
                clip: 5.0,
            },
            epochs: 8,
            window: 32,
            holdout: 0.2,
            seed: 0xE1E,
            macro_override: None,
        }
    }
}

impl TrainingOptions {
    /// The paper's full-size prototype: 2×128 LSTM, lr 1e-4, batch 64.
    /// (Slow on CPU; the compact default reproduces the same shapes.)
    pub fn paper() -> Self {
        TrainingOptions {
            hidden: 128,
            layers: 2,
            alpha: 0.5,
            rnn: RnnKind::Lstm,
            train: TrainConfig::default(),
            epochs: 20,
            window: 64,
            holdout: 0.2,
            seed: 0xE1E,
            macro_override: None,
        }
    }
}

/// Held-out evaluation metrics for one direction.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalMetrics {
    /// Fraction of held-out packets whose drop decision was correct at
    /// threshold 0.5.
    pub drop_accuracy: f64,
    /// RMSE of the normalized latency target over delivered packets.
    pub latency_rmse: f64,
    /// Held-out samples.
    pub samples: usize,
    /// Ground-truth drop rate of the held-out slice.
    pub true_drop_rate: f64,
}

/// Outcome of training one direction.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectionReport {
    /// Final-epoch training loss.
    pub train_loss: WindowLoss,
    /// Held-out metrics.
    pub eval: EvalMetrics,
    /// Training samples used.
    pub train_samples: usize,
}

/// Outcome of the full pipeline.
#[derive(Clone, Copy, Debug)]
pub struct TrainReport {
    /// Host → core model.
    pub up: DirectionReport,
    /// Core → host model.
    pub down: DirectionReport,
    /// The calibrated macro thresholds baked into the model.
    pub macro_cfg: MacroConfig,
}

/// Replays `records` (any order; sorted internally by fabric-entry time)
/// through the macro classifier and feature extractors, yielding
/// `(up_samples, down_samples)` in time order.
///
/// This must mirror the deployed oracle exactly — same extractor, same
/// one-classifier-per-cluster state machine — or training features and
/// inference features diverge. The one intentional difference: here the
/// macro model observes ground truth, at inference its own predictions
/// (the auto-regression the paper describes).
pub fn build_samples(
    records: &[BoundaryRecord],
    params: &ClosParams,
    macro_cfg: MacroConfig,
    codec: LatencyCodec,
) -> (Vec<Sample>, Vec<Sample>) {
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| records[i].t_in);

    let mut macro_model = MacroModel::new(macro_cfg);
    let mut up_fx = FeatureExtractor::new(params);
    let mut down_fx = FeatureExtractor::new(params);
    let mut up = Vec::new();
    let mut down = Vec::new();

    for &i in &order {
        let r = &records[i];
        let state = macro_model.state();
        let fx = match r.direction {
            Direction::Up => &mut up_fx,
            Direction::Down => &mut down_fx,
        };
        let features = fx.extract(r.src, r.dst, r.size, r.direction, &r.path, r.t_in, state);
        let sample = Sample {
            features,
            dropped: r.dropped,
            latency: if r.dropped {
                0.0
            } else {
                codec.encode(r.latency)
            },
        };
        match r.direction {
            Direction::Up => up.push(sample),
            Direction::Down => down.push(sample),
        }
        macro_model.observe(
            if r.dropped {
                None
            } else {
                Some(r.latency.as_secs_f64())
            },
            r.dropped,
        );
    }
    (up, down)
}

/// Calibrates the macro thresholds from raw records (§4.1's "relatively
/// low/high" made concrete).
pub fn calibrate_macro(records: &[BoundaryRecord]) -> MacroConfig {
    let latencies: Vec<f64> = records
        .iter()
        .filter(|r| !r.dropped)
        .map(|r| r.latency.as_secs_f64())
        .collect();
    let drop_rate = if records.is_empty() {
        0.0
    } else {
        records.iter().filter(|r| r.dropped).count() as f64 / records.len() as f64
    };
    MacroConfig::calibrate(&latencies, drop_rate)
}

/// Training-time statistics embedded in the model artifact, from which
/// deployment derives guardrail tolerance bands (drop-rate drift, latency
/// ceilings).
pub fn model_meta(records: &[BoundaryRecord]) -> ModelMeta {
    let mut latencies: Vec<f64> = records
        .iter()
        .filter(|r| !r.dropped)
        .map(|r| r.latency.as_secs_f64())
        .collect();
    latencies.sort_by(f64::total_cmp);
    let quantile = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            latencies[(((latencies.len() - 1) as f64) * p).round() as usize]
        }
    };
    let drops = records.iter().filter(|r| r.dropped).count();
    ModelMeta {
        train_drop_rate: if records.is_empty() {
            0.0
        } else {
            drops as f64 / records.len() as f64
        },
        train_latency_p50: quantile(0.5),
        train_latency_p99: quantile(0.99),
        train_records: records.len() as u64,
        quantizer: crate::cache::QuantizerConfig::default(),
    }
}

/// Runs the full §3 pipeline over captured records: calibrate the macro
/// model, build feature streams, train both directional micro models,
/// evaluate on the held-out tail.
pub fn train_cluster_model(
    records: &[BoundaryRecord],
    params: &ClosParams,
    opts: &TrainingOptions,
) -> (ClusterModel, TrainReport) {
    assert!(!records.is_empty(), "cannot train on an empty capture");
    assert!((0.0..1.0).contains(&opts.holdout));
    let macro_cfg = opts
        .macro_override
        .unwrap_or_else(|| calibrate_macro(records));
    let codec = LatencyCodec::default();
    let (up_samples, down_samples) = build_samples(records, params, macro_cfg, codec);

    let net_cfg = MicroNetConfig {
        input: FEATURE_DIM,
        hidden: opts.hidden,
        layers: opts.layers,
        alpha: opts.alpha,
        rnn: opts.rnn,
    };
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let (up_model, up_report) = train_direction(&up_samples, net_cfg, opts, &mut rng);
    let (down_model, down_report) = train_direction(&down_samples, net_cfg, opts, &mut rng);

    (
        ClusterModel {
            up: up_model,
            down: down_model,
            macro_cfg,
            codec,
            meta: model_meta(records),
        },
        TrainReport {
            up: up_report,
            down: down_report,
            macro_cfg,
        },
    )
}

fn train_direction(
    samples: &[Sample],
    net_cfg: MicroNetConfig,
    opts: &TrainingOptions,
    rng: &mut SmallRng,
) -> (MicroNet, DirectionReport) {
    let model = MicroNet::new(net_cfg, rng);
    if samples.len() < opts.window {
        // Not enough traffic in this direction to learn from; ship the
        // untrained (random) model and say so.
        return (
            model,
            DirectionReport {
                train_loss: WindowLoss::default(),
                eval: EvalMetrics::default(),
                train_samples: 0,
            },
        );
    }
    let split = ((samples.len() as f64) * (1.0 - opts.holdout)) as usize;
    let split = split.max(opts.window).min(samples.len());
    let (train_slice, eval_slice) = samples.split_at(split);

    let windows: Vec<Vec<Sample>> = train_slice
        .chunks(opts.window)
        .filter(|c| c.len() >= 2)
        .map(|c| c.to_vec())
        .collect();
    let mut trainer = Trainer::new(model, opts.train);
    let mut last = WindowLoss::default();
    let _train_span = elephant_obs::span("train");
    let loss_hist = elephant_obs::histogram("train/epoch/loss", "");
    let samples_counter = elephant_obs::counter("train/epoch/samples", "");
    for _ in 0..opts.epochs {
        let _epoch_span = elephant_obs::span("epoch");
        let t0 = std::time::Instant::now();
        last = trainer.train_epoch(&windows);
        loss_hist.record(last.total(opts.alpha));
        samples_counter.add(last.samples as u64);
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            elephant_obs::gauge("train/epoch/samples_per_sec", "")
                .set((last.samples as f64 / secs) as i64);
        }
    }
    drop(_train_span);
    let model = trainer.into_model();

    let eval = evaluate(&model, eval_slice, opts.window);
    (
        model,
        DirectionReport {
            train_loss: last,
            eval,
            train_samples: train_slice.len(),
        },
    )
}

/// Evaluates a trained model on a held-out sample stream.
pub fn evaluate(model: &MicroNet, samples: &[Sample], window: usize) -> EvalMetrics {
    if samples.is_empty() {
        return EvalMetrics::default();
    }
    let mut agg = WindowLoss::default();
    for chunk in samples.chunks(window.max(2)) {
        if chunk.len() >= 2 {
            agg.merge(&model.evaluate_window(chunk));
        }
    }
    let drops = samples.iter().filter(|s| s.dropped).count();
    EvalMetrics {
        drop_accuracy: if agg.samples > 0 {
            agg.drop_correct as f64 / agg.samples as f64
        } else {
            0.0
        },
        latency_rmse: agg.latency_loss.sqrt(),
        samples: agg.samples,
        true_drop_rate: drops as f64 / samples.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elephant_des::{SimDuration, SimTime};
    use elephant_net::{FabricPath, FlowId, HostAddr};

    /// Synthetic records with feature-visible structure: drops happen
    /// exactly when the destination host index is ≥ 2; latency grows with
    /// the destination rack. Both facts are plain feature functions, so a
    /// working pipeline must learn them.
    fn synthetic_records(n: usize) -> Vec<BoundaryRecord> {
        (0..n)
            .map(|i| {
                let rack = ((i / 4) % 2) as u16;
                let host = ((i / 2) % 4) as u16;
                let dropped = host >= 2;
                BoundaryRecord {
                    t_in: SimTime::from_micros(10 * i as u64),
                    direction: if i % 2 == 0 {
                        Direction::Up
                    } else {
                        Direction::Down
                    },
                    flow: FlowId(i as u64),
                    src: HostAddr::new(1, rack, (i % 4) as u16),
                    dst: HostAddr::new(0, rack, host),
                    size: 1500,
                    path: FabricPath {
                        src_tor: rack,
                        src_agg: (i % 2) as u16,
                        core: Some((i % 2) as u16),
                        dst_agg: (i % 2) as u16,
                        dst_tor: rack,
                    },
                    dropped,
                    latency: if dropped {
                        SimDuration::ZERO
                    } else {
                        SimDuration::from_micros(5 + 40 * rack as u64)
                    },
                }
            })
            .collect()
    }

    #[test]
    fn build_samples_partitions_by_direction_in_time_order() {
        let params = ClosParams::paper_cluster(2);
        let records = synthetic_records(100);
        let (up, down) = build_samples(
            &records,
            &params,
            MacroConfig::default(),
            LatencyCodec::default(),
        );
        assert_eq!(up.len(), 50);
        assert_eq!(down.len(), 50);
        for s in up.iter().chain(down.iter()) {
            assert_eq!(s.features.len(), FEATURE_DIM);
            assert!(s.features.iter().all(|v| v.is_finite()));
            if !s.dropped {
                assert!((0.0..=1.0).contains(&s.latency));
            }
        }
    }

    #[test]
    fn pipeline_trains_and_beats_chance() {
        let params = ClosParams::paper_cluster(2);
        let records = synthetic_records(1200);
        let opts = TrainingOptions {
            hidden: 12,
            layers: 1,
            epochs: 25,
            window: 16,
            train: TrainConfig {
                lr: 0.3,
                momentum: 0.9,
                batch: 8,
                clip: 5.0,
            },
            ..Default::default()
        };
        let (model, report) = train_cluster_model(&records, &params, &opts);
        // Both directions drop exactly when dst.host >= 2 (a plain feature
        // function), so accuracy well above the 50% base rate is required.
        assert!(report.up.train_samples > 0);
        assert!(report.down.train_samples > 0);
        assert!(
            report.up.eval.drop_accuracy > 0.9,
            "up accuracy {}",
            report.up.eval.drop_accuracy
        );
        assert!(
            report.down.eval.drop_accuracy > 0.7,
            "down accuracy {} (true rate {})",
            report.down.eval.drop_accuracy,
            report.down.eval.true_drop_rate
        );
        // Latency is a clean function of the features; RMSE of the
        // normalized target should be small.
        assert!(
            report.up.eval.latency_rmse < 0.2,
            "rmse {}",
            report.up.eval.latency_rmse
        );
        // The returned bundle serializes.
        let json = model.to_json();
        assert!(ClusterModel::from_json(&json).is_ok());
    }

    #[test]
    fn sparse_direction_ships_untrained_model() {
        let params = ClosParams::paper_cluster(2);
        // All records Up: the Down model cannot train.
        let records: Vec<BoundaryRecord> = synthetic_records(200)
            .into_iter()
            .map(|mut r| {
                r.direction = Direction::Up;
                r
            })
            .collect();
        let opts = TrainingOptions {
            epochs: 1,
            ..Default::default()
        };
        let (_, report) = train_cluster_model(&records, &params, &opts);
        assert_eq!(report.down.train_samples, 0);
        assert_eq!(report.down.eval.samples, 0);
        assert!(report.up.train_samples > 0);
    }

    #[test]
    fn calibration_reflects_the_capture() {
        let records = synthetic_records(600);
        let cfg = calibrate_macro(&records);
        // Drop rate is 1/2 overall => threshold = 1.0.
        assert!((cfg.drop_high - 1.0).abs() < 0.02, "{}", cfg.drop_high);
        assert!(cfg.latency_low >= 5e-6 && cfg.latency_low <= 45e-6);
    }
}
