//! The workspace's typed error vocabulary.
//!
//! Hand-rolled `thiserror`-style enum (no proc-macro deps): every fallible
//! seam in the pipeline — model files on disk, capture retrieval, stream
//! alignment — reports one of these instead of `expect`-panicking, and the
//! CLI maps each family onto a distinct process exit code so scripts can
//! tell "bad model artifact" from "I/O problem" from "simulation fault".

use std::fmt;

/// Why a pipeline step failed.
#[derive(Debug)]
pub enum ElephantError {
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Model JSON did not parse at all (truncated, mangled, not JSON).
    ModelParse {
        /// Parser diagnostic.
        detail: String,
    },
    /// The file parsed but is not an elephant model artifact.
    ModelMagic {
        /// The magic string actually present.
        found: String,
    },
    /// The artifact's format version is not one this build understands.
    ModelVersion {
        /// Version in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The weight checksum does not match the header (bit rot, truncation
    /// that still parses, or hand-editing).
    ModelChecksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the weights.
        actual: u64,
    },
    /// The model contains NaN or infinite weights and would poison every
    /// prediction.
    ModelNonFinite {
        /// Number of non-finite parameters found.
        count: usize,
    },
    /// A capture was requested from a network that was not configured to
    /// record one.
    CaptureMissing,
    /// Two record streams that must advance in lockstep did not (internal
    /// invariant; indicates corrupt or inconsistent training data).
    StreamMisaligned {
        /// What diverged.
        detail: String,
    },
    /// A scenario file failed schema parsing or validation.
    Scenario {
        /// The scenario file.
        path: String,
        /// 1-based line of the offending value.
        line: u32,
        /// Diagnostic message.
        detail: String,
    },
    /// The supervised retry ladder ran out of rungs: every retry and every
    /// degradation step failed, so the run cannot complete even degraded.
    RecoveryExhausted {
        /// What kept failing, including the last failure's diagnostics.
        detail: String,
    },
}

impl ElephantError {
    /// The process exit code the CLI uses for this error family:
    /// `3` = I/O, `4` = invalid model artifact, `5` = simulation/pipeline
    /// fault, `6` = scenario schema/validation error, `7` = recovery
    /// ladder exhausted. (`2` is reserved for usage errors, `1` for
    /// generic failure.)
    pub fn exit_code(&self) -> i32 {
        match self {
            ElephantError::Io { .. } => 3,
            ElephantError::ModelParse { .. }
            | ElephantError::ModelMagic { .. }
            | ElephantError::ModelVersion { .. }
            | ElephantError::ModelChecksum { .. }
            | ElephantError::ModelNonFinite { .. } => 4,
            ElephantError::CaptureMissing | ElephantError::StreamMisaligned { .. } => 5,
            ElephantError::Scenario { .. } => 6,
            ElephantError::RecoveryExhausted { .. } => 7,
        }
    }
}

impl fmt::Display for ElephantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElephantError::Io { path, source } => write!(f, "{path}: {source}"),
            ElephantError::ModelParse { detail } => {
                write!(f, "cannot parse model file: {detail}")
            }
            ElephantError::ModelMagic { found } => write!(
                f,
                "not an elephant model file (magic {found:?}); \
                 expected a header written by `elephant train`"
            ),
            ElephantError::ModelVersion { found, expected } => write!(
                f,
                "unsupported model format version {found} (this build reads version {expected})"
            ),
            ElephantError::ModelChecksum { expected, actual } => write!(
                f,
                "model weight checksum mismatch: header says {expected:#018x}, \
                 weights hash to {actual:#018x} — the file is corrupt"
            ),
            ElephantError::ModelNonFinite { count } => write!(
                f,
                "model contains {count} non-finite weight(s); refusing to load"
            ),
            ElephantError::CaptureMissing => {
                write!(
                    f,
                    "no boundary capture: the run was not configured to record one"
                )
            }
            ElephantError::StreamMisaligned { detail } => {
                write!(f, "record streams misaligned: {detail}")
            }
            ElephantError::Scenario { path, line, detail } => {
                write!(f, "{path}:{line}: {detail}")
            }
            ElephantError::RecoveryExhausted { detail } => {
                write!(f, "recovery ladder exhausted: {detail}")
            }
        }
    }
}

impl std::error::Error for ElephantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ElephantError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_partition_the_families() {
        let io = ElephantError::Io {
            path: "x".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert_eq!(io.exit_code(), 3);
        assert_eq!(
            ElephantError::ModelParse { detail: "".into() }.exit_code(),
            4
        );
        assert_eq!(
            ElephantError::ModelVersion {
                found: 9,
                expected: 1
            }
            .exit_code(),
            4
        );
        assert_eq!(ElephantError::CaptureMissing.exit_code(), 5);
        assert_eq!(
            ElephantError::Scenario {
                path: "s.toml".into(),
                line: 3,
                detail: "bad".into()
            }
            .exit_code(),
            6
        );
    }

    #[test]
    fn scenario_errors_print_file_and_line() {
        let e = ElephantError::Scenario {
            path: "scenarios/incast.toml".into(),
            line: 12,
            detail: "load: must be in (0, 1), got 1.5".into(),
        };
        assert_eq!(
            e.to_string(),
            "scenarios/incast.toml:12: load: must be in (0, 1), got 1.5"
        );
    }

    #[test]
    fn messages_name_the_problem() {
        let e = ElephantError::ModelChecksum {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = ElephantError::ModelNonFinite { count: 3 };
        assert!(e.to_string().contains("3 non-finite"));
    }
}
