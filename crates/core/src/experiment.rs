//! Experiment runners: the paper's §3 workflow as three functions.
//!
//! 1. [`run_ground_truth`] — full-fidelity simulation with boundary
//!    capture around the cluster to be learned;
//! 2. [`train_cluster_model`](crate::train_cluster_model) — fit the macro
//!    + micro models from the capture (in `train`);
//! 3. [`run_hybrid`] — assemble the large simulation in which every
//!    cluster but one is replaced by the learned oracle (Figure 3) and
//!    only traffic touching the full cluster is scheduled (§6.2's
//!    elision).
//!
//! Each runner reports wall-clock time, events executed, and simulated
//! seconds, the currencies of Figures 1 and 5.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::ElephantError;

use elephant_des::{SimTime, Simulator};
use elephant_net::{
    schedule_flows, ClosParams, ClusterOracle, FlowSpec, NetConfig, Network, RttScope, Topology,
};

/// Performance facts about one run.
#[derive(Clone, Copy, Debug)]
pub struct RunMeta {
    /// Wall-clock time spent simulating.
    pub wall: Duration,
    /// Events the kernel executed.
    pub events: u64,
    /// Simulated horizon reached, in seconds.
    pub sim_seconds: f64,
}

impl RunMeta {
    /// The paper's Figure-1 y-axis: simulated seconds per wall second.
    pub fn sim_seconds_per_second(&self) -> f64 {
        self.sim_seconds / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Runs a fully simulated network over `flows` until `horizon`.
///
/// Set `capture_cluster` to harvest training records; set
/// `cfg.rtt_scope` to restrict accuracy measurements (Figure 4 restricts
/// both runs to the observed cluster).
pub fn run_ground_truth(
    params: ClosParams,
    mut cfg: NetConfig,
    capture_cluster: Option<u16>,
    flows: &[FlowSpec],
    horizon: SimTime,
) -> (Network, RunMeta) {
    cfg.capture_cluster = capture_cluster;
    let _span = elephant_obs::span("ground_truth");
    let topo = Arc::new(Topology::clos(params));
    let mut sim = Simulator::new(Network::new(topo, cfg));
    schedule_flows(&mut sim, flows);
    finish(sim, horizon)
}

/// Runs the hybrid simulation: `full_cluster` plus the core layer at
/// packet fidelity, every other cluster's fabric served by `oracle`.
///
/// `flows` should already be elided to traffic touching `full_cluster`
/// (see `elephant_trace::filter_touching_cluster`); the engine tolerates
/// other traffic but the paper's speedups assume the elision.
pub fn run_hybrid(
    params: ClosParams,
    full_cluster: u16,
    oracle: Box<dyn ClusterOracle + Send>,
    mut cfg: NetConfig,
    flows: &[FlowSpec],
    horizon: SimTime,
) -> (Network, RunMeta) {
    assert!(
        params.clusters >= 2,
        "hybrid simulation needs clusters to approximate"
    );
    let stubs: Vec<u16> = (0..params.clusters)
        .filter(|&c| c != full_cluster)
        .collect();
    cfg.capture_cluster = None;
    // Accuracy is only drawn from the full-fidelity region (§3: "a portion
    // of the network can be left un-approximated so that we can continue
    // to draw full-fidelity statistics").
    cfg.rtt_scope = RttScope::Cluster(full_cluster);
    let _span = elephant_obs::span("hybrid");
    let topo = Arc::new(Topology::clos_with_stubs(params, &stubs));
    let mut net = Network::new(topo, cfg);
    net.set_oracle(oracle);
    let mut sim = Simulator::new(net);
    schedule_flows(&mut sim, flows);
    finish(sim, horizon)
}

/// Extracts the boundary capture from a finished network, or a typed
/// [`ElephantError::CaptureMissing`] if the run was not configured to
/// record one — the fallible replacement for `into_capture().expect(…)`.
pub fn capture_records(net: Network) -> Result<Vec<elephant_net::BoundaryRecord>, ElephantError> {
    net.into_capture()
        .map(|c| c.into_records())
        .ok_or(ElephantError::CaptureMissing)
}

fn finish(mut sim: Simulator<Network>, horizon: SimTime) -> (Network, RunMeta) {
    let _span = elephant_obs::span("run");
    let start = Instant::now();
    sim.run_until(horizon);
    let wall = start.elapsed();
    let events = sim.scheduler().executed_total();
    let meta = RunMeta {
        wall,
        events,
        sim_seconds: horizon.as_secs_f64(),
    };
    (sim.into_world(), meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learned::{DropPolicy, LearnedOracle};
    use crate::train::{train_cluster_model, TrainingOptions};
    use elephant_net::IdealOracle;
    use elephant_nn::TrainConfig;
    use elephant_trace::{filter_touching_cluster, generate, WorkloadConfig};

    /// The complete §3 workflow, end to end, at miniature scale: simulate
    /// two clusters fully, train on the capture, deploy the learned model
    /// in a four-cluster hybrid, and check the books balance.
    #[test]
    fn full_workflow_smoke() {
        let params = ClosParams::paper_cluster(2);
        let horizon = SimTime::from_millis(30);
        let wl = WorkloadConfig::paper_default(horizon, 7);
        let flows = generate(&params, &wl);
        assert!(!flows.is_empty());

        // Step 1: ground truth with capture around cluster 1.
        let (net, meta) = run_ground_truth(params, NetConfig::default(), Some(1), &flows, horizon);
        assert!(meta.events > 1000, "events {}", meta.events);
        let records = capture_records(net).expect("capture enabled");
        assert!(records.len() > 100, "records {}", records.len());

        // Step 2: train (tiny settings; this is a smoke test).
        let opts = TrainingOptions {
            hidden: 8,
            layers: 1,
            epochs: 2,
            window: 16,
            train: TrainConfig {
                lr: 0.1,
                momentum: 0.9,
                batch: 8,
                clip: 5.0,
            },
            ..Default::default()
        };
        let (model, report) = train_cluster_model(&records, &params, &opts);
        assert!(report.up.train_samples + report.down.train_samples > 0);

        // Step 3: hybrid at 4 clusters with elided traffic.
        let big = ClosParams::paper_cluster(4);
        let big_flows = filter_touching_cluster(&generate(&big, &wl), 0);
        assert!(!big_flows.is_empty());
        let oracle = LearnedOracle::new(model, big, DropPolicy::Sample, 3);
        let (hnet, hmeta) = run_hybrid(
            big,
            0,
            Box::new(oracle),
            NetConfig::default(),
            &big_flows,
            horizon,
        );
        assert!(hnet.stats.oracle_deliveries > 0, "oracle was exercised");
        assert!(hnet.stats.flows_completed > 0, "hybrid completes flows");
        assert!(hmeta.events > 0);
    }

    #[test]
    fn hybrid_executes_fewer_events_than_full() {
        let params = ClosParams::paper_cluster(4);
        let horizon = SimTime::from_millis(20);
        let wl = WorkloadConfig::paper_default(horizon, 11);
        let flows = generate(&params, &wl);

        let (_, full_meta) = run_ground_truth(params, NetConfig::default(), None, &flows, horizon);
        let elided = filter_touching_cluster(&flows, 0);
        let (_, hybrid_meta) = run_hybrid(
            params,
            0,
            Box::new(IdealOracle),
            NetConfig::default(),
            &elided,
            horizon,
        );
        assert!(
            hybrid_meta.events * 2 < full_meta.events,
            "hybrid {} vs full {} events",
            hybrid_meta.events,
            full_meta.events
        );
    }

    #[test]
    fn meta_math() {
        let m = RunMeta {
            wall: Duration::from_millis(500),
            events: 10,
            sim_seconds: 2.0,
        };
        assert!((m.sim_seconds_per_second() - 4.0).abs() < 1e-9);
    }
}
